"""Extension: DRAM energy of fault-aware *training* itself.

The paper evaluates inference energy; a natural follow-up question is
what the retraining step costs in DRAM traffic.  One training sample
reads the weight tensor (forward pass) and writes back the updated
tensor (STDP write-back), so a training epoch costs roughly
``n_samples x (read + write)`` passes versus inference's single read.
This benchmark measures both at 1.35 V and at 1.025 V — fault-aware
retraining can itself run on the approximate DRAM once the model
tolerates the errors.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.core.mapping_policy import baseline_mapping
from repro.dram.controller import DramController
from repro.dram.specs import LPDDR3_1600_4GB
from repro.trace.generator import InferenceTraceSpec, inference_read_trace

N_NEURONS = 400
N_WEIGHTS = 784 * N_NEURONS
SAMPLES_PER_EPOCH = 16  # scaled epoch slice; energy scales linearly


def run_experiment():
    controller = DramController(LPDDR3_1600_4GB)
    org = controller.organization
    mapping = baseline_mapping(org, N_WEIGHTS, 32)
    spec = InferenceTraceSpec(n_weights=N_WEIGHTS, bits_per_weight=32)
    trace = inference_read_trace(spec, mapping.slot_of_chunk, org)

    results = {}
    for v in (1.35, 1.025):
        read = controller.execute(trace, v, write=False)
        write = controller.execute(trace, v, write=True)
        inference_mj = read.energy.total_mj
        epoch_mj = SAMPLES_PER_EPOCH * (read.energy.total_mj + write.energy.total_mj)
        results[v] = (inference_mj, epoch_mj)
    return results


def test_extension_training_energy(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = []
    for v, (inference_mj, epoch_mj) in results.items():
        rows.append([
            f"{v:.3f}",
            f"{inference_mj:.3f}",
            f"{epoch_mj:.3f}",
            f"{epoch_mj / inference_mj:.1f}x",
        ])
    print("\n" + format_table(
        ["Vsupply [V]", "inference [mJ]", f"epoch({SAMPLES_PER_EPOCH}) [mJ]", "ratio"],
        rows,
        title="EXTENSION - DRAM energy of fault-aware training (N400, "
        "read+write per sample)",
    ))

    inference_nominal, epoch_nominal = results[1.35]
    inference_reduced, epoch_reduced = results[1.025]
    # a training epoch costs read+write per sample
    assert epoch_nominal > 2 * SAMPLES_PER_EPOCH * inference_nominal * 0.9
    # voltage scaling helps training traffic just like inference traffic
    saving = 1 - epoch_reduced / epoch_nominal
    assert saving == pytest.approx(0.40, abs=0.05)

"""Ablation: FP32 vs INT8 weight storage under DRAM bit errors.

The paper evaluates with FP32 and observes (label-2 of Fig. 11) that
MSB flips change weight values by orders of magnitude.  A fixed-point
representation bounds the damage of any single flip; this ablation
quantifies the difference at the same BER.
"""

import numpy as np
import pytest

from benchmarks.conftest import N_STEPS, get_baseline
from repro.analysis.reporting import format_table
from repro.analysis.sweeps import accuracy_vs_ber_sweep
from repro.errors.injection import ErrorInjector
from repro.snn.quantization import FixedPointRepresentation, Float32Representation

N_NEURONS = 50
RATES = (1e-3, 1e-2)


def test_ablation_weight_representation(benchmark, datasets):
    dataset = datasets["mnist"]
    baseline = get_baseline(datasets, "mnist", N_NEURONS)

    representations = {
        "float32 (paper)": Float32Representation(clip_range=(0.0, 1.0)),
        "int8 fixed-point": FixedPointRepresentation(bits=8, w_min=0.0, w_max=1.0),
    }

    def run():
        curves = {}
        for label, representation in representations.items():
            injector = ErrorInjector(representation, seed=11)
            curves[label] = accuracy_vs_ber_sweep(
                baseline, dataset, injector, RATES, N_STEPS,
                np.random.default_rng(12), trials=3,
            )
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for label, points in curves.items():
        rows.append([label] + [f"{p.accuracy:.1%}" for p in points])
    print("\n" + format_table(
        ["representation"] + [f"BER {r:.0e}" for r in RATES],
        rows,
        title="ABLATION - weight storage representation under errors "
        f"(error-free reference: {baseline.accuracy:.1%})",
    ))

    fp32 = {p.ber: p.accuracy for p in curves["float32 (paper)"]}
    int8 = {p.ber: p.accuracy for p in curves["int8 fixed-point"]}
    # a single int8 flip moves a weight by at most half the range, so
    # at the punishing rate the bounded representation cannot do much
    # worse than fp32 (whose exponent flips saturate weights to 0/max).
    assert int8[1e-2] >= fp32[1e-2] - 0.10
    # both degrade relative to error-free inference at the extreme rate
    assert min(int8[1e-2], fp32[1e-2]) <= baseline.accuracy + 0.02

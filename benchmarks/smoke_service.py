#!/usr/bin/env python
"""Experiment-service smoke: multi-tenant sweeps through the real CLI.

One ``repro cluster serve`` process hosts two overlapping sweeps
submitted by two separate ``repro cluster submit --wait`` client
processes over a shared 2-worker fleet, with token auth on. Contracts:

1. **Value identity** — both result sets are value-identical to the
   serial in-process Runner on the same grids (the acceptance bar of
   docs/cluster.md, now per tenant).
2. **Cancel is surgical** — a third sweep is cancelled mid-lease; its
   leases are freed, and the first two sweeps' results stay intact and
   fetchable afterwards.
3. **Auth is loud** — an unauthenticated submit (HTTP plane) and an
   unauthenticated status probe (line plane) both exit non-zero.

Usage::

    PYTHONPATH=src python benchmarks/smoke_service.py

Exits non-zero on the first violated contract.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import time
from pathlib import Path

SRC = str(Path(__file__).resolve().parent.parent / "src")
TOKEN = "smoke-service-token"

CONFIG_ARGS = [
    "--neurons", "12", "--train", "40", "--test", "25", "--steps", "30",
    "--bound", "0.5",
]
SWEEP_A = ["--voltages", "1.325", "1.025"]
SWEEP_B = ["--voltages", "1.125"]
#: The cancel victim retrains (seed axis) at the full default workload
#: (no CONFIG_ARGS shrinkage), so its jobs hold leases for whole
#: training stages — a wide window to cancel into.  It never runs to
#: completion, so its size costs only the lease-to-cancel latency.
SWEEP_C = ["--seeds", "7", "8"]


def check(condition: bool, label: str) -> None:
    if not condition:
        print(f"FAIL: {label}", file=sys.stderr)
        sys.exit(1)
    print(f"ok: {label}")


def env_with_token(token: str = TOKEN) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    env["PYTHONUNBUFFERED"] = "1"  # serve's banner must reach the pipe
    env["REPRO_CLUSTER_TOKEN"] = token
    return env


def cli(*args: str) -> list:
    return [sys.executable, "-m", "repro", *args]


def serial_reference(grid_args: list) -> list:
    result = subprocess.run(
        cli("sweep", *CONFIG_ARGS, *grid_args, "--json"),
        env=env_with_token(), capture_output=True, text=True, timeout=600,
    )
    check(result.returncode == 0, f"serial reference sweep {grid_args}")
    return json.loads(result.stdout)


def value_dicts(records: list) -> list:
    """Execution-independent record views (shared value-identity rule)."""
    sys.path.insert(0, SRC)
    from repro.analysis.export import run_record_value_dict
    from repro.pipeline.runner import RunRecord

    return [
        run_record_value_dict(RunRecord.from_dict(entry)) for entry in records
    ]


def start_service(workdir: Path) -> tuple:
    process = subprocess.Popen(
        cli(
            "cluster", "serve",
            "--bind", "127.0.0.1:0", "--http-bind", "127.0.0.1:0",
            "--cache-dir", str(workdir / "cache"),
            "--journal-dir", str(workdir / "journals"),
        ),
        env=env_with_token(), stdout=subprocess.PIPE, text=True,
    )
    worker_addr = http_addr = None
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline and (not worker_addr or not http_addr):
        line = process.stdout.readline()
        if not line:
            break
        found = re.search(r"--coordinator (\S+)", line)
        if found:
            worker_addr = found.group(1)
        found = re.search(r"--service (\S+)", line)
        if found:
            http_addr = found.group(1)
    check(
        bool(worker_addr and http_addr),
        f"service announced both planes (workers={worker_addr}, "
        f"control={http_addr})",
    )
    return process, worker_addr, http_addr


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workdir", default=None,
                        help="scratch directory (default: a TemporaryDirectory)")
    args = parser.parse_args(argv)

    import tempfile

    context = None
    if args.workdir:
        workdir = Path(args.workdir)
        workdir.mkdir(parents=True, exist_ok=True)
    else:
        context = tempfile.TemporaryDirectory()
        workdir = Path(context.name)

    serial_a = serial_reference(SWEEP_A)
    serial_b = serial_reference(SWEEP_B)

    service = None
    workers = []
    clients = []
    try:
        service, worker_addr, http_addr = start_service(workdir)
        for index in range(2):
            workers.append(subprocess.Popen(
                cli(
                    "cluster", "worker",
                    "--coordinator", worker_addr,
                    "--name", f"smoke-w{index}",
                    "--max-idle-s", "600",
                ),
                env=env_with_token(),
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            ))

        # Two tenants, two separate client processes, overlapping in time.
        for name, grid_args in (("alpha", SWEEP_A), ("beta", SWEEP_B)):
            clients.append((name, grid_args, subprocess.Popen(
                cli(
                    "cluster", "submit", "--service", http_addr,
                    "--name", name, *CONFIG_ARGS, *grid_args,
                    "--wait", "--wait-timeout", "600", "--json",
                ),
                env=env_with_token(),
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            )))
        results = {}
        for name, grid_args, client in clients:
            stdout, stderr = client.communicate(timeout=700)
            if client.returncode != 0:
                print(stderr, file=sys.stderr)
            check(client.returncode == 0, f"client {name} completed its sweep")
            results[name] = json.loads(stdout)
        check(
            value_dicts(results["alpha"]) == value_dicts(serial_a),
            "sweep alpha records value-identical to the serial Runner",
        )
        check(
            value_dicts(results["beta"]) == value_dicts(serial_b),
            "sweep beta records value-identical to the serial Runner",
        )

        # Third tenant: submit, wait for a live lease, cancel.
        submitted = subprocess.run(
            cli(
                "cluster", "submit", "--service", http_addr,
                "--name", "doomed", *SWEEP_C, "--json",
            ),
            env=env_with_token(), capture_output=True, text=True, timeout=120,
        )
        check(submitted.returncode == 0, "third sweep submitted")
        doomed_id = json.loads(submitted.stdout)["sweep_id"]
        leased = 0
        deadline = time.monotonic() + 300
        while time.monotonic() < deadline:
            status = subprocess.run(
                cli("cluster", "status", "--service", http_addr, "--json"),
                env=env_with_token(), capture_output=True, text=True,
                timeout=60,
            )
            check(status.returncode == 0, "status probe during third sweep")
            view = json.loads(status.stdout)["sweeps"][doomed_id]
            leased = view.get("leased", 0)
            if leased >= 1:
                break
            time.sleep(0.5)
        check(leased >= 1, f"third sweep reached a live lease ({leased})")
        cancelled = subprocess.run(
            cli(
                "cluster", "cancel", doomed_id,
                "--service", http_addr, "--json",
            ),
            env=env_with_token(), capture_output=True, text=True, timeout=60,
        )
        check(cancelled.returncode == 0, "cancel request accepted")
        reply = json.loads(cancelled.stdout)
        check(reply["state"] == "cancelled", "third sweep is cancelled")
        check(
            reply["leases_freed"] >= 1,
            f"cancel freed its live lease(s) ({reply['leases_freed']})",
        )

        # The first two tenants are undisturbed: results still served,
        # still identical.
        for name, grid_args, _ in clients:
            sweep_id = json.loads(subprocess.run(
                cli("cluster", "status", "--service", http_addr, "--json"),
                env=env_with_token(), capture_output=True, text=True,
                timeout=60,
            ).stdout)
            survivors = [
                sid for sid, view in sweep_id["sweeps"].items()
                if view.get("name") == name
            ]
            check(len(survivors) == 1, f"sweep {name} still registered")
            fetched = subprocess.run(
                cli(
                    "cluster", "results", survivors[0],
                    "--service", http_addr, "--json",
                ),
                env=env_with_token(), capture_output=True, text=True,
                timeout=120,
            )
            check(
                fetched.returncode == 0,
                f"sweep {name} results fetchable after the cancel",
            )
            reference = serial_a if name == "alpha" else serial_b
            check(
                value_dicts(json.loads(fetched.stdout))
                == value_dicts(reference),
                f"sweep {name} results unchanged after the cancel",
            )

        # Auth is loud on both planes: no token, no service.
        naked = env_with_token(token="")
        naked.pop("REPRO_CLUSTER_TOKEN", None)
        unauthenticated_submit = subprocess.run(
            cli(
                "cluster", "submit", "--service", http_addr,
                *CONFIG_ARGS, *SWEEP_B, "--json",
            ),
            env=naked, capture_output=True, text=True, timeout=60,
        )
        check(
            unauthenticated_submit.returncode != 0
            and "auth" in unauthenticated_submit.stderr.lower(),
            "unauthenticated submit rejected on the HTTP plane",
        )
        unauthenticated_line = subprocess.run(
            cli("cluster", "status", "--coordinator", worker_addr),
            env=naked, capture_output=True, text=True, timeout=60,
        )
        check(
            unauthenticated_line.returncode != 0
            and "auth" in unauthenticated_line.stderr.lower(),
            "unauthenticated status rejected on the line plane",
        )
    finally:
        for process in [p for _, _, p in clients] + workers:
            if process.poll() is None:
                process.kill()
        if service is not None and service.poll() is None:
            service.terminate()
            try:
                service.wait(timeout=15)
            except subprocess.TimeoutExpired:
                service.kill()
        if context is not None:
            context.cleanup()
    print("service smoke: all contracts hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Ablation: progressive BER schedule vs training directly at max BER.

DESIGN.md calls out the progressive schedule (Section IV-B Step-3: BER
raised geometrically after each stage) as a design choice.  This
ablation trains one model through the full ascending schedule and one
directly at the maximum BER, then evaluates both under errors at the
maximum rate.
"""

import numpy as np
import pytest

from benchmarks.conftest import N_STEPS, get_baseline, make_injector
from repro.analysis.reporting import format_table
from repro.analysis.sweeps import accuracy_vs_ber_sweep
from repro.core.fault_aware_training import improve_error_tolerance

MAX_BER = 1e-3
SCHEDULE = (1e-7, 1e-5, 1e-3)
N_NEURONS = 50


def test_ablation_progressive_vs_direct_schedule(benchmark, datasets):
    dataset = datasets["mnist"]
    baseline = get_baseline(datasets, "mnist", N_NEURONS)

    def run():
        progressive = improve_error_tolerance(
            baseline, dataset, make_injector(7), rates=SCHEDULE,
            epochs_per_rate=1, n_steps=N_STEPS, accuracy_bound=0.05,
            rng=np.random.default_rng(1),
        )
        direct = improve_error_tolerance(
            baseline, dataset, make_injector(7), rates=(MAX_BER,),
            epochs_per_rate=len(SCHEDULE), n_steps=N_STEPS, accuracy_bound=0.05,
            rng=np.random.default_rng(1),
        )
        rng = np.random.default_rng(2)
        acc_progressive = accuracy_vs_ber_sweep(
            progressive.model, dataset, make_injector(8), (MAX_BER,),
            N_STEPS, rng, trials=3,
        )[0].accuracy
        acc_direct = accuracy_vs_ber_sweep(
            direct.model, dataset, make_injector(8), (MAX_BER,),
            N_STEPS, rng, trials=3,
        )[0].accuracy
        return acc_progressive, acc_direct

    acc_progressive, acc_direct = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n" + format_table(
        ["schedule", f"accuracy @ BER {MAX_BER:.0e}"],
        [
            ["progressive (paper)", f"{acc_progressive:.1%}"],
            ["direct at max", f"{acc_direct:.1%}"],
            ["baseline accurate", f"{baseline.accuracy:.1%}"],
        ],
        title="ABLATION - progressive vs direct BER schedule",
    ))

    # the progressive schedule must not be worse than jumping straight
    # to the maximum rate (it is the paper's design choice)
    assert acc_progressive >= acc_direct - 0.05
    assert acc_progressive > 0.3


def test_ablation_equal_compute_budget(benchmark, datasets):
    """Both schedules above consume the same number of training epochs."""

    def run():
        return len(SCHEDULE) * 1, 1 * len(SCHEDULE)

    progressive_epochs, direct_epochs = benchmark(run)
    assert progressive_epochs == direct_epochs

"""Figs. 2(d) and 6: DRAM array voltage dynamics and timing parameters.

Paper shape: Varray rises from Vsupply/2 toward Vsupply on activate and
decays back on precharge; lower supply gives a uniformly lower curve;
the reliable tRCD/tRAS/tRP crossings stretch as the supply drops.
"""

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.dram.voltage import ArrayVoltageModel

#: the supply family of Fig. 6.
VOLTAGES = (1.35, 1.30, 1.25, 1.20, 1.15, 1.10)


def test_fig6_varray_dynamics_and_timing(benchmark):
    model = ArrayVoltageModel()

    def run():
        transients = model.transient_family(VOLTAGES, total_time_ns=80.0)
        timings = {
            v: (
                model.ready_to_access_time(v),
                model.ready_to_precharge_time(v),
                model.ready_to_activate_time(v),
            )
            for v in VOLTAGES
        }
        return transients, timings

    transients, timings = benchmark(run)

    rows = [
        [f"{v:.2f}", f"{t[0]:.1f}", f"{t[1]:.1f}", f"{t[2]:.1f}"]
        for v, t in timings.items()
    ]
    print("\n" + format_table(
        ["Vsupply [V]", "tRCD [ns]", "tRAS [ns]", "tRP [ns]"],
        rows,
        title="FIG 6 - reliable timing parameters vs supply voltage",
    ))

    # lower supply -> uniformly lower Varray curve during the shared
    # activate window (the Fig. 2d observation); after that point each
    # voltage precharges at its own reliable tRAS, so curves cross.
    earliest_precharge = min(tr.t_precharge_start_ns for tr in transients)
    for higher, lower in zip(transients, transients[1:]):
        window = higher.time_ns < earliest_precharge
        assert np.all(
            lower.varray_volts[window] <= higher.varray_volts[window] + 1e-12
        )

    # timings stretch monotonically as the voltage drops
    rcds = [timings[v][0] for v in VOLTAGES]
    assert all(a <= b for a, b in zip(rcds, rcds[1:]))

    # every curve starts at Vs/2 and peaks near Vs
    for tr in transients:
        assert tr.varray_volts[0] == pytest.approx(tr.v_supply / 2)
        assert tr.varray_volts.max() >= 0.97 * tr.v_supply

#!/usr/bin/env python
"""Telemetry smoke: merged fleet traces are real, and off means off.

Two contracts, checked end-to-end through the real CLI:

1. **Off is free** — without ``--trace`` no writer is ever allocated
   and the hot-path ``span()`` helper hands back its shared no-op, so
   instrumented code paths cost one global read.
2. **On is coherent** — a 2-worker localhost ``cluster sweep --trace``
   appends coordinator and worker spans to one JSONL file; the spans
   parse, carry ids, come from multiple processes, nest under parents
   present in the same file within wall-clock bounds, and export to a
   structurally valid Chrome/Perfetto ``trace.json``.

Usage::

    PYTHONPATH=src python benchmarks/smoke_telemetry.py

Exits non-zero on the first violated contract.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

#: Wall-clock slack for cross-process nesting checks: ``ts`` is
#: time.time() at span entry while ``dur_s`` is monotonic, so parent
#: and child clocks can disagree by scheduling + clock-domain jitter.
NEST_SLACK_S = 0.25

SWEEP_ARGS = [
    "cluster", "sweep",
    "--workers", "2",
    "--voltages", "1.325", "1.025",
    "--seeds", "42", "43",
    "--neurons", "12", "--train", "40", "--test", "25", "--steps", "30",
    "--bound", "0.5",
    "--wait-timeout", "300",
    "--json",
]


def check(condition: bool, label: str) -> None:
    if not condition:
        print(f"FAIL: {label}", file=sys.stderr)
        sys.exit(1)
    print(f"ok: {label}")


def check_off_is_free() -> None:
    from repro import SparkXDConfig
    from repro.pipeline import ArtifactStore, ExperimentPipeline
    from repro.telemetry import span, trace_writer

    tiny = SparkXDConfig.small(
        n_train=25, n_test=15, n_neurons=8, n_steps=20,
        baseline_epochs=1, ber_rates=(1e-4,), accuracy_bound=0.5,
    )
    pipeline = ExperimentPipeline(tiny, store=ArtifactStore())
    pipeline.run()
    check(trace_writer() is None, "telemetry off: no trace writer allocated")
    check(span("x") is span("y"), "telemetry off: span() is the shared no-op")
    check(
        all(v > 0 for v in pipeline.stage_timings.values()),
        "telemetry off: stage_timings still measured",
    )


def run_traced_sweep(trace_path: Path) -> None:
    command = [sys.executable, "-m", "repro", *SWEEP_ARGS,
               "--trace", str(trace_path)]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    result = subprocess.run(
        command, env=env, capture_output=True, text=True, timeout=900
    )
    if result.returncode != 0:
        print(result.stdout, file=sys.stderr)
        print(result.stderr, file=sys.stderr)
    check(result.returncode == 0, "2-worker cluster sweep --trace completed")
    records = json.loads(result.stdout)
    check(len(records) == 4, "sweep produced all 4 grid-point records")


def check_trace_contents(trace_path: Path) -> None:
    spans = []
    with open(trace_path, "r", encoding="utf-8") as handle:
        for line in handle:
            if line.strip():
                spans.append(json.loads(line))  # malformed line -> raise
    check(len(spans) > 0, f"trace parsed: {len(spans)} span record(s)")
    by_id = {}
    required = ("name", "trace", "span", "pid", "tid", "ts", "dur_s")
    for record in spans:
        missing = [field for field in required if field not in record]
        if missing:
            check(False, f"span record missing {missing}: {record!r}")
        by_id[record["span"]] = record
    check(True, f"every record carries {', '.join(required)}")
    check(len(by_id) == len(spans), "span ids are unique")

    pids = {record["pid"] for record in spans}
    check(
        len(pids) >= 2,
        f"spans from multiple processes share the file (pids={sorted(pids)})",
    )

    names = {record["name"] for record in spans}
    check("cluster.sweep" in names, "coordinator recorded cluster.sweep")
    check("cluster.job" in names, "workers recorded cluster.job spans")
    check(
        any(name.startswith("stage.") for name in names),
        "pipeline stage spans recorded",
    )

    sweep = next(r for r in spans if r["name"] == "cluster.sweep")
    jobs = [r for r in spans if r["name"] == "cluster.job"]
    check(
        all(j["trace"] == sweep["trace"] for j in jobs),
        "worker job spans joined the coordinator's trace",
    )
    check(
        all(j["parent"] == sweep["span"] for j in jobs),
        "worker job spans parent under the sweep span",
    )

    parented = [r for r in spans if r.get("parent")]
    check(len(parented) > 0, "nested spans present")
    orphans = [r for r in parented if r["parent"] not in by_id]
    check(not orphans, "every parent id resolves within the file")
    for record in parented:
        parent = by_id[record["parent"]]
        starts_inside = record["ts"] >= parent["ts"] - NEST_SLACK_S
        ends_inside = (
            record["ts"] + record["dur_s"]
            <= parent["ts"] + parent["dur_s"] + NEST_SLACK_S
        )
        check(
            starts_inside and ends_inside,
            f"{record['name']} nests inside {parent['name']} in time",
        )
        break  # one detailed bound per run keeps the log readable
    check(
        all(
            r["ts"] >= p["ts"] - NEST_SLACK_S
            and r["ts"] + r["dur_s"] <= p["ts"] + p["dur_s"] + NEST_SLACK_S
            for r in parented
            for p in (by_id[r["parent"]],)
        ),
        "all child spans start and end within their parents (with slack)",
    )


def check_chrome_export(trace_path: Path, out_path: Path) -> None:
    command = [
        sys.executable, "-m", "repro", "telemetry", "export",
        "--trace", str(trace_path), "--out", str(out_path), "--json",
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    result = subprocess.run(
        command, env=env, capture_output=True, text=True, timeout=120
    )
    check(result.returncode == 0, "repro telemetry export succeeded")
    summary = json.loads(result.stdout)
    check(summary["pids"] >= 2, "export summary sees multiple processes")

    trace = json.loads(out_path.read_text())
    events = trace["traceEvents"]
    check(isinstance(events, list) and events, "traceEvents is a non-empty list")
    check(summary["events"] == len(events), "export summary counts the events")
    for event in events:
        ok = (
            isinstance(event.get("name"), str)
            and event.get("ph") == "X"
            and isinstance(event.get("ts"), (int, float))
            and isinstance(event.get("dur"), (int, float))
            and isinstance(event.get("pid"), int)
            and isinstance(event.get("tid"), int)
        )
        if not ok:
            check(False, f"malformed Chrome event: {event!r}")
    check(
        events == sorted(events, key=lambda e: e["ts"]),
        "Chrome events are start-time ordered",
    )
    print(f"chrome trace: {len(events)} event(s) -> {out_path}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--keep", metavar="DIR", default=None,
                        help="write the trace files into DIR instead of a "
                             "temporary directory (for inspection)")
    args = parser.parse_args(argv)

    check_off_is_free()
    if args.keep:
        workdir = Path(args.keep)
        workdir.mkdir(parents=True, exist_ok=True)
        context = None
    else:
        context = tempfile.TemporaryDirectory()
        workdir = Path(context.name)
    try:
        trace_path = workdir / "fleet_trace.jsonl"
        run_traced_sweep(trace_path)
        check_trace_contents(trace_path)
        check_chrome_export(trace_path, workdir / "fleet_trace.chrome.json")
    finally:
        if context is not None:
            context.cleanup()
    print("telemetry smoke: all contracts hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())

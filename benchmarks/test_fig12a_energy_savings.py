"""Fig. 12(a): DRAM energy per inference across voltages and network sizes.

Paper series: reducing Vsupply to 1.325/1.250/1.175/1.100/1.025 V saves
3.84/13.33/22.69/31.12/39.46% on average across N400-N3600; savings are
nearly size-independent; the whole-inference saving sits slightly below
Table I's per-access 42.40% at 1.025 V.

This experiment uses the paper's *true* network sizes - it exercises
only the DRAM model, not SNN training.
"""

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.core.mapping_policy import baseline_mapping, sparkxd_mapping
from repro.dram.controller import DramController
from repro.dram.specs import LPDDR3_1600_4GB
from repro.errors.weak_cells import WeakCellMap
from repro.snn.network import PAPER_NETWORK_SIZES
from repro.trace.generator import InferenceTraceSpec, inference_read_trace

VOLTAGES = (1.325, 1.250, 1.175, 1.100, 1.025)
PAPER_MEAN_SAVINGS = (0.0384, 0.1333, 0.2269, 0.3112, 0.3946)
N_INPUT = 784
BER_THRESHOLD = 1e-3  # the paper's maximum trained-through BER


def run_experiment():
    controller = DramController(LPDDR3_1600_4GB)
    org = controller.organization
    weak_cells = WeakCellMap(org, sigma=0.8, seed=0)
    savings = {}
    energies = {}
    for n_neurons in PAPER_NETWORK_SIZES:
        n_weights = N_INPUT * n_neurons
        spec = InferenceTraceSpec(n_weights=n_weights, bits_per_weight=32)
        base_map = baseline_mapping(org, n_weights, 32)
        base = controller.execute(
            inference_read_trace(spec, base_map.slot_of_chunk, org), 1.35
        )
        energies[(n_neurons, 1.35)] = base.energy.total_mj
        for v in VOLTAGES:
            profile = weak_cells.profile_at(v)
            mapping = sparkxd_mapping(org, n_weights, 32, profile, BER_THRESHOLD)
            result = controller.execute(
                inference_read_trace(spec, mapping.slot_of_chunk, org), v
            )
            energies[(n_neurons, v)] = result.energy.total_mj
            savings[(n_neurons, v)] = 1 - result.energy.total_nj / base.energy.total_nj
    return savings, energies


def test_fig12a_dram_energy_savings(benchmark):
    savings, energies = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = []
    for n in PAPER_NETWORK_SIZES:
        rows.append(
            [f"N{n}", f"{energies[(n, 1.35)]:.4f}"]
            + [f"{savings[(n, v)]:.2%}" for v in VOLTAGES]
        )
    mean_savings = [
        float(np.mean([savings[(n, v)] for n in PAPER_NETWORK_SIZES]))
        for v in VOLTAGES
    ]
    rows.append(["mean", ""] + [f"{s:.2%}" for s in mean_savings])
    rows.append(["paper-mean", ""] + [f"{s:.2%}" for s in PAPER_MEAN_SAVINGS])
    print("\n" + format_table(
        ["network", "base [mJ]"] + [f"{v:.3f}V" for v in VOLTAGES],
        rows,
        title="FIG 12(a) - DRAM energy savings vs baseline (accurate DRAM, 1.35V)",
    ))

    # shape: savings grow monotonically as voltage drops...
    assert all(a < b for a, b in zip(mean_savings, mean_savings[1:]))
    # ...reach ~40% at 1.025V (paper: 39.46%)...
    assert mean_savings[-1] == pytest.approx(PAPER_MEAN_SAVINGS[-1], abs=0.03)
    # ...stay below the per-access Table-I saving (42.40%)...
    assert mean_savings[-1] < 0.424
    # ...and are nearly independent of the network size.
    for v in VOLTAGES:
        per_size = [savings[(n, v)] for n in PAPER_NETWORK_SIZES]
        assert max(per_size) - min(per_size) < 0.02
    # energy grows with network size at fixed voltage
    base_energies = [energies[(n, 1.35)] for n in PAPER_NETWORK_SIZES]
    assert all(a < b for a, b in zip(base_energies, base_energies[1:]))

"""Table I: DRAM energy-per-access savings at each reduced voltage.

Paper row: 1.325V 3.92% | 1.250V 14.29% | 1.175V 24.33% | 1.100V 33.59%
| 1.025V 42.40%.
"""

import pytest

from repro.analysis.reporting import format_percent_row
from repro.dram.energy import DramEnergyModel
from repro.dram.specs import LPDDR3_1600_4GB

VOLTAGES = (1.325, 1.250, 1.175, 1.100, 1.025)
PAPER = (0.0392, 0.1429, 0.2433, 0.3359, 0.4240)


def test_table1_energy_per_access_savings(benchmark):
    model = DramEnergyModel(LPDDR3_1600_4GB)

    def run():
        return [model.energy_per_access_saving(v) for v in VOLTAGES]

    savings = benchmark(run)

    print("\nTABLE I - energy savings over the baseline (energy-per-access)")
    print(format_percent_row("voltage " + "  ".join(f"{v:.3f}V" for v in VOLTAGES), []))
    print(format_percent_row("paper", PAPER))
    print(format_percent_row("measured", savings))

    for measured, paper in zip(savings, PAPER):
        assert measured == pytest.approx(paper, abs=0.005)
    assert all(a < b for a, b in zip(savings, savings[1:]))

"""Fig. 12(b): speed-up of SparkXD over the baseline SNN.

Paper shape: SparkXD maintains data throughput (~1.02x average speed-up)
despite the derated row timings, because the Algorithm-2 mapping
maximises row hits and hides activations behind multi-bank bursts.
"""

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.core.mapping_policy import baseline_mapping, sparkxd_mapping
from repro.dram.controller import DramController
from repro.dram.specs import LPDDR3_1600_4GB
from repro.errors.weak_cells import WeakCellMap
from repro.snn.network import PAPER_NETWORK_SIZES
from repro.trace.generator import InferenceTraceSpec, inference_read_trace

N_INPUT = 784
V_REDUCED = 1.025
BER_THRESHOLD = 1e-3


def run_experiment():
    controller = DramController(LPDDR3_1600_4GB)
    org = controller.organization
    weak_cells = WeakCellMap(org, sigma=0.8, seed=0)
    profile = weak_cells.profile_at(V_REDUCED)
    speedups = {}
    for n_neurons in PAPER_NETWORK_SIZES:
        n_weights = N_INPUT * n_neurons
        spec = InferenceTraceSpec(n_weights=n_weights, bits_per_weight=32)
        base_map = baseline_mapping(org, n_weights, 32)
        base = controller.execute(
            inference_read_trace(spec, base_map.slot_of_chunk, org), 1.35
        )
        mapping = sparkxd_mapping(org, n_weights, 32, profile, BER_THRESHOLD)
        result = controller.execute(
            inference_read_trace(spec, mapping.slot_of_chunk, org), V_REDUCED
        )
        speedups[n_neurons] = base.stats.total_time_ns / result.stats.total_time_ns
    return speedups


def test_fig12b_speedup(benchmark):
    speedups = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = [[f"N{n}", f"{s:.3f}x"] for n, s in speedups.items()]
    mean = float(np.mean(list(speedups.values())))
    rows.append(["mean", f"{mean:.3f}x (paper: 1.02x)"])
    print("\n" + format_table(
        ["network", "speed-up vs baseline"],
        rows,
        title="FIG 12(b) - SparkXD speed-up over baseline SNN",
    ))

    # SparkXD maintains throughput: ~1x, not a slowdown, despite the
    # 1.025V derated timings.
    assert mean == pytest.approx(1.02, abs=0.03)
    for s in speedups.values():
        assert s >= 0.99

"""Fig. 2(b): DRAM access energy per row-buffer condition at 1.35/1.025 V.

Paper shape: hit < miss < conflict; reduced voltage saves 31-42% per
access; absolute scale a few nJ.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.dram.commands import AccessCondition
from repro.dram.energy import DramEnergyModel
from repro.dram.specs import LPDDR3_1600_4GB


def test_fig2b_access_energy_by_condition(benchmark):
    model = DramEnergyModel(LPDDR3_1600_4GB)

    def run():
        return {
            condition: (
                model.access_energy(condition, 1.350).total_nj,
                model.access_energy(condition, 1.025).total_nj,
            )
            for condition in AccessCondition
        }

    energies = benchmark(run)

    rows = []
    savings = []
    for condition, (nominal, reduced) in energies.items():
        saving = 1 - reduced / nominal
        savings.append(saving)
        rows.append([condition.value, f"{nominal:.2f}", f"{reduced:.2f}", f"{saving:.1%}"])
    print("\n" + format_table(
        ["condition", "1.350V [nJ]", "1.025V [nJ]", "saving"],
        rows,
        title="FIG 2(b) - DRAM access energy by row-buffer condition",
    ))

    hit = energies[AccessCondition.HIT]
    miss = energies[AccessCondition.MISS]
    conflict = energies[AccessCondition.CONFLICT]
    # ordering holds at both voltages
    assert hit[0] < miss[0] < conflict[0]
    assert hit[1] < miss[1] < conflict[1]
    # paper: "31%-42% energy savings per access"
    assert min(savings) == pytest.approx(0.31, abs=0.03)
    assert max(savings) == pytest.approx(0.42, abs=0.02)
    # nJ scale of the figure's y-axis (0-8 nJ)
    assert conflict[0] < 8.0

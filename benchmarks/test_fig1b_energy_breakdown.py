"""Fig. 1(b): energy breakdown of SNN processing across platforms.

Paper shape (adapted from Krithivasan et al.): memory accesses dominate,
consuming ~50-75% of total energy on TrueNorth, PEASE and SNNAP.
"""

import pytest

from repro.analysis.platforms import PAPER_PLATFORMS, energy_breakdown
from repro.analysis.reporting import format_table


def test_fig1b_energy_breakdown(benchmark):
    def run():
        return {p.name: energy_breakdown(p) for p in PAPER_PLATFORMS}

    breakdowns = benchmark(run)

    rows = [
        [name, f"{b['computation']:.1%}", f"{b['communication']:.1%}", f"{b['memory']:.1%}"]
        for name, b in breakdowns.items()
    ]
    print("\n" + format_table(
        ["platform", "computation", "communication", "memory"],
        rows,
        title="FIG 1(b) - SNN processing energy breakdown "
        "(paper: memory accesses ~50-75% everywhere)",
    ))

    for name, b in breakdowns.items():
        assert sum(b.values()) == pytest.approx(1.0)
        assert 0.5 <= b["memory"] <= 0.8, name
        assert b["memory"] > b["computation"], name
        assert b["memory"] > b["communication"], name

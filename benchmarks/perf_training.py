#!/usr/bin/env python
"""Training throughput benchmark: sequential vs minibatch vs fused STDP.

Measures how many training-sample presentations per second the
sequential (``batch_size=1``), minibatch-reference
(``kernel="reference"``) and fused (``kernel="auto"``) training
engines sustain on two network sizes at both compute precisions.
Timing is steady-state: each engine column reuses one trainer (so
workspaces, minibatch machinery and the drive operator cache are warm)
and reports its best epoch.  Two bitwise gates guard the numbers:
``batch_size=1`` must reproduce the historical sequential loop, and
the fused kernel must reproduce the minibatch-reference kernel —
weight for weight, threshold for threshold.  Results go to
``BENCH_training.json`` — the training half of the repo's performance
trajectory artifacts (see ``BENCH_engine.json`` for evaluation).

Usage::

    PYTHONPATH=src python benchmarks/perf_training.py           # full run
    PYTHONPATH=src python benchmarks/perf_training.py --quick   # CI smoke

The workload mirrors one fault-aware training stage (Algorithm 1):
Poisson-encoded samples presented with STDP, a corrupted-weight read
per presentation, deltas credited back to the stored clean tensor.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.engine.trainer import BatchedTrainer
from repro.snn.encoding import poisson_rate_code
from repro.snn.kernels import resolve_kernel
from repro.snn.network import DiehlCookNetwork, NetworkParameters, make_stdp
from repro.snn.stdp import normalize_columns

# N400 runs batch 32: the dense-step cutoff in the accumulate makes
# larger minibatches profitable there (with the purely column-restricted
# accumulate, 32 lanes' bigger spiking-column unions made B=32 *slower*
# than B=16).
FULL_SCENARIOS = (
    {"n_neurons": 100, "n_train": 32, "n_steps": 100, "dtype": "float64",
     "batch_size": 16},
    {"n_neurons": 400, "n_train": 32, "n_steps": 100, "dtype": "float64",
     "batch_size": 32},
    {"n_neurons": 100, "n_train": 32, "n_steps": 100, "dtype": "float32",
     "batch_size": 16},
    {"n_neurons": 400, "n_train": 32, "n_steps": 100, "dtype": "float32",
     "batch_size": 32},
)
QUICK_SCENARIOS = (
    {"n_neurons": 60, "n_train": 12, "n_steps": 30, "dtype": "float64",
     "batch_size": 6},
    {"n_neurons": 100, "n_train": 12, "n_steps": 30, "dtype": "float32",
     "batch_size": 6},
)


def _images(scenario: dict, n_input: int = 784) -> np.ndarray:
    rng = np.random.default_rng(1234)
    # MNIST-like sparse images: most pixels dark, a bright blob.
    return np.clip(
        rng.random((scenario["n_train"], n_input)) - 0.55, 0.0, 0.45
    ) * 2


def _network(scenario: dict, n_input: int = 784) -> DiehlCookNetwork:
    params = NetworkParameters(n_input=n_input, n_neurons=scenario["n_neurons"])
    return DiehlCookNetwork(
        params, rng=np.random.default_rng(7), dtype=np.dtype(scenario["dtype"])
    )


def _corrupter(network: DiehlCookNetwork, seed: int = 5):
    """A cheap stand-in for the DRAM error injector (same call pattern)."""
    rng = np.random.default_rng(seed)

    def corrupt(weights):
        noisy = weights + rng.normal(0.0, 0.005, weights.shape).astype(
            weights.dtype, copy=False
        )
        return np.clip(noisy, 0.0, network.w_max)

    return corrupt


def _reference_train(network, images, n_steps, rng, corrupt):
    """The pre-refactor sequential loop (ground truth for the identity check)."""
    stdp = make_stdp(network)
    order = rng.permutation(len(images))
    for i in order:
        train = poisson_rate_code(images[i], n_steps, rng=rng)
        clean = network.weights
        corrupted = np.asarray(corrupt(clean), dtype=network.dtype)
        network.weights = corrupted.copy()
        network.run_sample(train, stdp=stdp, normalize=False)
        delta = network.weights - corrupted
        network.weights = np.clip(clean + delta, 0.0, network.w_max)
        if network.parameters.weight_norm > 0:
            normalize_columns(network.weights, network.parameters.weight_norm)


def _time_trainer(scenario, batch_size, repeats, kernel="reference"):
    """Best steady-state epoch seconds of one engine configuration.

    One trainer serves warmup + all timed epochs, the way the training
    engine runs in a fault-aware sweep (many epochs x BER stages per
    trainer): the minibatch machinery, fused workspaces and first-touch
    costs are paid once, outside the timed region.
    """
    images = _images(scenario)
    network = _network(scenario)
    trainer = BatchedTrainer(
        network,
        batch_size=batch_size,
        corrupt_weights=_corrupter(network),
        kernel=kernel,
    )
    rng = np.random.default_rng(99)
    trainer.train(images, n_steps=scenario["n_steps"], epochs=1, rng=rng)
    best = np.inf
    for _ in range(repeats):
        started = time.perf_counter()
        trainer.train(
            images, n_steps=scenario["n_steps"], epochs=1, rng=rng
        )
        best = min(best, time.perf_counter() - started)
    return best


def _trained_network(scenario, batch_size, kernel):
    """One fresh-trainer epoch at a fixed seed (for the identity gates)."""
    network = _network(scenario)
    trainer = BatchedTrainer(
        network,
        batch_size=batch_size,
        corrupt_weights=_corrupter(network),
        kernel=kernel,
    )
    trainer.train(
        _images(scenario), n_steps=scenario["n_steps"], epochs=1,
        rng=np.random.default_rng(99),
    )
    return network


def _same_state(a, b) -> bool:
    return bool(
        np.array_equal(a.weights, b.weights)
        and np.array_equal(a.neurons.theta, b.neurons.theta)
    )


def run_benchmark(quick: bool, repeats: int) -> dict:
    scenarios = QUICK_SCENARIOS if quick else FULL_SCENARIOS
    fused_kernel = resolve_kernel("auto")
    results = []
    for scenario in scenarios:
        n_train = scenario["n_train"]
        batch = scenario["batch_size"]
        row = dict(scenario, n_input=784, fused_kernel=fused_kernel)

        # Bit-identity gates: batch_size=1 must equal the historical
        # loop; the fused kernel must equal the minibatch reference.
        ref_net = _network(scenario)
        _reference_train(
            ref_net, _images(scenario), scenario["n_steps"],
            np.random.default_rng(99), _corrupter(ref_net),
        )
        row["sequential_matches_reference"] = _same_state(
            ref_net, _trained_network(scenario, 1, "reference")
        )
        row["fused_matches_batched"] = _same_state(
            _trained_network(scenario, batch, "reference"),
            _trained_network(scenario, batch, "auto"),
        )

        seq_seconds = _time_trainer(scenario, 1, repeats)
        batch_seconds = _time_trainer(scenario, batch, repeats)
        fused_seconds = _time_trainer(scenario, batch, repeats, kernel="auto")

        row["sequential_seconds"] = seq_seconds
        row["sequential_samples_per_sec"] = n_train / seq_seconds
        row["batched_seconds"] = batch_seconds
        row["batched_samples_per_sec"] = n_train / batch_seconds
        row["speedup"] = seq_seconds / batch_seconds
        row["fused_seconds"] = fused_seconds
        row["fused_samples_per_sec"] = n_train / fused_seconds
        row["fused_speedup"] = seq_seconds / fused_seconds
        results.append(row)
        print(
            f"N{scenario['n_neurons']:<4} {scenario['dtype']:<8} "
            f"B={batch:<3} {n_train:>3} samples | "
            f"sequential {row['sequential_samples_per_sec']:7.1f}/s | "
            f"batched {row['batched_samples_per_sec']:7.1f}/s "
            f"({row['speedup']:5.2f}x) | "
            f"fused[{fused_kernel}] {row['fused_samples_per_sec']:7.1f}/s "
            f"({row['fused_speedup']:5.2f}x) | "
            f"seq-identical={row['sequential_matches_reference']} "
            f"fused-identical={row['fused_matches_batched']}"
        )
    return {
        "benchmark": "repro.engine.trainer sequential-vs-minibatch throughput",
        "quick": quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "scenarios": results,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small scenarios for CI smoke runs")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed epochs per engine; the best is reported")
    parser.add_argument("--out", default="BENCH_training.json", metavar="PATH",
                        help="output JSON path (default: ./BENCH_training.json)")
    args = parser.parse_args(argv)
    if args.repeats <= 0:
        parser.error("--repeats must be > 0")

    payload = run_benchmark(args.quick, args.repeats)
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"results written to {out}")

    failed = False
    if not all(r["sequential_matches_reference"] for r in payload["scenarios"]):
        print("ERROR: batch_size=1 diverged from the reference sequential loop",
              file=sys.stderr)
        failed = True
    if not all(r["fused_matches_batched"] for r in payload["scenarios"]):
        print("ERROR: fused kernel diverged from the minibatch reference",
              file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

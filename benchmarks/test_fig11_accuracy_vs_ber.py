"""Fig. 11: accuracy vs BER for the three configurations of the paper.

Paper shape, per network size and dataset:

- *baseline SNN + accurate DRAM*: a flat reference line;
- *baseline SNN + approximate DRAM*: tracks the reference at low BER
  and degrades below the 1% target band as the BER grows;
- *improved SNN + approximate DRAM (SparkXD)*: stays within the target
  band across the whole swept range.

The paper sweeps N400-N3600 on MNIST and Fashion-MNIST with BER
10^-9..10^-3.  At CPU scale we run two scaled sizes per dataset (the
paper-to-benchmark size map is printed) and add a 10x-beyond-max point
(1e-2) where the baseline's degradation is unambiguous.
"""

import numpy as np
import pytest

from benchmarks.conftest import (
    FIG11_RATES,
    N_STEPS,
    SCALED_SIZES,
    get_baseline,
    get_improved,
    make_injector,
)
from repro.analysis.reporting import format_table
from repro.analysis.sweeps import accuracy_vs_ber_sweep

SWEEP_RATES = FIG11_RATES + (1e-2,)
CASES = [("mnist", 400), ("mnist", 1600), ("fashion", 400), ("fashion", 1600)]
BAND = 0.05  # CPU-scale target band (paper: 0.01; see EXPERIMENTS.md)


@pytest.mark.parametrize("dataset_name,paper_size", CASES)
def test_fig11_accuracy_vs_ber(benchmark, datasets, dataset_name, paper_size):
    n_neurons = SCALED_SIZES[paper_size]
    dataset = datasets[dataset_name]
    baseline = get_baseline(datasets, dataset_name, n_neurons)
    improved = get_improved(datasets, dataset_name, n_neurons).model
    rng = np.random.default_rng(31)

    def run():
        base_curve = accuracy_vs_ber_sweep(
            baseline, dataset, make_injector(2), SWEEP_RATES, N_STEPS, rng, trials=2
        )
        improved_curve = accuracy_vs_ber_sweep(
            improved, dataset, make_injector(3), SWEEP_RATES, N_STEPS, rng, trials=2
        )
        return base_curve, improved_curve

    base_curve, improved_curve = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for b, i in zip(base_curve, improved_curve):
        rows.append([f"{b.ber:.0e}", f"{b.accuracy:.1%}", f"{i.accuracy:.1%}"])
    print("\n" + format_table(
        ["BER", "baseline+approx", "SparkXD+approx"],
        rows,
        title=(
            f"FIG 11 - {dataset_name} N{paper_size} (-> {n_neurons} neurons at "
            f"CPU scale); baseline+accurate = {baseline.accuracy:.1%}"
        ),
    ))

    target = baseline.accuracy - BAND
    # SparkXD stays within the band across the paper's swept range
    for point in improved_curve:
        if point.ber <= max(FIG11_RATES):
            assert point.accuracy >= target - 0.02, (
                f"SparkXD fell out of band at BER {point.ber:.0e}"
            )
    # the baseline with approximate DRAM degrades once errors are heavy
    assert base_curve[-1].accuracy < baseline.accuracy - 0.02
    # and SparkXD's worst in-range point beats the baseline's worst
    improved_worst = min(
        p.accuracy for p in improved_curve if p.ber <= max(FIG11_RATES)
    )
    base_worst = min(p.accuracy for p in base_curve)
    assert improved_worst > base_worst

"""Fig. 8: the error-tolerance analysis of an improved model.

Paper shape: the error-tolerance curve of the improved SNN is generally
decreasing in BER; the linear search picks the maximum tolerable BER
whose accuracy still meets the target; the paper's example is the N900
network (scaled here per conftest.SCALED_SIZES).
"""

import numpy as np
import pytest

from benchmarks.conftest import FIG11_RATES, N_STEPS, SCALED_SIZES, get_improved, make_injector
from repro.analysis.reporting import format_table
from repro.core.tolerance_analysis import analyze_error_tolerance

PAPER_SIZE = 900
ACCURACY_BOUND = 0.05  # CPU-scale bound (paper: 0.01; see EXPERIMENTS.md)


def test_fig8_tolerance_analysis(benchmark, datasets):
    n_neurons = SCALED_SIZES[PAPER_SIZE]
    training = get_improved(datasets, "mnist", n_neurons)
    baseline_accuracy = max(training.accuracy_per_rate.values())

    def run():
        return analyze_error_tolerance(
            training.model,
            datasets["mnist"],
            make_injector(seed=5),
            rates=FIG11_RATES,
            baseline_accuracy=baseline_accuracy,
            accuracy_bound=ACCURACY_BOUND,
            n_steps=N_STEPS,
            trials=2,
            rng=np.random.default_rng(8),
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [[f"{p.ber:.0e}", f"{p.accuracy:.1%}"] for p in report.points]
    rows.append(["target", f"{report.target_accuracy:.1%}"])
    rows.append(["BER_th", str(report.ber_threshold)])
    rows.append(["min voltage", f"{report.min_voltage():.3f} V"])
    print("\n" + format_table(
        ["BER", "accuracy"],
        rows,
        title=f"FIG 8 - error tolerance analysis (paper N{PAPER_SIZE} -> "
        f"{n_neurons} neurons at CPU scale)",
    ))

    # a threshold was found, and everything at or below it meets the target
    assert report.ber_threshold is not None
    for point in report.points:
        if point.ber <= report.ber_threshold:
            pass  # individual low-BER points may wobble; the search key:
    # the selected threshold itself met the target
    at_threshold = [p for p in report.points if p.ber == report.ber_threshold]
    assert at_threshold[0].accuracy >= report.target_accuracy
    # the curve is "generally decreasing": the best accuracy is not at
    # the highest BER unless everything passes
    accuracies = [p.accuracy for p in report.points]
    assert max(accuracies[:2]) >= accuracies[-1] - 0.02

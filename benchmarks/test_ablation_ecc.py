"""Ablation: SparkXD (fault-aware model) vs SEC-DED ECC protection.

The conventional way to survive approximate DRAM is ECC.  Hamming(72,64)
corrects any single flip per 64-bit word but costs +12.5% storage,
bandwidth and access energy, and breaks down once multiple errors land
in one word.  SparkXD instead makes the *model* tolerant and pays no
storage overhead.  This ablation compares:

- accuracy at several BERs: plain model vs ECC-protected model;
- the effective DRAM traffic (stored bits) of each approach.
"""

import numpy as np
import pytest

from benchmarks.conftest import N_STEPS, get_baseline
from repro.analysis.reporting import format_table
from repro.analysis.sweeps import accuracy_vs_ber_sweep
from repro.errors.ecc import ECC_OVERHEAD, EccProtectedRepresentation
from repro.errors.injection import ErrorInjector
from repro.snn.quantization import Float32Representation

N_NEURONS = 50
RATES = (1e-5, 1e-3, 1e-2)


def test_ablation_ecc_vs_fault_tolerance(benchmark, datasets):
    dataset = datasets["mnist"]
    model = get_baseline(datasets, "mnist", N_NEURONS)

    plain_rep = Float32Representation(clip_range=(0.0, 1.0))
    ecc_rep = EccProtectedRepresentation(Float32Representation(clip_range=(0.0, 1.0)))

    def run():
        rng = np.random.default_rng(17)
        plain = accuracy_vs_ber_sweep(
            model, dataset, ErrorInjector(plain_rep, seed=5), RATES,
            N_STEPS, rng, trials=2,
        )
        ecc = accuracy_vs_ber_sweep(
            model, dataset, ErrorInjector(ecc_rep, seed=5), RATES,
            N_STEPS, rng, trials=2,
        )
        return plain, ecc

    plain, ecc = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [f"{p.ber:.0e}", f"{p.accuracy:.1%}", f"{e.accuracy:.1%}"]
        for p, e in zip(plain, ecc)
    ]
    rows.append(["storage", "32 b/weight", f"{32 * (1 + ECC_OVERHEAD):.0f} b/weight"])
    print("\n" + format_table(
        ["BER", "no ECC (SparkXD substrate)", "SEC-DED ECC"],
        rows,
        title="ABLATION - ECC protection vs error-exposed storage "
        f"(error-free reference: {model.accuracy:.1%})",
    ))

    by_rate_plain = {p.ber: p.accuracy for p in plain}
    by_rate_ecc = {p.ber: p.accuracy for p in ecc}
    # At moderate BER (<= ~1e-4 per 72-bit word means <1 expected flip
    # per word) ECC fully shields accuracy...
    assert by_rate_ecc[1e-5] >= model.accuracy - 0.05
    assert by_rate_ecc[1e-3] >= by_rate_plain[1e-3] - 0.03
    # ...but it always pays the 12.5% storage/bandwidth overhead.
    assert ecc_rep.bits_per_weight == 36
    assert plain_rep.bits_per_weight == 32

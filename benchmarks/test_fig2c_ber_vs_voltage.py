"""Fig. 2(c): bit error rate versus DRAM supply voltage.

Paper shape: BER increases monotonically as the supply voltage
decreases, spanning many decades between ~1.325 V and ~1.025 V.
"""

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.errors.ber import DEFAULT_BER_CURVE


def test_fig2c_ber_curve(benchmark):
    voltages = np.round(np.arange(1.025, 1.351, 0.025), 3)

    def run():
        return DEFAULT_BER_CURVE.ber_array(voltages)

    bers = benchmark(run)

    rows = [[f"{v:.3f}", f"{b:.2e}" if b else "0"] for v, b in zip(voltages, bers)]
    print("\n" + format_table(
        ["Vsupply [V]", "BER"], rows, title="FIG 2(c) - BER vs supply voltage"
    ))

    # monotone: lower voltage -> more errors
    nonzero = bers[bers > 0]
    assert np.all(np.diff(nonzero) < 0)
    # zero errors at and above the safe voltage
    assert bers[-1] == 0.0
    # spans several decades, like the figure's log axis
    assert nonzero.max() / nonzero.min() > 1e4

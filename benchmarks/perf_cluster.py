#!/usr/bin/env python
"""Distributed sweep throughput: localhost worker fleets vs the Runner.

Runs one fixed sweep grid through the in-process serial ``Runner``
(the baseline), then through ``repro.cluster.ClusterExecutor`` with
1 / 2 / 4 localhost worker *subprocesses*, double-checks that every
distributed run produces records value-identical to the serial
baseline, and writes the results to ``BENCH_cluster.json`` — the
cluster half of the repo's performance trajectory artifacts.

Usage::

    PYTHONPATH=src python benchmarks/perf_cluster.py           # full run
    PYTHONPATH=src python benchmarks/perf_cluster.py --quick   # CI smoke

The grid deliberately contains several *training-side* fingerprints
(a seed axis), so there is real work to distribute: each worker is a
fresh interpreter computing whole training chains, with artifacts
flowing back over the content-addressed sync layer.  The quick variant
doubles as the CI cluster smoke: a coordinator plus 2 localhost
workers over a tiny 4-point sweep, asserting record equality with the
serial ``Runner`` (exit 1 on any divergence).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro import SparkXDConfig
from repro.analysis.export import records_equivalent
from repro.cluster import ClusterExecutor, local_worker_processes
from repro.pipeline import ArtifactStore, Runner

FULL_CONFIG = dict(
    n_train=120, n_test=60, n_neurons=60, n_steps=60,
    baseline_epochs=1, ber_rates=(1e-5, 1e-3), accuracy_bound=0.5,
)
FULL_GRID = {"seed": [42, 43, 44, 45], "voltages": [(1.325,), (1.025,)]}
QUICK_CONFIG = dict(
    n_train=40, n_test=25, n_neurons=12, n_steps=30,
    baseline_epochs=1, ber_rates=(1e-5, 1e-3), accuracy_bound=0.5,
)
QUICK_GRID = {"seed": [42, 43], "voltages": [(1.325,), (1.025,)]}

FULL_FLEETS = (1, 2, 4)
QUICK_FLEETS = (2,)


def _distributed_run(config, grid, n_workers, lease_s=60.0):
    """One cluster sweep against a fresh fleet; returns (records, seconds)."""
    executor = ClusterExecutor(
        config,
        store=ArtifactStore(),
        lease_timeout=lease_s,
        poll_s=0.05,
        wait_timeout=1800.0,
    )
    started = time.perf_counter()
    with contextlib.ExitStack() as stack:
        records = executor.run(
            grid,
            on_ready=lambda address: stack.enter_context(
                local_worker_processes(address, n_workers, max_idle_s=60.0)
            ),
        )
    return records, time.perf_counter() - started


def run_benchmark(quick: bool) -> dict:
    config = SparkXDConfig.small(**(QUICK_CONFIG if quick else FULL_CONFIG))
    grid = QUICK_GRID if quick else FULL_GRID
    fleets = QUICK_FLEETS if quick else FULL_FLEETS
    n_points = 1
    for values in grid.values():
        n_points *= len(values)

    cpu_count = os.cpu_count() or 1
    print(
        f"{cpu_count} CPU core(s); each worker subprocess is BLAS-capped "
        "to 1 thread (distribution cannot beat serial on a single core — "
        "the equality check still holds everywhere)"
    )
    started = time.perf_counter()
    serial_records = Runner(config, store=ArtifactStore()).run(grid)
    serial_seconds = time.perf_counter() - started
    print(
        f"serial Runner       | {n_points} points | "
        f"{serial_seconds:7.2f}s | {n_points / serial_seconds:5.2f} points/s"
    )

    results = []
    for n_workers in fleets:
        records, seconds = _distributed_run(config, grid, n_workers)
        identical = records_equivalent(serial_records, records)
        results.append({
            "workers": n_workers,
            "seconds": seconds,
            "points_per_sec": n_points / seconds,
            "speedup_vs_serial": serial_seconds / seconds,
            "records_match_serial": bool(identical),
        })
        print(
            f"cluster x{n_workers} workers | {n_points} points | "
            f"{seconds:7.2f}s | {n_points / seconds:5.2f} points/s | "
            f"vs serial {serial_seconds / seconds:5.2f}x | "
            f"identical={identical}"
        )
    return {
        "benchmark": "repro.cluster distributed sweep throughput",
        "quick": quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "cpu_count": cpu_count,
        "grid_points": n_points,
        "grid": {k: [list(v) if isinstance(v, tuple) else v for v in vs]
                 for k, vs in grid.items()},
        "serial_seconds": serial_seconds,
        "serial_points_per_sec": n_points / serial_seconds,
        "fleets": results,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="tiny sweep + 2 workers (the CI cluster smoke)")
    parser.add_argument("--out", default="BENCH_cluster.json", metavar="PATH",
                        help="output JSON path (default: ./BENCH_cluster.json)")
    args = parser.parse_args(argv)

    payload = run_benchmark(args.quick)
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"results written to {out}")

    if not all(f["records_match_serial"] for f in payload["fleets"]):
        print("ERROR: a distributed sweep diverged from the serial Runner",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Distributed sweep throughput: localhost worker fleets vs the Runner.

Runs one fixed sweep grid through the in-process serial ``Runner``
(the baseline), then through ``repro.cluster.ClusterExecutor`` with
1 / 2 / 4 localhost worker *subprocesses*, double-checks that every
distributed run produces records value-identical to the serial
baseline, and writes the results to ``BENCH_cluster.json`` — the
cluster half of the repo's performance trajectory artifacts.

Two additional scenarios ride along:

- **affinity** — the same 2-worker sweep with worker-affinity
  scheduling on vs off, comparing artifact bytes transferred and
  sync seconds (affinity keeps dependency chains on the worker already
  holding their artifacts, so both should drop);
- **kill-resume** (``--kill-resume``) — a ``repro cluster sweep
  --journal`` subprocess SIGKILLed at ~50% journaled completion and
  restarted with ``--resume``; the resumed records must be
  value-identical to the serial Runner with no fingerprint executed
  twice.  This is the CI crash-recovery smoke.

Usage::

    PYTHONPATH=src python benchmarks/perf_cluster.py           # full run
    PYTHONPATH=src python benchmarks/perf_cluster.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/perf_cluster.py --quick \\
        --kill-resume --skip-throughput   # CI kill-and-resume smoke

The grid deliberately contains several *training-side* fingerprints
(a seed axis), so there is real work to distribute: each worker is a
fresh interpreter computing whole training chains, with artifacts
flowing back over the content-addressed sync layer.  The quick variant
doubles as the CI cluster smoke: a coordinator plus 2 localhost
workers over a tiny 4-point sweep, asserting record equality with the
serial ``Runner`` (exit 1 on any divergence).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import platform
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro import SparkXDConfig
from repro.analysis.export import records_equivalent
from repro.cluster import ClusterExecutor, local_worker_processes
from repro.pipeline import ArtifactStore, Runner
from repro.pipeline.runner import RunRecord

FULL_CONFIG = dict(
    n_train=120, n_test=60, n_neurons=60, n_steps=60,
    baseline_epochs=1, ber_rates=(1e-5, 1e-3), accuracy_bound=0.5,
)
FULL_GRID = {"seed": [42, 43, 44, 45], "voltages": [(1.325,), (1.025,)]}
QUICK_CONFIG = dict(
    n_train=40, n_test=25, n_neurons=12, n_steps=30,
    baseline_epochs=1, ber_rates=(1e-5, 1e-3), accuracy_bound=0.5,
)
QUICK_GRID = {"seed": [42, 43], "voltages": [(1.325,), (1.025,)]}

FULL_FLEETS = (1, 2, 4)
QUICK_FLEETS = (2,)

# The affinity scenario needs several DRAM-side points per training
# chain: once both chains finish, every dram-eval job is ready at once
# and a non-affine scheduler hands workers jobs whose upstream
# artifacts live on the *other* worker.
FULL_AFFINITY_GRID = {
    "seed": [42, 43],
    "voltages": [(1.325,), (1.250,), (1.175,), (1.100,), (1.025,)],
}
QUICK_AFFINITY_GRID = {
    "seed": [42, 43],
    "voltages": [(1.325,), (1.175,), (1.025,)],
}

# The kill-resume scenario drives the real CLI, so its workload uses
# only CLI-expressible knobs (SparkXDConfig.small defaults otherwise).
FULL_CLI_ARGS = ["--neurons", "30", "--train", "80", "--test", "40",
                 "--steps", "40", "--bound", "0.5"]
FULL_CLI_CONFIG = dict(n_neurons=30, n_train=80, n_test=40, n_steps=40,
                       accuracy_bound=0.5, seed=42)
QUICK_CLI_ARGS = ["--neurons", "12", "--train", "40", "--test", "25",
                  "--steps", "30", "--bound", "0.5"]
QUICK_CLI_CONFIG = dict(n_neurons=12, n_train=40, n_test=25, n_steps=30,
                        accuracy_bound=0.5, seed=42)
CLI_GRID_ARGS = ["--seeds", "42", "43", "--voltages", "1.325", "1.025"]
CLI_GRID = {"seed": [42, 43], "voltages": [(1.325,), (1.025,)]}


def _distributed_run(config, grid, n_workers, lease_s=60.0, affinity=True):
    """One cluster sweep against a fresh fleet.

    Returns ``(records, seconds, executor)`` — the executor exposes the
    plan, whose per-job stats carry the transfer accounting.
    """
    executor = ClusterExecutor(
        config,
        store=ArtifactStore(),
        lease_timeout=lease_s,
        poll_s=0.05,
        wait_timeout=1800.0,
        affinity=affinity,
    )
    started = time.perf_counter()
    with contextlib.ExitStack() as stack:
        records = executor.run(
            grid,
            on_ready=lambda address: stack.enter_context(
                local_worker_processes(address, n_workers, max_idle_s=60.0)
            ),
        )
    return records, time.perf_counter() - started, executor


def run_benchmark(quick: bool) -> dict:
    config = SparkXDConfig.small(**(QUICK_CONFIG if quick else FULL_CONFIG))
    grid = QUICK_GRID if quick else FULL_GRID
    fleets = QUICK_FLEETS if quick else FULL_FLEETS
    n_points = 1
    for values in grid.values():
        n_points *= len(values)

    cpu_count = os.cpu_count() or 1
    print(
        f"{cpu_count} CPU core(s); each worker subprocess is BLAS-capped "
        "to 1 thread (distribution cannot beat serial on a single core — "
        "the equality check still holds everywhere)"
    )
    started = time.perf_counter()
    serial_records = Runner(config, store=ArtifactStore()).run(grid)
    serial_seconds = time.perf_counter() - started
    print(
        f"serial Runner       | {n_points} points | "
        f"{serial_seconds:7.2f}s | {n_points / serial_seconds:5.2f} points/s"
    )

    results = []
    for n_workers in fleets:
        records, seconds, _ = _distributed_run(config, grid, n_workers)
        identical = records_equivalent(serial_records, records)
        results.append({
            "workers": n_workers,
            "seconds": seconds,
            "points_per_sec": n_points / seconds,
            "speedup_vs_serial": serial_seconds / seconds,
            "records_match_serial": bool(identical),
        })
        print(
            f"cluster x{n_workers} workers | {n_points} points | "
            f"{seconds:7.2f}s | {n_points / seconds:5.2f} points/s | "
            f"vs serial {serial_seconds / seconds:5.2f}x | "
            f"identical={identical}"
        )
    return {
        "benchmark": "repro.cluster distributed sweep throughput",
        "quick": quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "cpu_count": cpu_count,
        "grid_points": n_points,
        "grid": {k: [list(v) if isinstance(v, tuple) else v for v in vs]
                 for k, vs in grid.items()},
        "serial_seconds": serial_seconds,
        "serial_points_per_sec": n_points / serial_seconds,
        "fleets": results,
    }


def _plan_transfer_totals(executor) -> dict:
    """Sum the per-job transfer accounting of the executor's last plan."""
    jobs = executor.last_plan.jobs.values()
    return {
        "bytes_pulled": sum(j.stats.get("pulled_bytes", 0) for j in jobs),
        "bytes_pushed": sum(j.stats.get("pushed_bytes", 0) for j in jobs),
        "artifacts_pulled": sum(j.stats.get("pulled", 0) for j in jobs),
        "sync_s": sum(j.stats.get("sync_s", 0.0) for j in jobs),
    }


def run_affinity_benchmark(quick: bool) -> dict:
    """2-worker sweep with affinity scheduling on vs off.

    With several dram-eval points per training chain, a non-affine
    scheduler routinely grants a worker jobs whose upstream artifacts
    the *other* worker computed — every such grant pulls the whole
    chain over the wire.  Affinity keeps chains where their artifacts
    live, so ``bytes_pulled``/``sync_s`` drop.
    """
    config = SparkXDConfig.small(**(QUICK_CONFIG if quick else FULL_CONFIG))
    grid = QUICK_AFFINITY_GRID if quick else FULL_AFFINITY_GRID
    serial_records = Runner(config, store=ArtifactStore()).run(grid)
    modes = {}
    for label, affinity in (("affinity_on", True), ("affinity_off", False)):
        records, seconds, executor = _distributed_run(
            config, grid, n_workers=2, affinity=affinity
        )
        totals = _plan_transfer_totals(executor)
        modes[label] = {
            "seconds": seconds,
            "records_match_serial": bool(
                records_equivalent(serial_records, records)
            ),
            **totals,
        }
        print(
            f"{label:<13} | {seconds:6.2f}s | "
            f"pulled {totals['artifacts_pulled']:2d} artifact(s) / "
            f"{totals['bytes_pulled']:>9d} B | sync {totals['sync_s']:.3f}s"
        )
    on, off = modes["affinity_on"], modes["affinity_off"]
    saved = off["bytes_pulled"] - on["bytes_pulled"]
    print(f"affinity saved {saved} pulled byte(s) "
          f"({off['bytes_pulled']} -> {on['bytes_pulled']})")
    return {
        "workers": 2,
        "grid": {k: [list(v) if isinstance(v, tuple) else v for v in vs]
                 for k, vs in grid.items()},
        "bytes_pulled_saved": saved,
        **modes,
    }


def run_kill_resume(quick: bool) -> dict:
    """SIGKILL a journaled ``cluster sweep`` at ~50%, resume, verify.

    Drives the real CLI in a subprocess — the same recipe an operator
    follows after a coordinator crash (docs/cluster.md) — and checks
    that the resumed records are value-identical to the serial Runner
    and that no fingerprint was executed twice across both lives.
    """
    import tempfile

    cli_config = QUICK_CLI_CONFIG if quick else FULL_CLI_CONFIG
    cli_args = QUICK_CLI_ARGS if quick else FULL_CLI_ARGS
    serial_records = Runner(
        SparkXDConfig.small(**cli_config), store=ArtifactStore()
    ).run(CLI_GRID)
    n_jobs = 2 * 3 + len(CLI_GRID["voltages"]) * 2  # 2 chains + dram points
    kill_at = n_jobs // 2

    with tempfile.TemporaryDirectory(prefix="repro-kill-resume-") as tmp:
        tmp_path = Path(tmp)
        cache = tmp_path / "cache"
        journal = cache / "journal.jsonl"
        out = tmp_path / "records.json"
        package_root = str(Path(__file__).resolve().parents[1] / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = package_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        command = [
            sys.executable, "-m", "repro", "cluster", "sweep",
            *cli_args, *CLI_GRID_ARGS,
            "--workers", "2", "--lease-s", "15", "--max-idle-s", "5",
            "--cache-dir", str(cache), "--journal", "--out", str(out),
        ]

        def done_events():
            if not journal.exists():
                return []
            events = []
            for line in journal.read_text().splitlines():
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if event.get("event") == "done":
                    events.append((event["stage"], event["digest"]))
            return events

        proc = subprocess.Popen(command, env=env, stdout=subprocess.DEVNULL)
        deadline = time.monotonic() + 1800.0
        while time.monotonic() < deadline:
            if len(done_events()) >= kill_at or proc.poll() is not None:
                break
            time.sleep(0.2)
        killed = proc.poll() is None
        done_at_kill = len(done_events())
        if killed:
            proc.send_signal(signal.SIGKILL)
        proc.wait()
        print(f"coordinator {'SIGKILLed' if killed else 'finished'} at "
              f"{done_at_kill}/{n_jobs} jobs done")

        resumed = subprocess.run(
            command + ["--resume"], env=env, stdout=subprocess.DEVNULL
        )
        records = (
            [RunRecord.from_dict(e) for e in json.loads(out.read_text())]
            if resumed.returncode == 0 and out.exists()
            else []
        )
        done = done_events()
        result = {
            "killed_mid_sweep": bool(killed),
            "jobs_done_at_kill": done_at_kill,
            "total_jobs": n_jobs,
            "resume_exit_code": resumed.returncode,
            "records_match_serial": bool(
                records and records_equivalent(serial_records, records)
            ),
            "reexecuted_fingerprints": len(done) - len(set(done)),
        }
        print(f"resume: exit {resumed.returncode}, "
              f"identical={result['records_match_serial']}, "
              f"re-executions={result['reexecuted_fingerprints']}")
        return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="tiny sweep + 2 workers (the CI cluster smoke)")
    parser.add_argument("--kill-resume", action="store_true",
                        help="also SIGKILL a journaled sweep at ~50% and "
                             "verify --resume (the crash-recovery smoke)")
    parser.add_argument("--skip-throughput", action="store_true",
                        help="skip the fleet-throughput and affinity scans "
                             "(with --kill-resume: crash recovery only)")
    parser.add_argument("--out", default="BENCH_cluster.json", metavar="PATH",
                        help="output JSON path (default: ./BENCH_cluster.json)")
    args = parser.parse_args(argv)
    if args.skip_throughput and not args.kill_resume:
        parser.error("--skip-throughput without --kill-resume would run "
                     "nothing; add --kill-resume or drop --skip-throughput")

    failures = []
    if args.skip_throughput:
        payload = {
            "benchmark": "repro.cluster distributed sweep throughput",
            "quick": args.quick,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count() or 1,
        }
    else:
        payload = run_benchmark(args.quick)
        if not all(f["records_match_serial"] for f in payload["fleets"]):
            failures.append("a distributed sweep diverged from the serial Runner")
        payload["affinity"] = run_affinity_benchmark(args.quick)
        for mode in ("affinity_on", "affinity_off"):
            if not payload["affinity"][mode]["records_match_serial"]:
                failures.append(f"{mode} sweep diverged from the serial Runner")

    if args.kill_resume:
        payload["kill_resume"] = run_kill_resume(args.quick)
        if not payload["kill_resume"]["records_match_serial"]:
            failures.append("resumed sweep diverged from the serial Runner")
        if payload["kill_resume"]["reexecuted_fingerprints"]:
            failures.append("a journaled-done fingerprint was re-executed")

    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"results written to {out}")

    for failure in failures:
        print(f"ERROR: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Distributed sweep throughput: localhost worker fleets vs the Runner.

Runs one fixed sweep grid through the in-process serial ``Runner``
(the baseline), then through ``repro.cluster.ClusterExecutor`` with
1 / 2 / 4 localhost worker *subprocesses*, double-checks that every
distributed run produces records value-identical to the serial
baseline, and writes the results to ``BENCH_cluster.json`` — the
cluster half of the repo's performance trajectory artifacts.

Additional scenarios ride along:

- **affinity** — the same 2-worker sweep with worker-affinity
  scheduling on vs off, comparing artifact bytes transferred and
  sync seconds (affinity keeps dependency chains on the worker already
  holding their artifacts, so both should drop);
- **peer fabric** — the affinity-*off* 2-worker sweep (maximum
  cross-worker traffic) with the peer-to-peer artifact fabric on vs
  off.  With peers on, every pull is served worker-to-worker and the
  coordinator's ``get`` path moves **zero** bytes (asserted); with
  peers off every byte routes through the hub, the pre-fabric
  topology.  Records must match serial in both modes;
- **kill-resume** (``--kill-resume``) — a ``repro cluster sweep
  --journal`` subprocess SIGKILLed at ~50% journaled completion and
  restarted with ``--resume``; the resumed records must be
  value-identical to the serial Runner with no fingerprint executed
  twice.  This is the CI crash-recovery smoke;
- **compact-resume** (``--compact-resume``) — same SIGKILL recipe, but
  the sweep journals with ``--compact-every`` and the orphaned journal
  is compacted *offline* (``repro cluster journal compact``) down to
  its plan header + one snapshot before resuming.  The resumed sweep
  must replay every done job from the snapshot alone: zero
  re-executions, records identical to serial.

Usage::

    PYTHONPATH=src python benchmarks/perf_cluster.py           # full run
    PYTHONPATH=src python benchmarks/perf_cluster.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/perf_cluster.py --quick \\
        --kill-resume --skip-throughput   # CI kill-and-resume smoke
    PYTHONPATH=src python benchmarks/perf_cluster.py --quick \\
        --skip-throughput --peer-fabric --compact-resume   # CI p2p smoke

The grid deliberately contains several *training-side* fingerprints
(a seed axis), so there is real work to distribute: each worker is a
fresh interpreter computing whole training chains, with artifacts
flowing back over the content-addressed sync layer.  The quick variant
doubles as the CI cluster smoke: a coordinator plus 2 localhost
workers over a tiny 4-point sweep, asserting record equality with the
serial ``Runner`` (exit 1 on any divergence).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import platform
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro import SparkXDConfig
from repro.analysis.export import records_equivalent
from repro.cluster import ClusterExecutor, local_worker_processes
from repro.pipeline import ArtifactStore, Runner
from repro.pipeline.runner import RunRecord

FULL_CONFIG = dict(
    n_train=120, n_test=60, n_neurons=60, n_steps=60,
    baseline_epochs=1, ber_rates=(1e-5, 1e-3), accuracy_bound=0.5,
)
FULL_GRID = {"seed": [42, 43, 44, 45], "voltages": [(1.325,), (1.025,)]}
QUICK_CONFIG = dict(
    n_train=40, n_test=25, n_neurons=12, n_steps=30,
    baseline_epochs=1, ber_rates=(1e-5, 1e-3), accuracy_bound=0.5,
)
QUICK_GRID = {"seed": [42, 43], "voltages": [(1.325,), (1.025,)]}

FULL_FLEETS = (1, 2, 4)
QUICK_FLEETS = (2,)

# The affinity scenario needs several DRAM-side points per training
# chain: once both chains finish, every dram-eval job is ready at once
# and a non-affine scheduler hands workers jobs whose upstream
# artifacts live on the *other* worker.
FULL_AFFINITY_GRID = {
    "seed": [42, 43],
    "voltages": [(1.325,), (1.250,), (1.175,), (1.100,), (1.025,)],
}
QUICK_AFFINITY_GRID = {
    "seed": [42, 43],
    "voltages": [(1.325,), (1.175,), (1.025,)],
}

# The kill-resume scenario drives the real CLI, so its workload uses
# only CLI-expressible knobs (SparkXDConfig.small defaults otherwise).
FULL_CLI_ARGS = ["--neurons", "30", "--train", "80", "--test", "40",
                 "--steps", "40", "--bound", "0.5"]
FULL_CLI_CONFIG = dict(n_neurons=30, n_train=80, n_test=40, n_steps=40,
                       accuracy_bound=0.5, seed=42)
QUICK_CLI_ARGS = ["--neurons", "12", "--train", "40", "--test", "25",
                  "--steps", "30", "--bound", "0.5"]
QUICK_CLI_CONFIG = dict(n_neurons=12, n_train=40, n_test=25, n_steps=30,
                        accuracy_bound=0.5, seed=42)
CLI_GRID_ARGS = ["--seeds", "42", "43", "--voltages", "1.325", "1.025"]
CLI_GRID = {"seed": [42, 43], "voltages": [(1.325,), (1.025,)]}


def _distributed_run(config, grid, n_workers, lease_s=60.0, affinity=True,
                     peer=True):
    """One cluster sweep against a fresh fleet.

    Returns ``(records, seconds, executor)`` — the executor exposes the
    plan (whose per-job stats carry the transfer accounting) and the
    hub's own ``last_transfer_stats`` counters.
    """
    executor = ClusterExecutor(
        config,
        store=ArtifactStore(),
        lease_timeout=lease_s,
        poll_s=0.05,
        wait_timeout=1800.0,
        affinity=affinity,
        peer_sync=peer,
    )
    started = time.perf_counter()
    with contextlib.ExitStack() as stack:
        records = executor.run(
            grid,
            on_ready=lambda address: stack.enter_context(
                local_worker_processes(
                    address, n_workers, max_idle_s=60.0, peer=peer
                )
            ),
        )
    return records, time.perf_counter() - started, executor


def run_benchmark(quick: bool) -> dict:
    config = SparkXDConfig.small(**(QUICK_CONFIG if quick else FULL_CONFIG))
    grid = QUICK_GRID if quick else FULL_GRID
    fleets = QUICK_FLEETS if quick else FULL_FLEETS
    n_points = 1
    for values in grid.values():
        n_points *= len(values)

    cpu_count = os.cpu_count() or 1
    print(
        f"{cpu_count} CPU core(s); each worker subprocess is BLAS-capped "
        "to 1 thread (distribution cannot beat serial on a single core — "
        "the equality check still holds everywhere)"
    )
    started = time.perf_counter()
    serial_records = Runner(config, store=ArtifactStore()).run(grid)
    serial_seconds = time.perf_counter() - started
    print(
        f"serial Runner       | {n_points} points | "
        f"{serial_seconds:7.2f}s | {n_points / serial_seconds:5.2f} points/s"
    )

    results = []
    for n_workers in fleets:
        records, seconds, _ = _distributed_run(config, grid, n_workers)
        identical = records_equivalent(serial_records, records)
        results.append({
            "workers": n_workers,
            "seconds": seconds,
            "points_per_sec": n_points / seconds,
            "speedup_vs_serial": serial_seconds / seconds,
            "records_match_serial": bool(identical),
        })
        print(
            f"cluster x{n_workers} workers | {n_points} points | "
            f"{seconds:7.2f}s | {n_points / seconds:5.2f} points/s | "
            f"vs serial {serial_seconds / seconds:5.2f}x | "
            f"identical={identical}"
        )
    return {
        "benchmark": "repro.cluster distributed sweep throughput",
        "quick": quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "cpu_count": cpu_count,
        "grid_points": n_points,
        "grid": {k: [list(v) if isinstance(v, tuple) else v for v in vs]
                 for k, vs in grid.items()},
        "serial_seconds": serial_seconds,
        "serial_points_per_sec": n_points / serial_seconds,
        "fleets": results,
    }


def _plan_transfer_totals(executor) -> dict:
    """Sum the per-job transfer accounting of the executor's last plan."""
    jobs = executor.last_plan.jobs.values()
    return {
        "bytes_pulled": sum(j.stats.get("pulled_bytes", 0) for j in jobs),
        "bytes_pushed": sum(j.stats.get("pushed_bytes", 0) for j in jobs),
        "bytes_pulled_peer": sum(
            j.stats.get("pulled_bytes_peer", 0) for j in jobs
        ),
        "bytes_pulled_hub": sum(
            j.stats.get("pulled_bytes_hub", 0) for j in jobs
        ),
        "wire_bytes_pulled": sum(
            j.stats.get("pulled_wire_bytes", 0) for j in jobs
        ),
        "wire_bytes_pushed": sum(
            j.stats.get("pushed_wire_bytes", 0) for j in jobs
        ),
        "artifacts_pulled": sum(j.stats.get("pulled", 0) for j in jobs),
        "peer_fallbacks": sum(j.stats.get("peer_fallbacks", 0) for j in jobs),
        "sync_retries": sum(j.stats.get("retries", 0) for j in jobs),
        "sync_s": sum(j.stats.get("sync_s", 0.0) for j in jobs),
    }


def run_peer_fabric_benchmark(quick: bool) -> dict:
    """The affinity-off 2-worker sweep with the peer fabric on vs off.

    Affinity *off* maximises cross-worker transfers — every dram-eval
    grant routinely lands on the worker that did not compute the chain
    — which is exactly the traffic the fabric reroutes.  With peers on
    the coordinator's ``get`` path must serve zero bytes: the store
    starts empty, so every pulled key was computed by a live registered
    peer and the lease ``sources`` hints always cover it.
    """
    config = SparkXDConfig.small(**(QUICK_CONFIG if quick else FULL_CONFIG))
    grid = QUICK_AFFINITY_GRID if quick else FULL_AFFINITY_GRID
    serial_records = Runner(config, store=ArtifactStore()).run(grid)
    modes = {}
    for label, peer in (("peers_on", True), ("peers_off", False)):
        records, seconds, executor = _distributed_run(
            config, grid, n_workers=2, affinity=False, peer=peer
        )
        totals = _plan_transfer_totals(executor)
        hub = executor.last_transfer_stats
        modes[label] = {
            "seconds": seconds,
            "records_match_serial": bool(
                records_equivalent(serial_records, records)
            ),
            "hub": dict(hub),
            **totals,
        }
        print(
            f"{label:<9} | {seconds:6.2f}s | hub get "
            f"{hub['get_count']:2d} blob(s) / {hub['get_bytes']:>9d} B | "
            f"peer {totals['bytes_pulled_peer']:>9d} B | "
            f"hub-pulled {totals['bytes_pulled_hub']:>9d} B"
        )
    on, off = modes["peers_on"], modes["peers_off"]
    print(
        f"peer fabric took hub-served get bytes "
        f"{off['hub']['get_bytes']} -> {on['hub']['get_bytes']}"
    )
    return {
        "workers": 2,
        "affinity": False,
        "grid": {k: [list(v) if isinstance(v, tuple) else v for v in vs]
                 for k, vs in grid.items()},
        "hub_get_bytes_saved": off["hub"]["get_bytes"] - on["hub"]["get_bytes"],
        **modes,
    }


def run_affinity_benchmark(quick: bool) -> dict:
    """2-worker sweep with affinity scheduling on vs off.

    With several dram-eval points per training chain, a non-affine
    scheduler routinely grants a worker jobs whose upstream artifacts
    the *other* worker computed — every such grant pulls the whole
    chain over the wire.  Affinity keeps chains where their artifacts
    live, so ``bytes_pulled``/``sync_s`` drop.
    """
    config = SparkXDConfig.small(**(QUICK_CONFIG if quick else FULL_CONFIG))
    grid = QUICK_AFFINITY_GRID if quick else FULL_AFFINITY_GRID
    serial_records = Runner(config, store=ArtifactStore()).run(grid)
    modes = {}
    for label, affinity in (("affinity_on", True), ("affinity_off", False)):
        records, seconds, executor = _distributed_run(
            config, grid, n_workers=2, affinity=affinity
        )
        totals = _plan_transfer_totals(executor)
        modes[label] = {
            "seconds": seconds,
            "records_match_serial": bool(
                records_equivalent(serial_records, records)
            ),
            **totals,
        }
        print(
            f"{label:<13} | {seconds:6.2f}s | "
            f"pulled {totals['artifacts_pulled']:2d} artifact(s) / "
            f"{totals['bytes_pulled']:>9d} B | sync {totals['sync_s']:.3f}s"
        )
    on, off = modes["affinity_on"], modes["affinity_off"]
    saved = off["bytes_pulled"] - on["bytes_pulled"]
    print(f"affinity saved {saved} pulled byte(s) "
          f"({off['bytes_pulled']} -> {on['bytes_pulled']})")
    return {
        "workers": 2,
        "grid": {k: [list(v) if isinstance(v, tuple) else v for v in vs]
                 for k, vs in grid.items()},
        "bytes_pulled_saved": saved,
        **modes,
    }


def _journal_done_keys(journal: Path) -> list:
    """Every done ``(stage, digest)`` in the journal, snapshots included.

    ``done`` lines append one key each; a ``snapshot`` event contributes
    its folded done map.  Duplicates therefore mean a journaled-done
    fingerprint was executed more than once across coordinator lives —
    the regression resume and compaction both exist to prevent.
    """
    if not journal.exists():
        return []
    keys = []
    for line in journal.read_text().splitlines():
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            continue
        if event.get("event") == "done":
            keys.append((event["stage"], event["digest"]))
        elif event.get("event") == "snapshot":
            keys.extend(
                (entry["stage"], entry["digest"])
                for entry in event.get("done", [])
            )
    return keys


def run_kill_resume(quick: bool) -> dict:
    """SIGKILL a journaled ``cluster sweep`` at ~50%, resume, verify.

    Drives the real CLI in a subprocess — the same recipe an operator
    follows after a coordinator crash (docs/cluster.md) — and checks
    that the resumed records are value-identical to the serial Runner
    and that no fingerprint was executed twice across both lives.
    """
    import tempfile

    cli_config = QUICK_CLI_CONFIG if quick else FULL_CLI_CONFIG
    cli_args = QUICK_CLI_ARGS if quick else FULL_CLI_ARGS
    serial_records = Runner(
        SparkXDConfig.small(**cli_config), store=ArtifactStore()
    ).run(CLI_GRID)
    n_jobs = 2 * 3 + len(CLI_GRID["voltages"]) * 2  # 2 chains + dram points
    kill_at = n_jobs // 2

    with tempfile.TemporaryDirectory(prefix="repro-kill-resume-") as tmp:
        tmp_path = Path(tmp)
        cache = tmp_path / "cache"
        journal = cache / "journal.jsonl"
        out = tmp_path / "records.json"
        package_root = str(Path(__file__).resolve().parents[1] / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = package_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        command = [
            sys.executable, "-m", "repro", "cluster", "sweep",
            *cli_args, *CLI_GRID_ARGS,
            "--workers", "2", "--lease-s", "15", "--max-idle-s", "5",
            "--cache-dir", str(cache), "--journal", "--out", str(out),
        ]

        def done_events():
            if not journal.exists():
                return []
            events = []
            for line in journal.read_text().splitlines():
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if event.get("event") == "done":
                    events.append((event["stage"], event["digest"]))
            return events

        proc = subprocess.Popen(command, env=env, stdout=subprocess.DEVNULL)
        deadline = time.monotonic() + 1800.0
        while time.monotonic() < deadline:
            if len(done_events()) >= kill_at or proc.poll() is not None:
                break
            time.sleep(0.2)
        killed = proc.poll() is None
        done_at_kill = len(done_events())
        if killed:
            proc.send_signal(signal.SIGKILL)
        proc.wait()
        print(f"coordinator {'SIGKILLed' if killed else 'finished'} at "
              f"{done_at_kill}/{n_jobs} jobs done")

        resumed = subprocess.run(
            command + ["--resume"], env=env, stdout=subprocess.DEVNULL
        )
        records = (
            [RunRecord.from_dict(e) for e in json.loads(out.read_text())]
            if resumed.returncode == 0 and out.exists()
            else []
        )
        done = done_events()
        result = {
            "killed_mid_sweep": bool(killed),
            "jobs_done_at_kill": done_at_kill,
            "total_jobs": n_jobs,
            "resume_exit_code": resumed.returncode,
            "records_match_serial": bool(
                records and records_equivalent(serial_records, records)
            ),
            "reexecuted_fingerprints": len(done) - len(set(done)),
        }
        print(f"resume: exit {resumed.returncode}, "
              f"identical={result['records_match_serial']}, "
              f"re-executions={result['reexecuted_fingerprints']}")
        return result


def run_compact_resume(quick: bool) -> dict:
    """SIGKILL a ``--compact-every`` sweep, compact offline, resume.

    The crash-recovery recipe for million-job sweeps: the orphaned
    journal is folded down to its plan header + one ``snapshot`` before
    the restart, so the resumed coordinator replays O(done jobs) — and
    every job finished in the first life must come back from the
    snapshot alone (zero re-executions, records identical to serial).
    """
    import tempfile

    cli_config = QUICK_CLI_CONFIG if quick else FULL_CLI_CONFIG
    cli_args = QUICK_CLI_ARGS if quick else FULL_CLI_ARGS
    serial_records = Runner(
        SparkXDConfig.small(**cli_config), store=ArtifactStore()
    ).run(CLI_GRID)
    n_jobs = 2 * 3 + len(CLI_GRID["voltages"]) * 2  # 2 chains + dram points
    kill_at = n_jobs // 2

    with tempfile.TemporaryDirectory(prefix="repro-compact-resume-") as tmp:
        tmp_path = Path(tmp)
        cache = tmp_path / "cache"
        journal = cache / "journal.jsonl"
        out = tmp_path / "records.json"
        package_root = str(Path(__file__).resolve().parents[1] / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = package_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        command = [
            sys.executable, "-m", "repro", "cluster", "sweep",
            *cli_args, *CLI_GRID_ARGS,
            "--workers", "2", "--lease-s", "15", "--max-idle-s", "5",
            "--cache-dir", str(cache), "--journal", "--compact-every", "5",
            "--out", str(out),
        ]

        proc = subprocess.Popen(command, env=env, stdout=subprocess.DEVNULL)
        deadline = time.monotonic() + 1800.0
        while time.monotonic() < deadline:
            done_now = len(set(_journal_done_keys(journal)))
            if done_now >= kill_at or proc.poll() is not None:
                break
            time.sleep(0.2)
        killed = proc.poll() is None
        done_at_kill = len(set(_journal_done_keys(journal)))
        if killed:
            proc.send_signal(signal.SIGKILL)
        proc.wait()
        print(f"coordinator {'SIGKILLed' if killed else 'finished'} at "
              f"{done_at_kill}/{n_jobs} jobs done")

        # Offline compaction: fold the orphaned journal down to its
        # plan header + one snapshot (the operator-facing subcommand).
        compacted = subprocess.run(
            [sys.executable, "-m", "repro", "cluster", "journal",
             "compact", str(journal)],
            env=env,
        )
        journal_lines = len(
            [l for l in journal.read_text().splitlines() if l.strip()]
        )
        print(f"offline compact: exit {compacted.returncode}, "
              f"journal now {journal_lines} line(s)")

        resumed = subprocess.run(
            command + ["--resume"], env=env, stdout=subprocess.DEVNULL
        )
        records = (
            [RunRecord.from_dict(e) for e in json.loads(out.read_text())]
            if resumed.returncode == 0 and out.exists()
            else []
        )
        done = _journal_done_keys(journal)
        result = {
            "killed_mid_sweep": bool(killed),
            "jobs_done_at_kill": done_at_kill,
            "total_jobs": n_jobs,
            "compact_exit_code": compacted.returncode,
            "journal_lines_after_compact": journal_lines,
            "resume_exit_code": resumed.returncode,
            "records_match_serial": bool(
                records and records_equivalent(serial_records, records)
            ),
            "reexecuted_fingerprints": len(done) - len(set(done)),
        }
        print(f"resume: exit {resumed.returncode}, "
              f"identical={result['records_match_serial']}, "
              f"re-executions={result['reexecuted_fingerprints']}")
        return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="tiny sweep + 2 workers (the CI cluster smoke)")
    parser.add_argument("--kill-resume", action="store_true",
                        help="also SIGKILL a journaled sweep at ~50% and "
                             "verify --resume (the crash-recovery smoke)")
    parser.add_argument("--compact-resume", action="store_true",
                        help="also SIGKILL a --compact-every sweep, compact "
                             "the journal offline, and verify the resume "
                             "replays from the snapshot alone")
    parser.add_argument("--peer-fabric", action="store_true",
                        help="force the peer-fabric comparison even with "
                             "--skip-throughput (it always runs without)")
    parser.add_argument("--skip-throughput", action="store_true",
                        help="skip the fleet-throughput, affinity and "
                             "peer-fabric scans (combine with --kill-resume/"
                             "--compact-resume/--peer-fabric to run only "
                             "those)")
    parser.add_argument("--out", default="BENCH_cluster.json", metavar="PATH",
                        help="output JSON path (default: ./BENCH_cluster.json)")
    args = parser.parse_args(argv)
    if args.skip_throughput and not (
        args.kill_resume or args.compact_resume or args.peer_fabric
    ):
        parser.error("--skip-throughput alone would run nothing; add "
                     "--kill-resume, --compact-resume or --peer-fabric, "
                     "or drop --skip-throughput")

    failures = []
    if args.skip_throughput:
        payload = {
            "benchmark": "repro.cluster distributed sweep throughput",
            "quick": args.quick,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count() or 1,
        }
    else:
        payload = run_benchmark(args.quick)
        if not all(f["records_match_serial"] for f in payload["fleets"]):
            failures.append("a distributed sweep diverged from the serial Runner")
        payload["affinity"] = run_affinity_benchmark(args.quick)
        for mode in ("affinity_on", "affinity_off"):
            if not payload["affinity"][mode]["records_match_serial"]:
                failures.append(f"{mode} sweep diverged from the serial Runner")

    if args.peer_fabric or not args.skip_throughput:
        payload["peer_fabric"] = run_peer_fabric_benchmark(args.quick)
        for mode in ("peers_on", "peers_off"):
            if not payload["peer_fabric"][mode]["records_match_serial"]:
                failures.append(f"{mode} sweep diverged from the serial Runner")
        if payload["peer_fabric"]["peers_on"]["hub"]["get_bytes"] != 0:
            failures.append(
                "the coordinator served artifact get bytes with peers on "
                "(the fabric must carry every pull)"
            )

    if args.kill_resume:
        payload["kill_resume"] = run_kill_resume(args.quick)
        if not payload["kill_resume"]["records_match_serial"]:
            failures.append("resumed sweep diverged from the serial Runner")
        if payload["kill_resume"]["reexecuted_fingerprints"]:
            failures.append("a journaled-done fingerprint was re-executed")

    if args.compact_resume:
        payload["compact_resume"] = run_compact_resume(args.quick)
        if not payload["compact_resume"]["records_match_serial"]:
            failures.append(
                "compact-resumed sweep diverged from the serial Runner"
            )
        if payload["compact_resume"]["reexecuted_fingerprints"]:
            failures.append(
                "a snapshot-journaled fingerprint was re-executed"
            )
        if payload["compact_resume"]["journal_lines_after_compact"] > 2:
            failures.append(
                "offline compaction left more than header + snapshot"
            )

    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"results written to {out}")

    for failure in failures:
        print(f"ERROR: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

"""Fig. 11 label-2: MSB flips drive the accuracy damage.

The paper observes that flips in the most significant bits of the FP32
weights change values by orders of magnitude and can collapse accuracy,
while flips in low mantissa bits are harmless.  This benchmark probes
stored bit positions one at a time (sign=31, exponent 30..23, mantissa
below) and reports the per-position weight perturbation and accuracy.
"""

import numpy as np
import pytest

from benchmarks.conftest import N_STEPS, get_baseline
from repro.analysis.reporting import format_table
from repro.analysis.sensitivity import accuracy_by_bit, weight_perturbation_by_bit
from repro.snn.quantization import Float32Representation

N_NEURONS = 50
#: probe sign, two exponent bits, and three mantissa depths.
PROBED_BITS = (31, 30, 26, 22, 12, 0)


def test_sensitivity_bit_positions(benchmark, datasets):
    dataset = datasets["mnist"]
    model = get_baseline(datasets, "mnist", N_NEURONS)
    representation = Float32Representation(clip_range=(0.0, 1.0))

    def run():
        return accuracy_by_bit(
            model, dataset, representation, PROBED_BITS,
            flip_fraction=0.05, n_steps=N_STEPS, seed=3,
        )

    points = benchmark.pedantic(run, rounds=1, iterations=1)

    def describe(bit):
        if bit == 31:
            return "sign"
        if bit >= 23:
            return f"exponent[{bit - 23}]"
        return f"mantissa[{bit}]"

    rows = [
        [bit, describe(bit), f"{p.mean_weight_change:.2e}", f"{p.accuracy:.1%}"]
        for bit, p in zip(PROBED_BITS, points)
    ]
    print("\n" + format_table(
        ["bit", "field", "mean |dW| per flip", "accuracy"],
        rows,
        title="FIG 11 label-2 - bit-position sensitivity (5% of weights flipped; "
        f"error-free reference {model.accuracy:.1%})",
    ))

    by_bit = {p.bit_position: p for p in points}
    # low mantissa flips are harmless to the stored value...
    assert by_bit[0].mean_weight_change < 1e-6
    # ...exponent-MSB flips move weights by orders of magnitude more...
    assert by_bit[30].mean_weight_change > 1e3 * max(by_bit[0].mean_weight_change, 1e-12)
    # ...and only the significant bits hurt accuracy.
    assert by_bit[0].accuracy >= model.accuracy - 0.05
    assert by_bit[30].accuracy <= by_bit[0].accuracy + 0.02

"""Shared fixtures for the benchmark harness.

Every file in this directory regenerates one table or figure of the
paper (see DESIGN.md's experiment index).  Run with::

    pytest benchmarks/ --benchmark-only -s

``-s`` shows the regenerated rows/series next to the timing table.

Accuracy experiments run at CPU scale: the paper's N400-N3600 networks
trained on full MNIST need a GPU; here the network sizes and sample
counts are scaled down (the mapping from paper size to benchmark size is
printed with each result).  Energy experiments run at the paper's true
sizes - they only need the DRAM model, not SNN training.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fault_aware_training import improve_error_tolerance, train_baseline
from repro.datasets import load_dataset
from repro.errors.injection import ErrorInjector
from repro.snn.quantization import Float32Representation

#: paper network size -> benchmark (CPU-scale) neuron count
SCALED_SIZES = {400: 50, 900: 75, 1600: 100, 2500: 125, 3600: 150}

#: the BER decades of Fig. 11's x-axis
FIG11_RATES = (1e-9, 1e-7, 1e-5, 1e-3)

# 350 training samples keeps the larger scaled networks (N100+) stably
# converged on both workloads; below ~3 samples per neuron the
# unsupervised competition becomes erratic.
N_TRAIN, N_TEST, N_STEPS = 350, 120, 80

_model_cache: dict = {}


@pytest.fixture(scope="session")
def datasets():
    return {
        "mnist": load_dataset("mnist", N_TRAIN, N_TEST, seed=7),
        "fashion": load_dataset("fashion", N_TRAIN, N_TEST, seed=13),
    }


def make_injector(seed: int = 1) -> ErrorInjector:
    return ErrorInjector(Float32Representation(clip_range=(0.0, 1.0)), seed=seed)


def get_baseline(datasets, dataset_name: str, n_neurons: int):
    """Train (and cache) the error-free baseline model."""
    key = ("baseline", dataset_name, n_neurons)
    if key not in _model_cache:
        rng = np.random.default_rng(100 + n_neurons)
        _model_cache[key] = train_baseline(
            datasets[dataset_name], n_neurons, epochs=2, n_steps=N_STEPS, rng=rng
        )
    return _model_cache[key]


def get_improved(datasets, dataset_name: str, n_neurons: int):
    """Fault-aware-train (and cache) the improved model."""
    key = ("improved", dataset_name, n_neurons)
    if key not in _model_cache:
        baseline = get_baseline(datasets, dataset_name, n_neurons)
        rng = np.random.default_rng(200 + n_neurons)
        result = improve_error_tolerance(
            baseline,
            datasets[dataset_name],
            make_injector(seed=n_neurons),
            rates=FIG11_RATES,
            epochs_per_rate=1,
            n_steps=N_STEPS,
            accuracy_bound=0.05,
            rng=rng,
        )
        _model_cache[key] = result
    return _model_cache[key]

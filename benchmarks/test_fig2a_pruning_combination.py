"""Fig. 2(a): approximate DRAM composes with weight pruning.

Paper shape: normalised DRAM energy falls linearly with connectivity for
both accurate (1.35 V) and approximate (1.025 V) DRAM, with the
approximate series uniformly ~40% below the accurate one - the two
techniques multiply.  The paper's experiment uses a 4900-neuron network.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.core.mapping_policy import baseline_mapping
from repro.dram.controller import DramController
from repro.dram.specs import LPDDR3_1600_4GB
from repro.snn.pruning import pruned_weight_count
from repro.trace.generator import InferenceTraceSpec, inference_read_trace

CONNECTIVITY = (1.0, 0.9, 0.8, 0.7, 0.6, 0.5)
N_WEIGHTS_FULL = 784 * 4900  # the paper's 4900-neuron network


def run_experiment():
    controller = DramController(LPDDR3_1600_4GB)
    org = controller.organization
    energies = {}
    for connectivity in CONNECTIVITY:
        n_weights = pruned_weight_count(N_WEIGHTS_FULL, connectivity)
        spec = InferenceTraceSpec(n_weights=n_weights, bits_per_weight=32)
        mapping = baseline_mapping(org, n_weights, 32)
        trace = inference_read_trace(spec, mapping.slot_of_chunk, org)
        for v in (1.35, 1.025):
            energies[(connectivity, v)] = controller.execute(trace, v).energy.total_nj
    return energies


def test_fig2a_pruning_combination(benchmark):
    energies = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    reference = energies[(1.0, 1.35)]
    rows = []
    for c in CONNECTIVITY:
        rows.append([
            f"{c:.0%}",
            f"{energies[(c, 1.35)] / reference:.3f}",
            f"{energies[(c, 1.025)] / reference:.3f}",
        ])
    print("\n" + format_table(
        ["connectivity", "accurate 1.35V", "approx 1.025V"],
        rows,
        title="FIG 2(a) - normalised DRAM energy: voltage scaling x pruning (N4900)",
    ))

    # energy falls with connectivity for both voltages
    for v in (1.35, 1.025):
        series = [energies[(c, v)] for c in CONNECTIVITY]
        assert all(a > b for a, b in zip(series, series[1:]))
    # the approximate series sits ~40% below the accurate one everywhere
    for c in CONNECTIVITY:
        saving = 1 - energies[(c, 1.025)] / energies[(c, 1.35)]
        assert saving == pytest.approx(0.40, abs=0.05)
    # combined: 50% connectivity + 1.025V vs the unpruned accurate run
    combined = 1 - energies[(0.5, 1.025)] / reference
    assert combined > 0.65  # ~0.5 * ~0.6 => ~70% total reduction

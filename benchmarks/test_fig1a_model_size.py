"""Fig. 1(a): larger SNN models achieve higher accuracy.

Paper shape: a 9800-neuron model reaches ~92% on MNIST while a
200-neuron model reaches ~75% (the motivation for large, DRAM-resident
models).  At CPU scale we compare a small and a several-times-larger
network on the synthetic workload and check the ordering.
"""

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.core.fault_aware_training import train_baseline

SMALL_N, LARGE_N = 15, 90


def test_fig1a_accuracy_vs_model_size(benchmark, datasets):
    dataset = datasets["mnist"]

    def run():
        accuracies = {}
        for n_neurons in (SMALL_N, LARGE_N):
            rng = np.random.default_rng(42)
            model = train_baseline(
                dataset, n_neurons, epochs=2, n_steps=80, rng=rng
            )
            accuracies[n_neurons] = model.accuracy
        return accuracies

    accuracies = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n" + format_table(
        ["neurons", "accuracy"],
        [[n, f"{a:.1%}"] for n, a in accuracies.items()],
        title="FIG 1(a) - accuracy vs SNN model size "
        "(paper: 200n ~75%, 9800n ~92% on MNIST)",
    ))

    assert accuracies[LARGE_N] > accuracies[SMALL_N]
    assert accuracies[LARGE_N] > 0.5  # well above 10-class chance

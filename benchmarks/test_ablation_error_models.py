"""Ablation: DRAM Error Model-0 vs Models 1-3 (Section III).

The paper picks Model-0 because it "provides a reasonable approximation
of the other error models".  This ablation injects at the same BER with
all four models and compares the accuracy impact on one trained model.
"""

import numpy as np
import pytest

from benchmarks.conftest import N_STEPS, get_baseline
from repro.analysis.reporting import format_table
from repro.analysis.sweeps import accuracy_vs_ber_sweep
from repro.errors.injection import ErrorInjector
from repro.errors.models import make_error_model
from repro.snn.quantization import Float32Representation

BER = 1e-3
N_NEURONS = 50
MODELS = ("model0", "model1", "model2", "model3")


def test_ablation_error_models(benchmark, datasets):
    dataset = datasets["mnist"]
    baseline = get_baseline(datasets, "mnist", N_NEURONS)

    def run():
        accuracies = {}
        for name in MODELS:
            injector = ErrorInjector(
                Float32Representation(clip_range=(0.0, 1.0)),
                model=make_error_model(name),
                lane_bits=64,
                row_bits=784 * 32,
                seed=9,
            )
            point = accuracy_vs_ber_sweep(
                baseline, dataset, injector, (BER,), N_STEPS,
                np.random.default_rng(4), trials=3,
            )[0]
            accuracies[name] = point.accuracy
        return accuracies

    accuracies = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n" + format_table(
        ["error model", f"accuracy @ BER {BER:.0e}"],
        [[name, f"{a:.1%}"] for name, a in accuracies.items()],
        title="ABLATION - error model structure (Section III) "
        f"(error-free reference: {baseline.accuracy:.1%})",
    ))

    # Model-0 approximates the others: its accuracy impact is within a
    # modest band of every structured model's.
    for name in MODELS[1:]:
        assert abs(accuracies["model0"] - accuracies[name]) < 0.15, name
    # every model actually perturbs the network at this BER
    for name, accuracy in accuracies.items():
        assert accuracy <= 1.0

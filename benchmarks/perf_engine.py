#!/usr/bin/env python
"""Engine throughput benchmark: sequential vs batched samples/sec.

Measures how many (sample x error-realization) evaluations per second
each engine sustains on two network sizes, double-checks that both
engines produced identical spike counts, and writes the results to
``BENCH_engine.json`` — the repo's performance trajectory artifact.

Also guards the telemetry contract: the batched evaluator path is
timed with span tracing off and on (interleaved min-of-N pairs), and
the run fails if tracing costs more than ``TELEMETRY_GATE_PCT`` —
instrumentation must stay effectively free on the hot path.

Usage::

    PYTHONPATH=src python benchmarks/perf_engine.py           # full run
    PYTHONPATH=src python benchmarks/perf_engine.py --quick   # CI smoke

The workload mirrors the paper's evaluation loop (Fig. 8 / Fig. 11):
one trained-like network, a stack of E bit-error-corrupted weight
copies, B evaluation images, n_steps of Poisson-coded simulation.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.engine import BatchedEvaluator
from repro.errors.injection import ErrorInjector
from repro.snn.network import DiehlCookNetwork, NetworkParameters
from repro.snn.quantization import Float32Representation

FULL_SCENARIOS = (
    {"n_neurons": 100, "n_samples": 40, "n_realizations": 4, "n_steps": 100,
     "dtype": "float64"},
    {"n_neurons": 400, "n_samples": 40, "n_realizations": 4, "n_steps": 100,
     "dtype": "float64"},
    {"n_neurons": 400, "n_samples": 20, "n_realizations": 8, "n_steps": 100,
     "dtype": "float32"},
)
QUICK_SCENARIOS = (
    {"n_neurons": 60, "n_samples": 8, "n_realizations": 2, "n_steps": 30,
     "dtype": "float64"},
    {"n_neurons": 100, "n_samples": 8, "n_realizations": 2, "n_steps": 30,
     "dtype": "float32"},
)

#: Maximum tolerated slowdown of the batched evaluator with tracing on.
TELEMETRY_GATE_PCT = 3.0


def _build_workload(scenario: dict, n_input: int = 784):
    """A trained-like network, corrupted weight stack and image batch."""
    rng = np.random.default_rng(1234)
    params = NetworkParameters(n_input=n_input, n_neurons=scenario["n_neurons"])
    network = DiehlCookNetwork(params, rng=rng)
    network.neurons.theta = rng.uniform(0.0, 2.0, params.n_neurons)
    injector = ErrorInjector(Float32Representation(clip_range=(0, 1)), seed=7)
    stack, _ = injector.inject_stack(
        network.weights, 1e-3, n_realizations=scenario["n_realizations"], rng=rng
    )
    # MNIST-like sparse images: most pixels dark, a bright blob.
    images = np.clip(rng.random((scenario["n_samples"], n_input)) - 0.55, 0.0, 0.45) * 2
    return network, stack, images


def _time_engine(network, stack, images, n_steps, engine, dtype, repeats):
    best = np.inf
    counts = None
    for _ in range(repeats):
        evaluator = BatchedEvaluator.for_network(
            network, engine=engine, dtype=np.dtype(dtype)
        )
        started = time.perf_counter()
        counts = evaluator.spike_counts(
            images, n_steps, np.random.default_rng(99), weights=stack
        )
        best = min(best, time.perf_counter() - started)
    return best, counts


def run_benchmark(quick: bool, repeats: int) -> dict:
    scenarios = QUICK_SCENARIOS if quick else FULL_SCENARIOS
    results = []
    for scenario in scenarios:
        network, stack, images = _build_workload(scenario)
        evaluations = stack.shape[0] * images.shape[0]
        row = dict(scenario, n_input=network.n_input, evaluations=evaluations)
        reference = {}
        for engine in ("sequential", "batched"):
            seconds, counts = _time_engine(
                network, stack, images, scenario["n_steps"], engine,
                scenario["dtype"], repeats,
            )
            row[f"{engine}_seconds"] = seconds
            row[f"{engine}_samples_per_sec"] = evaluations / seconds
            reference[engine] = counts
        row["speedup"] = (
            row["batched_samples_per_sec"] / row["sequential_samples_per_sec"]
        )
        row["identical_counts"] = bool(
            np.array_equal(reference["sequential"], reference["batched"])
        )
        results.append(row)
        print(
            f"N{scenario['n_neurons']:<4} {scenario['dtype']:<8} "
            f"{evaluations:>4} evaluations | "
            f"sequential {row['sequential_samples_per_sec']:8.1f}/s | "
            f"batched {row['batched_samples_per_sec']:8.1f}/s | "
            f"speedup {row['speedup']:5.2f}x | "
            f"identical={row['identical_counts']}"
        )
    return {
        "benchmark": "repro.engine sequential-vs-batched throughput",
        "quick": quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "scenarios": results,
    }


def measure_telemetry_overhead(quick: bool, pairs: int = 5) -> dict:
    """Telemetry-on vs -off timing of the batched evaluator hot path.

    Off/on runs are interleaved so machine drift (thermal, noisy CI
    neighbours) hits both arms equally, and each arm keeps its best
    time.  "On" means a live trace writer — per-chunk ``eval.chunk``
    spans actually record; metrics counters run in both arms because
    they are never switched off.
    """
    from tempfile import TemporaryDirectory

    from repro.telemetry import configure_tracing, shutdown_tracing

    scenario = (QUICK_SCENARIOS if quick else FULL_SCENARIOS)[0]
    network, stack, images = _build_workload(scenario)

    def once() -> float:
        evaluator = BatchedEvaluator.for_network(
            network, engine="batched", dtype=np.dtype(scenario["dtype"])
        )
        started = time.perf_counter()
        evaluator.spike_counts(
            images, scenario["n_steps"], np.random.default_rng(99), weights=stack
        )
        return time.perf_counter() - started

    once()  # warm caches/allocator before either arm is timed
    off_best = on_best = np.inf
    with TemporaryDirectory() as tmp:
        trace_path = str(Path(tmp) / "overhead_trace.jsonl")
        for _ in range(pairs):
            shutdown_tracing()
            off_best = min(off_best, once())
            configure_tracing(trace_path)
            on_best = min(on_best, once())
        shutdown_tracing()
    overhead_pct = (on_best / off_best - 1.0) * 100.0
    return {
        "path": "BatchedEvaluator.spike_counts (batched engine)",
        "pairs": pairs,
        "off_s": off_best,
        "on_s": on_best,
        "overhead_pct": overhead_pct,
        "gate_pct": TELEMETRY_GATE_PCT,
        "ok": overhead_pct <= TELEMETRY_GATE_PCT,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small scenarios for CI smoke runs")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timing repeats; the best run is reported")
    parser.add_argument("--out", default="BENCH_engine.json", metavar="PATH",
                        help="output JSON path (default: ./BENCH_engine.json)")
    args = parser.parse_args(argv)
    if args.repeats <= 0:
        parser.error("--repeats must be > 0")

    payload = run_benchmark(args.quick, args.repeats)
    overhead = measure_telemetry_overhead(args.quick)
    payload["telemetry_overhead"] = overhead
    print(
        f"telemetry overhead: off {overhead['off_s']:.4f}s | "
        f"on {overhead['on_s']:.4f}s | "
        f"{overhead['overhead_pct']:+.2f}% "
        f"(gate {overhead['gate_pct']:.1f}%)"
    )
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"results written to {out}")

    if not all(row["identical_counts"] for row in payload["scenarios"]):
        print("ERROR: engines disagreed on spike counts", file=sys.stderr)
        return 1
    if not overhead["ok"]:
        print(
            f"ERROR: telemetry overhead {overhead['overhead_pct']:.2f}% "
            f"exceeds the {overhead['gate_pct']:.1f}% gate on the batched "
            "evaluator path",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Ablation: safe-subarray mapping (Algorithm 2) vs naive sequential.

On a device with non-uniform subarray error rates, Algorithm 2 places
the weights only in subarrays whose rate is at or below BER_th, while
the naive baseline streams into whatever comes next.  The ablation
measures both the bit-flip exposure and the accuracy effect at the same
operating voltage.
"""

import numpy as np
import pytest

from benchmarks.conftest import N_STEPS, get_baseline
from repro.analysis.reporting import format_table
from repro.core.mapping_policy import baseline_mapping, sparkxd_mapping
from repro.dram.organization import DramOrganization
from repro.dram.specs import LPDDR3_1600_4GB
from repro.errors.injection import ErrorInjector
from repro.errors.weak_cells import WeakCellMap
from repro.snn.network import DiehlCookNetwork, NetworkParameters
from repro.snn.quantization import Float32Representation
from repro.snn.training import evaluate_accuracy

N_NEURONS = 50
V_SUPPLY = 1.025
BER_THRESHOLD = 1e-3


def test_ablation_mapping_accuracy_effect(benchmark, datasets):
    dataset = datasets["mnist"]
    model = get_baseline(datasets, "mnist", N_NEURONS)
    # A scaled device whose subarrays are small enough that the weight
    # tensor spans dozens of them - on the full 4Gb part this tensor
    # occupies 2% of a single subarray and both mappings see the same
    # cells, hiding the policy difference the ablation measures.
    spec = LPDDR3_1600_4GB.scaled(rows_per_subarray=32, columns_per_row=64)
    org = DramOrganization(spec)
    # strong spatial variation: some subarrays are much worse than others
    profile = WeakCellMap(org, sigma=1.5, seed=4).profile_at(V_SUPPLY)
    n_weights = model.weights.size

    base_map = baseline_mapping(org, n_weights, 32)
    xd_map = sparkxd_mapping(org, n_weights, 32, profile, BER_THRESHOLD)
    injector = ErrorInjector(Float32Representation(clip_range=(0, 1)), seed=3)

    def run():
        rng = np.random.default_rng(6)
        results = {}
        for label, mapping in (("baseline", base_map), ("sparkxd", xd_map)):
            accuracies = []
            flips = []
            for _ in range(3):
                corrupted, report = injector.inject_by_region(
                    model.weights, mapping.subarray_of_weight(), profile.rates,
                    rng=rng,
                )
                net = DiehlCookNetwork(
                    NetworkParameters(n_neurons=N_NEURONS), rng=rng
                )
                model.install_into(net)
                net.set_weights(corrupted)
                accuracies.append(
                    evaluate_accuracy(
                        net, dataset.test_images, dataset.test_labels,
                        model.assignments, N_STEPS, rng,
                    )
                )
                flips.append(report.flipped_bits)
            results[label] = (float(np.mean(accuracies)), float(np.mean(flips)))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n" + format_table(
        ["mapping", "accuracy", "mean flipped bits"],
        [
            [label, f"{acc:.1%}", f"{flips:.0f}"]
            for label, (acc, flips) in results.items()
        ],
        title=f"ABLATION - mapping policy at {V_SUPPLY}V "
        f"(device mean BER {profile.device_ber:.0e}, BER_th {BER_THRESHOLD:.0e})",
    ))

    base_acc, base_flips = results["baseline"]
    xd_acc, xd_flips = results["sparkxd"]
    # Algorithm 2 strictly reduces the weights' bit-flip exposure...
    assert xd_flips < base_flips
    # ...and therefore cannot hurt accuracy (allowing evaluation noise).
    assert xd_acc >= base_acc - 0.03

"""Section I motivation: DRAM traffic explodes when models outgrow
on-chip memory.

The paper motivates approximate DRAM with the observation that models
larger than the accelerator's on-chip memory (<100 MB on TrueNorth-
class hardware) must stream weights from DRAM.  This benchmark sweeps
the on-chip buffer size for the N3600 network under a weight-stationary
schedule and reports the DRAM energy per inference — the quantity the
rest of the paper then attacks with voltage scaling.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.dram.energy import DramEnergyModel
from repro.dram.specs import LPDDR3_1600_4GB
from repro.trace.tiling import buffer_sweep

N_WEIGHTS = 784 * 3600  # the paper's largest network
N_TIMESTEPS = 100
BUFFER_SIZES = tuple(int(size * 8e6) for size in (0.5, 1, 4, 12, 100))  # MB -> bits


def test_motivation_buffer_size_traffic(benchmark):
    energy_model = DramEnergyModel(LPDDR3_1600_4GB)
    per_access_nj = energy_model.energy_per_access_nj(1.35)
    slot_bits = LPDDR3_1600_4GB.geometry.column_width_bits

    def run():
        plans = buffer_sweep(
            N_WEIGHTS, 32, BUFFER_SIZES, N_TIMESTEPS, schedule="weight-stationary"
        )
        energies = [
            plan.total_traffic_bits / slot_bits * per_access_nj * 1e-6  # mJ
            for plan in plans
        ]
        return plans, energies

    plans, energies = benchmark(run)

    rows = [
        [
            f"{size / 8e6:.1f} MB",
            plan.refetch_passes,
            f"{energy:.2f}",
        ]
        for size, plan, energy in zip(BUFFER_SIZES, plans, energies)
    ]
    print("\n" + format_table(
        ["on-chip buffer", "weight re-fetches", "DRAM energy [mJ]"],
        rows,
        title="MOTIVATION (Section I) - N3600 inference DRAM traffic vs "
        "on-chip memory",
    ))

    # a buffer big enough for the tensor (11.3 MB) streams weights once
    assert plans[-1].refetch_passes == 1
    # halving the buffer below the tensor size multiplies traffic
    assert plans[0].refetch_passes > plans[2].refetch_passes > 1
    # energy strictly follows traffic
    assert energies[0] > energies[2] > energies[-1]

"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``
    Execute the full SparkXD pipeline (Fig. 7) and print the summary.
``sweep``
    Run a grid of pipeline configs through the parallel sweep runner,
    reusing trained models across DRAM-side grid points.
``cluster``
    Distribute sweeps across hosts (see docs/cluster.md):
    ``cluster coordinator`` serves a grid's jobs to networked workers,
    ``cluster worker`` runs one worker agent against a coordinator, and
    ``cluster sweep`` is the single-command localhost form (embedded
    coordinator + N worker subprocesses), and ``cluster status``
    queries a running coordinator for job-state counts and worker
    ages.  ``--journal`` persists job transitions next to the store
    and ``--resume`` replays them, so a coordinator killed mid-sweep
    restarts without re-executing done work; ``--no-affinity``
    disables holding-aware job placement.  ``cluster top`` renders a
    live fleet table (jobs, per-worker throughput, peer-vs-hub bytes,
    slowest open spans) from a running coordinator's telemetry.
``telemetry``
    Work with recorded traces: ``telemetry export`` converts the
    JSONL file written by ``--trace`` to a Chrome/Perfetto
    ``trace.json`` (see docs/telemetry.md).
``stages``
    Show the pipeline stages and every pluggable registry (datasets,
    error models, mapping policies, DRAM specs).
``dram``
    Print the DRAM-side studies (Fig. 2b, Table I) for a device.
``tolerance``
    Train a model, analyse its error tolerance and print the curve.
``cache``
    Manage the artifact disk cache (``cache prune`` evicts
    least-recently-used artifacts down to a byte budget;
    ``--dry-run`` reports what would be evicted without deleting).
``lint``
    Run the project invariant checkers (fingerprint completeness, RNG
    discipline, lock discipline, wire-protocol consistency, workspace
    discipline, log discipline) over the source tree; ``--check``
    gates on new findings (see docs/lint.md).

Every data-producing command accepts ``--json`` for machine-readable
output on stdout.  ``run``, ``sweep`` and every ``cluster``
subcommand also accept ``--log-level`` (structured JSON logs on
stderr) and ``--trace PATH`` (span recording, docs/telemetry.md).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

import numpy as np

REPRESENTATIONS = ("float32", "int8", "int16")
COMPUTE_DTYPES = ("float64", "float32")
STAGE_ENCODING_CHOICES = ("fresh", "shared")


def _add_telemetry_arguments(p) -> None:
    """The shared observability knobs (see docs/telemetry.md)."""
    p.add_argument("--log-level", default=None, metavar="LEVEL",
                   help="emit structured JSON log lines at LEVEL "
                        "(DEBUG/INFO/WARNING/ERROR) on stderr")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="record span traces to a JSONL file; export "
                        "with 'repro telemetry export'")


def _add_run_parser(subparsers) -> None:
    p = subparsers.add_parser("run", help="run the full SparkXD pipeline")
    p.add_argument("--dataset", default="mnist")
    p.add_argument("--neurons", type=int, default=60)
    p.add_argument("--train", type=int, default=150)
    p.add_argument("--test", type=int, default=80)
    p.add_argument("--steps", type=int, default=80)
    p.add_argument("--bound", type=float, default=0.05,
                   help="accuracy bound (paper: 0.01)")
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--voltages", type=float, nargs="+", metavar="V",
                   help="reduced supply voltages to evaluate "
                        "(default: the paper's Fig. 12a set)")
    p.add_argument("--representation", choices=REPRESENTATIONS,
                   default="float32", help="weight storage representation")
    p.add_argument("--mapping", default="sparkxd",
                   help="weight mapping policy (see 'stages' for choices)")
    p.add_argument("--error-model", default="model0", metavar="NAME",
                   help="DRAM error model injected during training "
                        "(see 'stages' for choices)")
    p.add_argument("--engine", choices=("batched", "sequential"),
                   default="batched",
                   help="simulation engine (results are identical; "
                        "batched is the fast path)")
    p.add_argument("--train-batch-size", type=int, default=1, metavar="B",
                   help="samples per STDP presentation (1 = bit-exact "
                        "sequential reference; >1 = vectorized minibatch "
                        "approximation, see docs/training.md)")
    p.add_argument("--compute-dtype", choices=COMPUTE_DTYPES,
                   default="float64",
                   help="simulation/training precision (float32 halves "
                        "memory bandwidth but changes results)")
    p.add_argument("--stage-encoding", choices=STAGE_ENCODING_CHOICES,
                   default="fresh",
                   help="per-BER-stage encoding of fault-aware training "
                        "(shared = encode once, replay at every later "
                        "stage; requires --train-batch-size > 1)")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="artifact-store directory; repeated runs with the "
                        "same config reuse cached stages")
    p.add_argument("--json", action="store_true",
                   help="print the run record as JSON instead of the summary")
    p.add_argument("--save-model", metavar="PATH",
                   help="write the improved model to an .npz file")
    _add_telemetry_arguments(p)


def _add_grid_arguments(p) -> None:
    """The sweep-grid axes and workload knobs (shared with ``cluster``)."""
    p.add_argument("--dataset", dest="datasets", nargs="+", default=["mnist"],
                   metavar="NAME", help="dataset axis")
    p.add_argument("--seeds", type=int, nargs="+", default=[42], metavar="S",
                   help="training-seed axis (each seed retrains)")
    p.add_argument("--sigmas", type=float, nargs="+", default=None, metavar="SIG",
                   help="weak-cell sigma axis (DRAM-side, no retraining)")
    p.add_argument("--mappings", nargs="+", default=None, metavar="POLICY",
                   help="mapping-policy axis (DRAM-side, no retraining)")
    p.add_argument("--error-models", nargs="+", default=None, metavar="NAME",
                   help="error-model axis (training-side: each model "
                        "retrains, see 'stages' for choices)")
    p.add_argument("--engine", choices=("batched", "sequential"),
                   default="batched",
                   help="simulation engine for every grid point")
    p.add_argument("--train-batch-size", type=int, nargs="+", default=None,
                   metavar="B", dest="train_batch_sizes",
                   help="train-batch-size axis (training-side: each size "
                        "retrains; see docs/training.md)")
    p.add_argument("--compute-dtype", nargs="+", default=None,
                   choices=COMPUTE_DTYPES, dest="compute_dtypes",
                   metavar="DTYPE",
                   help="compute-precision axis (training-side: each "
                        "dtype retrains; float64/float32)")
    p.add_argument("--stage-encoding", nargs="+", default=None,
                   choices=STAGE_ENCODING_CHOICES, dest="stage_encodings",
                   metavar="MODE",
                   help="stage-encoding axis (training-side: each mode "
                        "retrains; fresh/shared, shared requires a "
                        "train-batch-size > 1 on the same grid point)")
    p.add_argument("--voltages", type=float, nargs="+", default=None, metavar="V",
                   help="voltage axis: each voltage becomes its own grid "
                        "point (DRAM-side, no retraining)")
    p.add_argument("--neurons", type=int, default=60)
    p.add_argument("--train", type=int, default=150)
    p.add_argument("--test", type=int, default=80)
    p.add_argument("--steps", type=int, default=80)
    p.add_argument("--bound", type=float, default=0.05)


def _add_record_output_arguments(p) -> None:
    p.add_argument("--csv", metavar="PATH", help="also write records as CSV")
    p.add_argument("--out", metavar="PATH", help="also write records as JSON")
    p.add_argument("--json", action="store_true",
                   help="print the records as JSON instead of the table")


def _add_cluster_resilience_arguments(p) -> None:
    """Journal/resume/affinity/fabric knobs shared by coordinator + sweep."""
    p.add_argument("--journal", nargs="?", const="auto", default=None,
                   metavar="PATH",
                   help="append job transitions to a JSONL journal; with "
                        "no PATH it lives next to the store "
                        "(CACHE_DIR/journal.jsonl, requires --cache-dir)")
    p.add_argument("--resume", action="store_true",
                   help="replay an existing journal: journaled-done jobs "
                        "whose artifacts are still cached are never "
                        "re-leased (implies --journal)")
    p.add_argument("--compact-every", type=int, default=None, metavar="N",
                   help="auto-compact the journal after every N events, "
                        "folding lease/requeue chatter into one done "
                        "snapshot (default: never)")
    p.add_argument("--no-affinity", dest="affinity", action="store_false",
                   help="disable worker-affinity scheduling (grants fall "
                        "back to plain creation order)")
    p.add_argument("--no-peer-sync", dest="peer_sync", action="store_false",
                   help="disable the peer-to-peer artifact fabric: the "
                        "coordinator answers no locate queries and every "
                        "artifact byte routes through it (pre-fabric hub "
                        "topology)")


def _add_sweep_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "sweep",
        help="grid sweep through the staged pipeline (cached, parallel)",
    )
    _add_grid_arguments(p)
    p.add_argument("--workers", type=int, default=1,
                   help="process-parallel workers (1 = serial)")
    p.add_argument("--threads-per-worker", type=int, default=1, metavar="T",
                   help="BLAS/OpenMP threads each worker may use "
                        "(0 = leave the runtimes uncapped)")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="artifact-store directory shared across sweeps")
    _add_record_output_arguments(p)
    _add_telemetry_arguments(p)


def _add_token_argument(p) -> None:
    """The shared cluster secret, enforced on both protocol planes.

    Defaults from ``$REPRO_CLUSTER_TOKEN`` so the secret never has to
    appear in ``ps`` output; an explicit ``--token`` wins.
    """
    p.add_argument("--token", default=os.environ.get("REPRO_CLUSTER_TOKEN"),
                   metavar="SECRET",
                   help="shared cluster auth token (default: "
                        "$REPRO_CLUSTER_TOKEN; unset = no auth)")


def _add_cluster_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "cluster",
        help="distribute sweeps across hosts (see docs/cluster.md)",
    )
    commands = p.add_subparsers(dest="cluster_command", required=True)

    serve = commands.add_parser(
        "serve",
        help="run the always-on experiment service: worker plane + "
             "HTTP/JSON control plane, multi-tenant sweeps on one store",
    )
    serve.add_argument("--bind", default="127.0.0.1:8752", metavar="HOST:PORT",
                       help="worker line-protocol bind (port 0 = ephemeral)")
    serve.add_argument("--http-bind", default=None, metavar="HOST:PORT",
                       help="control-plane bind (default: the worker host "
                            "on port 8753)")
    serve.add_argument("--cache-dir", metavar="DIR",
                       help="artifact-store directory shared by every sweep")
    serve.add_argument("--journal-dir", metavar="DIR",
                       help="directory for per-sweep journals "
                            "(sweep-<id>.jsonl; resubmits resume them)")
    serve.add_argument("--lease-s", type=float, default=30.0, metavar="S",
                       help="job lease/heartbeat timeout in seconds")
    serve.add_argument("--max-retries", type=int, default=3, metavar="N",
                       help="lease grants per job before a sweep fails")
    serve.add_argument("--compact-every", type=int, default=None, metavar="N",
                       help="auto-compact each tenant journal after every "
                            "N events (default: never)")
    serve.add_argument("--no-affinity", dest="affinity", action="store_false",
                       help="disable worker-affinity scheduling")
    serve.add_argument("--no-peer-sync", dest="peer_sync",
                       action="store_false",
                       help="disable the peer-to-peer artifact fabric")
    serve.add_argument("--shutdown-when-idle", action="store_true",
                       help="tell workers to shut down once every submitted "
                            "sweep has finished (single-shot lifecycle)")
    _add_token_argument(serve)
    _add_telemetry_arguments(serve)

    submit = commands.add_parser(
        "submit",
        help="submit a sweep to a running experiment service",
    )
    _add_grid_arguments(submit)
    submit.add_argument("--service", required=True, metavar="HOST:PORT",
                        help="control-plane address of the service")
    submit.add_argument("--name", default=None, metavar="NAME",
                        help="human-readable sweep label")
    submit.add_argument("--wait", action="store_true",
                        help="block until the sweep finishes, then print "
                             "its records")
    submit.add_argument("--wait-timeout", type=float, default=None,
                        metavar="S",
                        help="with --wait: give up after S seconds")
    _add_token_argument(submit)
    _add_record_output_arguments(submit)
    _add_telemetry_arguments(submit)

    cancel = commands.add_parser(
        "cancel",
        help="cancel a sweep on a running service (frees its leases)",
    )
    cancel.add_argument("sweep_id", metavar="SWEEP_ID")
    cancel.add_argument("--service", required=True, metavar="HOST:PORT",
                        help="control-plane address of the service")
    cancel.add_argument("--json", action="store_true",
                        help="print the cancel reply as JSON")
    _add_token_argument(cancel)
    _add_telemetry_arguments(cancel)

    results = commands.add_parser(
        "results",
        help="fetch a finished sweep's records from a running service",
    )
    results.add_argument("sweep_id", metavar="SWEEP_ID")
    results.add_argument("--service", required=True, metavar="HOST:PORT",
                         help="control-plane address of the service")
    _add_token_argument(results)
    _add_record_output_arguments(results)
    _add_telemetry_arguments(results)

    coord = commands.add_parser(
        "coordinator",
        help="serve a sweep's jobs to networked workers, then print records",
    )
    _add_grid_arguments(coord)
    coord.add_argument("--bind", default="127.0.0.1:8752", metavar="HOST:PORT",
                       help="address to listen on (port 0 = ephemeral)")
    coord.add_argument("--lease-s", type=float, default=30.0, metavar="S",
                       help="job lease/heartbeat timeout in seconds")
    coord.add_argument("--max-retries", type=int, default=3, metavar="N",
                       help="lease grants per job before the sweep fails")
    coord.add_argument("--wait-timeout", type=float, default=None, metavar="S",
                       help="give up if the sweep is not distributed within "
                            "S seconds (default: wait for workers forever)")
    coord.add_argument("--cache-dir", metavar="DIR",
                       help="artifact-store directory shared across sweeps")
    _add_cluster_resilience_arguments(coord)
    _add_record_output_arguments(coord)
    _add_telemetry_arguments(coord)

    worker = commands.add_parser(
        "worker",
        help="run one worker agent against a coordinator",
    )
    worker.add_argument("--coordinator", required=True, metavar="HOST:PORT",
                        help="coordinator address to lease jobs from")
    worker.add_argument("--name", default=None, metavar="NAME",
                        help="stable worker identity (default: host-pid-nonce)")
    worker.add_argument("--cache-dir", metavar="DIR",
                        help="local artifact-store directory (default: memory)")
    worker.add_argument("--max-idle-s", type=float, default=30.0, metavar="S",
                        help="exit after S seconds of coordinator "
                             "unreachability")
    worker.add_argument("--no-peer-sync", dest="peer_sync",
                        action="store_false",
                        help="neither serve artifacts to peers nor pull "
                             "from them; sync exclusively with the "
                             "coordinator")
    worker.add_argument("--peer-port", type=int, default=0, metavar="PORT",
                        help="fixed port for the peer artifact server "
                             "(default: ephemeral)")
    worker.add_argument("--json", action="store_true",
                        help="print the worker's lifetime stats as JSON")
    _add_token_argument(worker)
    _add_telemetry_arguments(worker)

    status = commands.add_parser(
        "status",
        help="query a running coordinator or service: job-state counts, "
             "worker ages, per-sweep journal lag",
    )
    status.add_argument("--coordinator", default=None, metavar="HOST:PORT",
                        help="coordinator address to query (line protocol)")
    status.add_argument("--service", default=None, metavar="HOST:PORT",
                        help="experiment-service control-plane address to "
                             "query over HTTP instead of --coordinator")
    status.add_argument("--timeout", type=float, default=10.0, metavar="S",
                        help="connection timeout in seconds")
    status.add_argument("--json", action="store_true",
                        help="print the raw status reply as JSON")
    _add_token_argument(status)
    _add_telemetry_arguments(status)

    top = commands.add_parser(
        "top",
        help="live fleet view: per-worker throughput, transfer bytes, "
             "retries, per-sweep tenants and the slowest open spans",
    )
    top.add_argument("--coordinator", required=True, metavar="HOST:PORT",
                     help="coordinator address to query")
    _add_token_argument(top)
    top.add_argument("--watch", type=float, default=None, metavar="S",
                     help="refresh every S seconds until interrupted "
                          "(default: render one frame and exit)")
    top.add_argument("--timeout", type=float, default=10.0, metavar="S",
                     help="connection timeout in seconds")
    top.add_argument("--json", action="store_true",
                     help="print the raw status reply as JSON")
    _add_telemetry_arguments(top)

    journal = commands.add_parser(
        "journal",
        help="offline journal maintenance (no coordinator required)",
    )
    journal_commands = journal.add_subparsers(
        dest="journal_command", required=True
    )
    compact = journal_commands.add_parser(
        "compact",
        help="fold a sweep journal down to its plan header + one done "
             "snapshot (replays to identical state, O(done) size)",
    )
    compact.add_argument("path", metavar="JOURNAL",
                         help="the JSONL journal file to compact in place")
    compact.add_argument("--json", action="store_true",
                         help="print the compaction summary as JSON")
    _add_telemetry_arguments(compact)

    sweep = commands.add_parser(
        "sweep",
        help="localhost cluster sweep: embedded coordinator + N worker "
             "subprocesses",
    )
    _add_grid_arguments(sweep)
    sweep.add_argument("--workers", type=int, default=2, metavar="N",
                       help="worker subprocesses to launch")
    sweep.add_argument("--threads-per-worker", type=int, default=1, metavar="T",
                       help="BLAS/OpenMP threads each worker may use "
                            "(0 = leave the runtimes uncapped)")
    sweep.add_argument("--port", type=int, default=0, metavar="PORT",
                       help="coordinator port (0 = ephemeral)")
    sweep.add_argument("--lease-s", type=float, default=30.0, metavar="S")
    sweep.add_argument("--max-retries", type=int, default=3, metavar="N")
    sweep.add_argument("--wait-timeout", type=float, default=600.0, metavar="S",
                       help="abort if not distributed within S seconds")
    sweep.add_argument("--max-idle-s", type=float, default=30.0, metavar="S",
                       help="worker subprocesses exit after S seconds of "
                            "coordinator unreachability (bounds orphan "
                            "lifetime after a coordinator crash)")
    sweep.add_argument("--cache-dir", metavar="DIR",
                       help="coordinator artifact-store directory")
    _add_cluster_resilience_arguments(sweep)
    _add_record_output_arguments(sweep)
    _add_telemetry_arguments(sweep)


def _add_telemetry_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "telemetry",
        help="work with recorded traces (see docs/telemetry.md)",
    )
    commands = p.add_subparsers(dest="telemetry_command", required=True)
    export = commands.add_parser(
        "export",
        help="convert a JSONL span trace to Chrome/Perfetto trace.json "
             "(load in chrome://tracing or ui.perfetto.dev)",
    )
    export.add_argument("--trace", required=True, metavar="PATH",
                        help="the JSONL trace a --trace run recorded")
    export.add_argument("--out", default=None, metavar="PATH",
                        help="output path (default: TRACE with a "
                             ".chrome.json suffix)")
    export.add_argument("--json", action="store_true",
                        help="print the export summary as JSON")


def _add_stages_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "stages", help="list pipeline stages and pluggable registries"
    )
    p.add_argument("--json", action="store_true")


def _add_dram_parser(subparsers) -> None:
    p = subparsers.add_parser("dram", help="DRAM energy studies (no training)")
    p.add_argument(
        "--voltages", type=float, nargs="+",
        default=[1.325, 1.250, 1.175, 1.100, 1.025],
    )
    p.add_argument("--spec", default="lpddr3-1600-4gb", metavar="NAME",
                   help="DRAM device spec (see 'stages' for choices)")
    p.add_argument("--json", action="store_true")


def _add_tolerance_parser(subparsers) -> None:
    p = subparsers.add_parser("tolerance", help="error-tolerance analysis")
    p.add_argument("--dataset", default="mnist")
    p.add_argument("--neurons", type=int, default=60)
    p.add_argument("--train", type=int, default=150)
    p.add_argument("--test", type=int, default=80)
    p.add_argument("--bound", type=float, default=0.05)
    p.add_argument("--rates", type=float, nargs="+",
                   default=[1e-9, 1e-7, 1e-5, 1e-3])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true")


def _parse_size(text: str) -> int:
    """Parse a byte size with an optional K/M/G suffix (e.g. ``500M``)."""
    text = str(text).strip()
    multipliers = {"k": 1024, "m": 1024**2, "g": 1024**3}
    suffix = text[-1:].lower()
    if suffix in multipliers:
        return int(float(text[:-1]) * multipliers[suffix])
    return int(text)


def _add_cache_parser(subparsers) -> None:
    p = subparsers.add_parser("cache", help="manage the artifact disk cache")
    cache_commands = p.add_subparsers(dest="cache_command", required=True)
    prune = cache_commands.add_parser(
        "prune",
        help="evict least-recently-used artifacts down to a byte budget",
    )
    prune.add_argument("--cache-dir", required=True, metavar="DIR",
                       help="artifact-store directory to prune")
    prune.add_argument("--max-bytes", required=True, metavar="SIZE",
                       help="byte budget to shrink the cache to "
                            "(K/M/G suffixes allowed, e.g. 500M)")
    prune.add_argument("--dry-run", action="store_true",
                       help="report what LRU eviction would delete "
                            "without touching the store")
    prune.add_argument("--json", action="store_true")


def _add_lint_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "lint",
        help="run the project invariant checkers (see docs/lint.md)",
    )
    p.add_argument("--root", default=None, metavar="DIR",
                   help="tree to lint (default: the installed repro package)")
    p.add_argument("--baseline", default=None, metavar="FILE",
                   help="known-findings file; only findings absent from it "
                        "gate --check (default: lint-baseline.json in the "
                        "current directory, if present)")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite the baseline file with the current "
                        "findings and exit 0")
    p.add_argument("--check", action="store_true",
                   help="gate mode: exit 1 if any new error/warning "
                        "finding exists (info never gates)")
    p.add_argument("--rules", nargs="+", metavar="RULE",
                   help="run only these rules (default: all)")
    p.add_argument("--report", metavar="FILE",
                   help="also write the full JSON report to FILE")
    p.add_argument("--json", action="store_true",
                   help="print the JSON report on stdout instead of text")


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser with all subcommands attached."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SparkXD reproduction - resilient SNN inference on approximate DRAM",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_run_parser(subparsers)
    _add_sweep_parser(subparsers)
    _add_cluster_parser(subparsers)
    _add_telemetry_parser(subparsers)
    _add_stages_parser(subparsers)
    _add_dram_parser(subparsers)
    _add_tolerance_parser(subparsers)
    _add_cache_parser(subparsers)
    _add_lint_parser(subparsers)
    return parser


def _base_config(args):
    from repro import SparkXDConfig

    overrides = dict(
        n_neurons=args.neurons,
        n_train=args.train,
        n_test=args.test,
        n_steps=args.steps,
        accuracy_bound=args.bound,
    )
    if getattr(args, "dataset", None) is not None:
        overrides["dataset"] = args.dataset
    if getattr(args, "seed", None) is not None:
        overrides["seed"] = args.seed
    return SparkXDConfig.small(**overrides)


def _cmd_run(args) -> int:
    from repro.pipeline import ArtifactStore, ExperimentPipeline
    from repro.pipeline.runner import RunRecord

    config = _base_config(args).with_overrides(
        representation=args.representation,
        mapping_policy=args.mapping,
        error_model=args.error_model,
        engine=args.engine,
        train_batch_size=args.train_batch_size,
        compute_dtype=args.compute_dtype,
        stage_encoding=args.stage_encoding,
    )
    if args.voltages:
        config = config.with_overrides(voltages=tuple(args.voltages))
    store = ArtifactStore(args.cache_dir) if args.cache_dir else ArtifactStore()
    pipeline = ExperimentPipeline(config, store=store)
    result = pipeline.run()
    if args.json:
        record = RunRecord.from_result(
            result,
            cache_hits=store.stats.hits,
            cache_misses=store.stats.misses,
            stage_timings=pipeline.stage_timings,
        )
        print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
    else:
        print(result.summary())
    if args.save_model:
        from repro.snn.serialization import save_model

        path = save_model(result.improved_model, args.save_model)
        if not args.json:
            print(f"improved model written to {path}")
    return 0


def _grid_from_args(args, base) -> dict:
    """Build the sweep grid dict the CLI axes describe."""
    from repro.analysis.sweeps import per_voltage_axis

    grid = {}
    if args.datasets != ["mnist"]:
        grid["dataset"] = list(args.datasets)
    if args.seeds and args.seeds != [base.seed]:
        grid["seed"] = list(args.seeds)
    if args.voltages:
        grid["voltages"] = per_voltage_axis(args.voltages)
    if args.sigmas:
        grid["weak_cell_sigma"] = list(args.sigmas)
    if args.mappings:
        grid["mapping_policy"] = list(args.mappings)
    if args.error_models:
        grid["error_model"] = list(args.error_models)
    if args.train_batch_sizes:
        grid["train_batch_size"] = list(args.train_batch_sizes)
    if args.compute_dtypes:
        grid["compute_dtype"] = list(args.compute_dtypes)
    if args.stage_encodings:
        grid["stage_encoding"] = list(args.stage_encodings)
    return grid


def _emit_records(args, records, title: str) -> None:
    """Print/write sweep records per the shared output flags."""
    from repro.analysis.export import (
        export_run_records,
        run_records_to_json,
        write_run_records_json,
    )
    from repro.analysis.reporting import format_table

    if args.json:
        print(run_records_to_json(records))
    else:
        rows = []
        for record in records:
            rows.append([
                record.run_id,
                json.dumps(record.params, default=str),
                f"{record.baseline_accuracy:.3f}",
                f"{record.improved_accuracy:.3f}",
                f"{record.ber_threshold}",
                f"{record.mean_energy_saving:.1%}",
                f"{record.cache_hits}/{record.cache_hits + record.cache_misses}",
            ])
        print(format_table(
            ["run", "params", "base acc", "impr acc", "BER_th",
             "mean saving", "cache"],
            rows,
            title=title,
        ))
    if args.csv:
        path = export_run_records(args.csv, records)
        if not args.json:
            print(f"records written to {path}")
    if args.out:
        path = write_run_records_json(args.out, records)
        if not args.json:
            print(f"records written to {path}")


def _cmd_sweep(args) -> int:
    from repro.pipeline import ArtifactStore, Runner

    base = _base_config(args).with_overrides(engine=args.engine)
    grid = _grid_from_args(args, base)
    store = ArtifactStore(args.cache_dir) if args.cache_dir else ArtifactStore()
    runner = Runner(
        base,
        store=store,
        max_workers=args.workers,
        threads_per_worker=(
            None if args.threads_per_worker == 0 else args.threads_per_worker
        ),
    )
    records = runner.run(grid)
    _emit_records(args, records, title=f"sweep: {len(records)} grid points")
    return 0


def _resolve_journal(args):
    """The journal path the ``--journal``/``--resume`` flags describe.

    ``--resume`` implies journaling; the bare ``--journal`` flag (no
    PATH) places the journal next to the store, which therefore
    requires ``--cache-dir`` — an in-memory store cannot resume anyway.
    """
    from pathlib import Path

    journal = args.journal or ("auto" if args.resume else None)
    if journal is None:
        return None
    if journal == "auto":
        if not args.cache_dir:
            raise ValueError(
                "--journal/--resume without a PATH places the journal next "
                "to the store: pass --cache-dir (resume needs a disk-backed "
                "store to hold the artifacts) or an explicit --journal PATH"
            )
        return Path(args.cache_dir) / "journal.jsonl"
    return Path(journal)


def _format_bytes(n: float) -> str:
    """Human-readable byte count (binary units) for the fleet table."""
    n = float(n)
    for unit in ("B", "KiB", "MiB"):
        if n < 1024:
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024.0
    return f"{n:.1f}GiB"


def _render_top(status: dict) -> str:
    """One frame of the ``cluster top`` fleet view.

    Pure function over a ``status`` reply so tests can feed canned
    payloads; tolerant of coordinators predating the ``telemetry``
    field (the table simply loses its metric columns).
    """
    from repro.analysis.reporting import format_table

    lines = []
    jobs = ", ".join(
        f"{state}={status.get(state, 0)}"
        for state in ("pending", "leased", "done", "failed")
    )
    lines.append(f"jobs: {jobs}")
    telemetry = status.get("telemetry") or {}
    fleet_counters = (telemetry.get("fleet") or {}).get("counters") or {}
    if fleet_counters:
        lines.append(
            "fleet: "
            f"leases={fleet_counters.get('plan.leases', 0):.0f} "
            f"requeues={fleet_counters.get('plan.requeues', 0):.0f} "
            f"sync-retries={fleet_counters.get('sync.retries', 0):.0f} "
            f"pulled {_format_bytes(fleet_counters.get('sync.pulled_bytes_peer', 0))} peer"
            f" / {_format_bytes(fleet_counters.get('sync.pulled_bytes_hub', 0))} hub"
        )
    workers = status.get("workers") or {}
    snapshots = telemetry.get("workers") or {}
    rows = []
    for name in sorted(workers):
        snapshot = snapshots.get(name) or {}
        counters = (snapshot.get("metrics") or {}).get("counters") or {}
        open_list = snapshot.get("open_spans") or []
        slowest = (
            f"{open_list[0]['name']} ({open_list[0]['age_s']:.1f}s)"
            if open_list else "-"
        )
        rows.append([
            name,
            f"{workers[name]:.1f}s",
            f"{counters.get('worker.jobs_done', 0):.0f}",
            f"{counters.get('worker.jobs_failed', 0):.0f}",
            f"{counters.get('sync.retries', 0):.0f}",
            _format_bytes(counters.get("sync.pulled_bytes_peer", 0)),
            _format_bytes(counters.get("sync.pulled_bytes_hub", 0)),
            slowest,
        ])
    if rows:
        lines.append(format_table(
            ["worker", "seen", "done", "failed", "retries",
             "peer in", "hub in", "slowest open span"],
            rows,
        ))
    else:
        lines.append("no workers registered")
    sweep_lines = _sweep_status_lines(status)
    if sweep_lines:
        lines.extend(sweep_lines)
    if status.get("failure"):
        lines.append(f"failure: {status['failure']}")
    return "\n".join(lines)


def _sweep_status_lines(status: dict) -> list:
    """Per-tenant lines for ``status``/``top``: state, counts, journal lag.

    Covers both shapes the wire ``status`` op can take: the service's
    ``sweeps`` map (one entry per tenant) and the single-plan
    coordinator's top-level ``journal`` summary.
    """
    lines = []
    sweeps = status.get("sweeps") or {}
    for sweep_id in sorted(sweeps):
        info = sweeps[sweep_id] or {}
        counts = ", ".join(
            f"{state}={info.get(state, 0)}"
            for state in ("pending", "leased", "done", "failed")
        )
        name = info.get("name")
        label = f"sweep {sweep_id}" + (f" ({name})" if name else "")
        line = f"{label} [{info.get('state', '?')}]: {counts}"
        journal = info.get("journal") or {}
        if journal:
            line += f" | journal lag {journal.get('lag', 0)}"
        if info.get("failure"):
            line += f" | failure: {info['failure']}"
        lines.append(line)
    journal = status.get("journal") or {}
    if journal and not sweeps:
        lines.append(
            f"journal: {journal.get('events', 0)} event(s), "
            f"lag {journal.get('lag', 0)} since last snapshot "
            f"({journal.get('path', '?')})"
        )
    return lines


def _cmd_cluster(args) -> int:
    from repro.pipeline import ArtifactStore

    if args.cluster_command == "worker":
        from repro.cluster import WorkerAgent

        store = (
            ArtifactStore(args.cache_dir) if args.cache_dir else ArtifactStore()
        )
        agent = WorkerAgent(
            args.coordinator,
            name=args.name,
            store=store,
            max_idle_s=args.max_idle_s,
            peer=args.peer_sync,
            peer_port=args.peer_port,
            token=args.token,
        )
        stats = agent.run_forever()
        if args.json:
            print(json.dumps(stats.to_dict(), indent=2, sort_keys=True))
        else:
            print(
                f"worker {agent.name}: {stats.jobs_done} job(s) done, "
                f"{stats.jobs_failed} failed, "
                f"{stats.artifacts_pulled} pulled / "
                f"{stats.artifacts_pushed} pushed"
            )
        return 0 if not stats.jobs_failed else 1

    if args.cluster_command == "journal":
        from pathlib import Path

        from repro.cluster import SweepJournal

        if args.journal_command != "compact":
            raise ValueError(
                f"unknown journal command {args.journal_command!r}"
            )
        path = Path(args.path)
        if not path.exists():
            print(f"error: journal {path} does not exist", file=sys.stderr)
            return 1
        with SweepJournal(path, resume=True) as journal_file:
            summary = journal_file.compact()
        summary["path"] = str(path)
        summary["bytes"] = path.stat().st_size
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(
                f"compacted {path}: {summary['events_before']} event(s) -> "
                f"{summary['events_after']} ({summary['done']} done jobs, "
                f"{summary['bytes']} bytes)"
            )
        return 0

    if args.cluster_command == "status":
        if bool(args.coordinator) == bool(args.service):
            print(
                "error: pass exactly one of --coordinator or --service",
                file=sys.stderr,
            )
            return 2
        if args.service:
            from repro.cluster.http_api import ServiceClient

            status = ServiceClient(
                args.service, token=args.token, timeout=args.timeout
            ).fleet()
        else:
            from repro.cluster import ClusterClient

            client = ClusterClient(
                args.coordinator, timeout=args.timeout, token=args.token
            )
            status = client.status()
        if args.json:
            print(json.dumps(status, indent=2, sort_keys=True))
        else:
            counts = ", ".join(
                f"{state}={status.get(state, 0)}"
                for state in ("pending", "leased", "done", "failed")
            )
            print(f"jobs: {counts}")
            workers = status.get("workers") or {}
            for name in sorted(workers):
                print(f"worker {name}: seen {workers[name]:.1f}s ago")
            for line in _sweep_status_lines(status):
                print(line)
            if status.get("failure"):
                print(f"failure: {status['failure']}")
        return 1 if status.get("failure") else 0

    if args.cluster_command == "top":
        import time

        from repro.cluster import ClusterClient

        client = ClusterClient(
            args.coordinator, timeout=args.timeout, token=args.token
        )
        while True:
            status = client.status()
            if args.json:
                print(json.dumps(status, indent=2, sort_keys=True))
            else:
                print(_render_top(status))
            if not args.watch:
                break
            try:
                time.sleep(args.watch)
            except KeyboardInterrupt:
                break
            if not args.json:
                print()
        return 1 if status.get("failure") else 0

    if args.cluster_command == "serve":
        import time

        from repro.cluster import format_address, parse_address
        from repro.cluster.http_api import DEFAULT_HTTP_PORT
        from repro.cluster.service import ExperimentService

        host, port = parse_address(args.bind)
        if args.http_bind is not None:
            http_host, http_port = parse_address(
                args.http_bind, default_port=DEFAULT_HTTP_PORT
            )
        else:
            http_host, http_port = host, DEFAULT_HTTP_PORT
        store = (
            ArtifactStore(args.cache_dir) if args.cache_dir else ArtifactStore()
        )
        service = ExperimentService(
            store=store,
            host=host,
            port=port,
            http_host=http_host,
            http_port=http_port,
            token=args.token,
            lease_timeout=args.lease_s,
            max_attempts=args.max_retries,
            affinity=args.affinity,
            peer_sync=args.peer_sync,
            journal_dir=args.journal_dir,
            compact_every=args.compact_every,
            shutdown_when_idle=args.shutdown_when_idle,
        )
        service.start()
        try:
            print(
                f"workers:  repro cluster worker --coordinator "
                f"{format_address(service.worker_address)}"
            )
            print(
                f"control:  repro cluster submit --service "
                f"{format_address(service.http_address)}"
            )
            print(f"auth:     {'token required' if args.token else 'off'}")
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            pass
        finally:
            service.stop()
        return 0

    if args.cluster_command == "submit":
        from repro.cluster.http_api import ServiceClient
        from repro.pipeline.runner import RunRecord

        base = _base_config(args).with_overrides(engine=args.engine)
        grid = _grid_from_args(args, base)
        client = ServiceClient(args.service, token=args.token)
        submitted = client.submit(base, grid, name=args.name)
        if not args.wait:
            if args.json:
                print(json.dumps(submitted, indent=2, sort_keys=True))
            else:
                print(
                    f"sweep {submitted['sweep_id']} "
                    f"[{submitted.get('state', '?')}]: "
                    f"{submitted.get('grid_points', '?')} grid point(s), "
                    f"{submitted.get('replayed_done', 0)} replayed done"
                )
            return 0
        final = client.wait(submitted["sweep_id"], timeout=args.wait_timeout)
        if final.get("state") != "done":
            print(
                f"sweep {submitted['sweep_id']} ended "
                f"{final.get('state', '?')}",
                file=sys.stderr,
            )
            return 1
        payload = client.results(submitted["sweep_id"])
        records = [
            RunRecord.from_dict(entry) for entry in payload.get("records", [])
        ]
        _emit_records(
            args,
            records,
            title=(
                f"sweep {submitted['sweep_id']}: "
                f"{len(records)} grid points"
            ),
        )
        return 0

    if args.cluster_command == "cancel":
        from repro.cluster.http_api import ServiceClient

        reply = ServiceClient(args.service, token=args.token).cancel(
            args.sweep_id
        )
        if args.json:
            print(json.dumps(reply, indent=2, sort_keys=True))
        else:
            print(
                f"sweep {reply['sweep_id']} [{reply.get('state', '?')}]: "
                f"{reply.get('leases_freed', 0)} lease(s) freed"
            )
        return 0

    if args.cluster_command == "results":
        from repro.cluster.http_api import ServiceClient
        from repro.pipeline.runner import RunRecord

        payload = ServiceClient(args.service, token=args.token).results(
            args.sweep_id
        )
        records = [
            RunRecord.from_dict(entry) for entry in payload.get("records", [])
        ]
        _emit_records(
            args,
            records,
            title=f"sweep {args.sweep_id}: {len(records)} grid points",
        )
        return 0

    from repro.cluster import ClusterExecutor, format_address

    base = _base_config(args).with_overrides(engine=args.engine)
    grid = _grid_from_args(args, base)
    store = ArtifactStore(args.cache_dir) if args.cache_dir else ArtifactStore()
    journal = _resolve_journal(args)

    if args.cluster_command == "coordinator":
        executor = ClusterExecutor(
            base,
            store=store,
            address=args.bind,
            lease_timeout=args.lease_s,
            max_attempts=args.max_retries,
            wait_timeout=args.wait_timeout,
            journal=journal,
            resume=args.resume,
            affinity=args.affinity,
            peer_sync=args.peer_sync,
            compact_every=args.compact_every,
        )

        def announce(address):
            if not args.json:
                print(f"coordinator listening on {format_address(address)}; "
                      "waiting for workers "
                      f"(repro cluster worker --coordinator {format_address(address)})")

        records = executor.run(grid, on_ready=announce)
        _emit_records(
            args, records, title=f"distributed sweep: {len(records)} grid points"
        )
        return 0

    if args.cluster_command == "sweep":
        # The single-command localhost form is the service composition,
        # thin: an in-process ExperimentService in single-shot mode
        # (shutdown_when_idle tells workers to exit when the one sweep
        # is done), submit, a local worker fleet, wait, assemble.
        from repro.cluster import local_worker_processes
        from repro.cluster.service import ExperimentService
        from repro.telemetry import span

        service = ExperimentService(
            store=store,
            port=args.port,
            lease_timeout=args.lease_s,
            max_attempts=args.max_retries,
            affinity=args.affinity,
            peer_sync=args.peer_sync,
            shutdown_when_idle=True,
        )
        service.start()
        grid_points = 1
        for values in grid.values():
            grid_points *= max(1, len(values))
        try:
            with span(
                "cluster.sweep",
                grid_points=grid_points,
                workers=args.workers,
            ):
                # Submitted inside the span: lease grants carry it as
                # remote parent, so worker job spans land in this trace.
                managed = service.submit(
                    base,
                    grid,
                    journal_path=journal,
                    resume=bool(args.resume),
                    compact_every=args.compact_every,
                )
                with local_worker_processes(
                    service.worker_address,
                    args.workers,
                    max_idle_s=args.max_idle_s,
                    threads_per_worker=(
                        None if args.threads_per_worker == 0
                        else args.threads_per_worker
                    ),
                    peer=args.peer_sync,
                    trace=args.trace,
                    log_level=args.log_level,
                ):
                    service.wait(managed.sweep_id, timeout=args.wait_timeout)
                records = service.results(managed.sweep_id)
        finally:
            service.stop()
        _emit_records(
            args,
            records,
            title=(
                f"cluster sweep: {len(records)} grid points over "
                f"{args.workers} localhost worker(s)"
            ),
        )
        return 0

    raise ValueError(f"unknown cluster command {args.cluster_command!r}")


def _cmd_telemetry(args) -> int:
    from pathlib import Path

    from repro.telemetry import write_chrome_trace

    if args.telemetry_command == "export":
        trace = Path(args.trace)
        if not trace.is_file():
            print(f"error: trace {trace} does not exist", file=sys.stderr)
            return 1
        out = args.out or str(trace.with_suffix(".chrome.json"))
        summary = write_chrome_trace(str(trace), out)
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(
                f"exported {summary['events']} span(s) from "
                f"{summary['pids']} process(es) to {summary['out']}"
            )
        return 0
    raise ValueError(f"unknown telemetry command {args.telemetry_command!r}")


def _cmd_stages(args) -> int:
    from repro.core.mapping_policy import MAPPING_POLICIES
    from repro.datasets import DATASETS
    from repro.dram.specs import DRAM_SPECS
    from repro.errors.models import ERROR_MODELS
    from repro.pipeline import default_stages

    stages = [
        {
            "name": stage.name,
            "requires": list(stage.requires),
            "provides": stage.provides,
            "config_fields": list(stage.fields),
        }
        for stage in default_stages()
    ]
    registries = {
        "datasets": list(DATASETS.names()),
        "error_models": list(ERROR_MODELS.names()),
        "mapping_policies": list(MAPPING_POLICIES.names()),
        "dram_specs": list(DRAM_SPECS.names()),
    }
    if args.json:
        print(json.dumps({"stages": stages, "registries": registries},
                         indent=2, sort_keys=True))
        return 0
    print("pipeline stages (execution order):")
    for stage in stages:
        requires = ", ".join(stage["requires"]) or "-"
        print(f"  {stage['name']:<20} requires: {requires:<22} "
              f"provides: {stage['provides']}")
    for kind, names in registries.items():
        print(f"{kind.replace('_', ' ')}: {', '.join(names)}")
    return 0


def _cmd_dram(args) -> int:
    from repro.analysis.reporting import format_table
    from repro.dram.commands import AccessCondition
    from repro.dram.energy import DramEnergyModel
    from repro.dram.specs import get_dram_spec

    spec = get_dram_spec(args.spec)
    model = DramEnergyModel(spec)
    rows = []
    for condition in AccessCondition:
        row = [condition.value]
        for v in args.voltages:
            row.append(f"{model.access_energy(condition, v).total_nj:.2f}")
        rows.append(row)
    savings = [model.energy_per_access_saving(v) for v in args.voltages]
    if args.json:
        payload = {
            "spec": spec.name,
            "voltages": list(args.voltages),
            "access_energy_nj": {
                condition.value: [
                    model.access_energy(condition, v).total_nj
                    for v in args.voltages
                ]
                for condition in AccessCondition
            },
            "per_access_savings": savings,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(format_table(
        ["condition"] + [f"{v:.3f}V [nJ]" for v in args.voltages],
        rows,
        title=f"Access energy - {spec.name}",
    ))
    nominal = spec.electrical.v_nominal_volts
    print(f"\nper-access savings vs {nominal:.3f}V: "
          + "  ".join(f"{s:.2%}" for s in savings))
    return 0


def _cmd_tolerance(args) -> int:
    from repro.core.fault_aware_training import train_baseline
    from repro.core.tolerance_analysis import analyze_error_tolerance
    from repro.datasets import load_dataset
    from repro.errors.injection import ErrorInjector
    from repro.snn.quantization import Float32Representation

    rng = np.random.default_rng(args.seed)
    dataset = load_dataset(args.dataset, args.train, args.test)
    if not args.json:
        print(f"training baseline ({args.neurons} neurons on {dataset.name})...")
    model = train_baseline(dataset, args.neurons, epochs=2, rng=rng)
    if not args.json:
        print(f"baseline accuracy: {model.accuracy:.1%}")
    injector = ErrorInjector(Float32Representation(clip_range=(0, 1)), seed=1)
    report = analyze_error_tolerance(
        model, dataset, injector, rates=args.rates,
        baseline_accuracy=model.accuracy, accuracy_bound=args.bound, rng=rng,
    )
    if args.json:
        payload = {
            "baseline_accuracy": model.accuracy,
            "curve": [{"ber": ber, "accuracy": acc} for ber, acc in report.curve],
            "ber_threshold": report.ber_threshold,
            "min_voltage": report.min_voltage(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    for ber, accuracy in report.curve:
        marker = "  <= tolerable" if report.meets_target(ber) else ""
        print(f"  BER {ber:.0e}: {accuracy:.1%}{marker}")
    print(f"maximum tolerable BER: {report.ber_threshold}")
    print(f"minimum supply voltage: {report.min_voltage():.3f} V")
    return 0


def _cmd_cache(args) -> int:
    from repro.pipeline import ArtifactStore

    if args.cache_command == "prune":
        store = ArtifactStore(args.cache_dir)
        report = store.prune(_parse_size(args.max_bytes), dry_run=args.dry_run)
        if args.json:
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        elif args.dry_run:
            print(
                f"dry run: would prune {report.removed_files} artifact(s), "
                f"freeing {report.freed_bytes} bytes; "
                f"{report.kept_files} artifact(s) "
                f"({report.kept_bytes} bytes) would remain"
            )
        else:
            print(
                f"pruned {report.removed_files} artifact(s), "
                f"freed {report.freed_bytes} bytes; "
                f"{report.kept_files} artifact(s) "
                f"({report.kept_bytes} bytes) remain"
            )
        return 0
    raise ValueError(f"unknown cache command {args.cache_command!r}")


def _cmd_lint(args) -> int:
    from pathlib import Path

    from repro.lint import Baseline, default_checkers, run_lint

    if args.root is not None:
        root = Path(args.root)
    else:
        import repro

        root = Path(repro.__file__).parent

    checkers = default_checkers()
    if args.rules:
        known = {c.rule for c in checkers}
        unknown = [r for r in args.rules if r not in known]
        if unknown:
            raise ValueError(
                f"unknown rule(s) {unknown}; available: {sorted(known)}"
            )
        checkers = tuple(c for c in checkers if c.rule in args.rules)

    baseline_path: Optional[Path] = None
    if args.baseline is not None:
        baseline_path = Path(args.baseline)
    elif Path("lint-baseline.json").is_file():
        baseline_path = Path("lint-baseline.json")

    if args.update_baseline:
        if baseline_path is None:
            baseline_path = Path("lint-baseline.json")
        report = run_lint(root, checkers=checkers)
        Baseline.from_findings(report.findings).write(baseline_path)
        if not args.json:
            print(
                f"baseline {baseline_path}: {len(report.findings)} "
                "finding(s) recorded"
            )
        return 0

    report = run_lint(
        root,
        checkers=checkers,
        baseline=baseline_path if baseline_path and baseline_path.is_file() else None,
    )
    if args.report:
        Path(args.report).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"
        )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for finding in report.findings:
            marker = "" if finding in report.new_findings else " (baselined)"
            print(f"{finding.format()}{marker}")
        summary = (
            f"lint: {report.files_scanned} file(s), "
            f"{len(report.findings)} finding(s) "
            f"({len(report.new_findings)} new, "
            f"{report.suppressed} suppressed)"
        )
        print(summary)
    if args.check and not report.ok:
        if not args.json:
            print(
                f"lint --check: {len(report.gating)} new gating finding(s)",
                file=sys.stderr,
            )
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Parse ``argv`` (default: process args) and run the subcommand."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "sweep": _cmd_sweep,
        "cluster": _cmd_cluster,
        "telemetry": _cmd_telemetry,
        "stages": _cmd_stages,
        "dram": _cmd_dram,
        "tolerance": _cmd_tolerance,
        "cache": _cmd_cache,
        "lint": _cmd_lint,
    }
    try:
        # ``telemetry export`` reuses --trace as its *input* path; for
        # every other command the shared flags switch telemetry on.
        if args.command != "telemetry" and (
            getattr(args, "log_level", None) or getattr(args, "trace", None)
        ):
            from repro.telemetry import configure_telemetry

            configure_telemetry(
                level=args.log_level, trace_path=args.trace
            )
        return handlers[args.command](args)
    except ValueError as error:
        # Config validation and registry lookups raise ValueError with
        # user-actionable messages (unknown names list the choices).
        print(f"error: {error}", file=sys.stderr)
        return 2
    except Exception as error:
        # Cluster auth/control-plane rejections carry their own
        # user-actionable message; anything else keeps its traceback.
        from repro.cluster.http_api import ServiceError
        from repro.cluster.protocol import AuthError

        if isinstance(error, (AuthError, ServiceError)):
            print(f"error: {error}", file=sys.stderr)
            return 2
        if isinstance(error, ConnectionError):
            print(
                f"error: cannot reach the service: {error}", file=sys.stderr
            )
            return 2
        raise


if __name__ == "__main__":
    sys.exit(main())

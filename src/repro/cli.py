"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``
    Execute the full SparkXD pipeline (Fig. 7) and print the summary.
``dram``
    Print the DRAM-side studies (Fig. 2b, Table I) for a device.
``tolerance``
    Train a model, analyse its error tolerance and print the curve.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np


def _add_run_parser(subparsers) -> None:
    p = subparsers.add_parser("run", help="run the full SparkXD pipeline")
    p.add_argument("--dataset", default="mnist", choices=["mnist", "fashion"])
    p.add_argument("--neurons", type=int, default=60)
    p.add_argument("--train", type=int, default=150)
    p.add_argument("--test", type=int, default=80)
    p.add_argument("--steps", type=int, default=80)
    p.add_argument("--bound", type=float, default=0.05,
                   help="accuracy bound (paper: 0.01)")
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--save-model", metavar="PATH",
                   help="write the improved model to an .npz file")


def _add_dram_parser(subparsers) -> None:
    p = subparsers.add_parser("dram", help="DRAM energy studies (no training)")
    p.add_argument(
        "--voltages", type=float, nargs="+",
        default=[1.325, 1.250, 1.175, 1.100, 1.025],
    )


def _add_tolerance_parser(subparsers) -> None:
    p = subparsers.add_parser("tolerance", help="error-tolerance analysis")
    p.add_argument("--dataset", default="mnist", choices=["mnist", "fashion"])
    p.add_argument("--neurons", type=int, default=60)
    p.add_argument("--train", type=int, default=150)
    p.add_argument("--test", type=int, default=80)
    p.add_argument("--bound", type=float, default=0.05)
    p.add_argument("--rates", type=float, nargs="+",
                   default=[1e-9, 1e-7, 1e-5, 1e-3])
    p.add_argument("--seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser with all subcommands attached."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SparkXD reproduction - resilient SNN inference on approximate DRAM",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_run_parser(subparsers)
    _add_dram_parser(subparsers)
    _add_tolerance_parser(subparsers)
    return parser


def _cmd_run(args) -> int:
    from repro import SparkXD, SparkXDConfig

    config = SparkXDConfig.small(
        dataset=args.dataset,
        n_neurons=args.neurons,
        n_train=args.train,
        n_test=args.test,
        n_steps=args.steps,
        accuracy_bound=args.bound,
        seed=args.seed,
    )
    result = SparkXD(config).run()
    print(result.summary())
    if args.save_model:
        from repro.snn.serialization import save_model

        path = save_model(result.improved_model, args.save_model)
        print(f"improved model written to {path}")
    return 0


def _cmd_dram(args) -> int:
    from repro.analysis.reporting import format_table
    from repro.dram.commands import AccessCondition
    from repro.dram.energy import DramEnergyModel
    from repro.dram.specs import LPDDR3_1600_4GB

    model = DramEnergyModel(LPDDR3_1600_4GB)
    rows = []
    for condition in AccessCondition:
        row = [condition.value]
        for v in args.voltages:
            row.append(f"{model.access_energy(condition, v).total_nj:.2f}")
        rows.append(row)
    print(format_table(
        ["condition"] + [f"{v:.3f}V [nJ]" for v in args.voltages],
        rows,
        title=f"Access energy - {LPDDR3_1600_4GB.name}",
    ))
    savings = [f"{model.energy_per_access_saving(v):.2%}" for v in args.voltages]
    print("\nper-access savings vs 1.350V: " + "  ".join(savings))
    return 0


def _cmd_tolerance(args) -> int:
    from repro.core.fault_aware_training import train_baseline
    from repro.core.tolerance_analysis import analyze_error_tolerance
    from repro.datasets import load_dataset
    from repro.errors.injection import ErrorInjector
    from repro.snn.quantization import Float32Representation

    rng = np.random.default_rng(args.seed)
    dataset = load_dataset(args.dataset, args.train, args.test)
    print(f"training baseline ({args.neurons} neurons on {dataset.name})...")
    model = train_baseline(dataset, args.neurons, epochs=2, rng=rng)
    print(f"baseline accuracy: {model.accuracy:.1%}")
    injector = ErrorInjector(Float32Representation(clip_range=(0, 1)), seed=1)
    report = analyze_error_tolerance(
        model, dataset, injector, rates=args.rates,
        baseline_accuracy=model.accuracy, accuracy_bound=args.bound, rng=rng,
    )
    for ber, accuracy in report.curve:
        marker = "  <= tolerable" if report.meets_target(ber) else ""
        print(f"  BER {ber:.0e}: {accuracy:.1%}{marker}")
    print(f"maximum tolerable BER: {report.ber_threshold}")
    print(f"minimum supply voltage: {report.min_voltage():.3f} V")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Parse ``argv`` (default: process args) and run the subcommand."""
    args = build_parser().parse_args(argv)
    handlers = {"run": _cmd_run, "dram": _cmd_dram, "tolerance": _cmd_tolerance}
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

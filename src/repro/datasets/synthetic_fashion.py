"""Procedural garment-silhouette dataset with the Fashion-MNIST interface.

The ten Fashion-MNIST classes (t-shirt, trouser, pullover, dress, coat,
sandal, shirt, sneaker, bag, ankle boot) are represented by 7×7 binary
silhouettes rendered and augmented exactly like the digit dataset.
Fashion-MNIST is the harder of the two workloads (the paper's Fig. 11b
accuracies sit well below the MNIST ones); the silhouettes here are
correspondingly more mutually confusable than the digit glyphs (several
share the torso-with-sleeves layout).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset, build_dataset, render_glyph

# Sparse outline silhouettes.  A rate-coded STDP network separates
# classes by *which* pixels are active, so the glyphs keep density near
# the digit set's (~0.35-0.45) and occupy distinct canvas regions
# (tops: upper half; shoes: lower half; trousers/coats: full height).
_CLASS_ROWS = {
    0: ("1101011", "1111111", "0100010", "0100010", "0111110", "0000000", "0000000"),  # t-shirt
    1: ("0111110", "0100010", "0100010", "0100010", "0100010", "0100010", "0100010"),  # trouser
    2: ("0011100", "1111111", "1000001", "1000001", "1111111", "0000000", "0000000"),  # pullover
    3: ("0001000", "0010100", "0010100", "0100010", "0100010", "1000001", "1111111"),  # dress
    4: ("1111111", "1000001", "1001001", "1001001", "1001001", "1000001", "1000001"),  # coat
    5: ("0000000", "0000000", "0000001", "0000110", "0011000", "1100000", "1111111"),  # sandal
    6: ("1100011", "0111110", "0001000", "0101010", "0001000", "0101010", "0111110"),  # shirt
    7: ("0000000", "0001110", "0010010", "0100010", "1111111", "0000000", "0000000"),  # sneaker
    8: ("0011100", "0100010", "1111111", "1000001", "1000001", "1111111", "0000000"),  # bag
    9: ("0110000", "0110000", "0110000", "0110000", "0111111", "0100001", "0111111"),  # ankle boot
}

CLASS_NAMES = (
    "t-shirt",
    "trouser",
    "pullover",
    "dress",
    "coat",
    "sandal",
    "shirt",
    "sneaker",
    "bag",
    "ankle-boot",
)


def fashion_bitmap(cls: int) -> np.ndarray:
    """The 7×7 binary silhouette of one garment class."""
    if cls not in _CLASS_ROWS:
        raise ValueError(f"class must be 0-9, got {cls}")
    rows = _CLASS_ROWS[cls]
    return np.array([[int(ch) for ch in row] for row in rows], dtype=np.float64)


def fashion_prototypes() -> np.ndarray:
    """Soft 28×28 prototypes of all ten garment classes."""
    return np.stack([render_glyph(fashion_bitmap(c)) for c in range(10)])


def load_synthetic_fashion(
    n_train: int = 500, n_test: int = 200, seed: int = 13
) -> Dataset:
    """A balanced procedural garment dataset (flattened, float32, [0,1])."""
    return build_dataset(
        "synthetic-fashion", fashion_prototypes(), n_train, n_test, seed
    )

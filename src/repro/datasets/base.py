"""Dataset container and the shared procedural-generation pipeline."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

IMAGE_SIDE = 28
N_PIXELS = IMAGE_SIDE * IMAGE_SIDE
N_CLASSES = 10


@dataclass(frozen=True)
class Dataset:
    """A labelled image dataset, flattened to (n, 784) float32 in [0,1]."""

    name: str
    train_images: np.ndarray
    train_labels: np.ndarray
    test_images: np.ndarray
    test_labels: np.ndarray

    def __post_init__(self):
        for images, labels, split in (
            (self.train_images, self.train_labels, "train"),
            (self.test_images, self.test_labels, "test"),
        ):
            if images.ndim != 2 or images.shape[1] != N_PIXELS:
                raise ValueError(f"{split} images must have shape (n, {N_PIXELS})")
            if labels.shape != (images.shape[0],):
                raise ValueError(f"{split} labels must align with images")
            if images.size and (images.min() < 0.0 or images.max() > 1.0):
                raise ValueError(f"{split} pixel values must lie in [0, 1]")

    @property
    def n_train(self) -> int:
        return len(self.train_labels)

    @property
    def n_test(self) -> int:
        return len(self.test_labels)

    def subset(self, n_train: int, n_test: int) -> "Dataset":
        """The first ``n_train``/``n_test`` samples of each split."""
        if n_train > self.n_train or n_test > self.n_test:
            raise ValueError("subset larger than dataset")
        return Dataset(
            name=self.name,
            train_images=self.train_images[:n_train],
            train_labels=self.train_labels[:n_train],
            test_images=self.test_images[:n_test],
            test_labels=self.test_labels[:n_test],
        )


def render_glyph(bitmap: np.ndarray, upscale: int = 4) -> np.ndarray:
    """Upscale a small binary glyph bitmap to a soft 28×28 image."""
    bitmap = np.asarray(bitmap, dtype=np.float64)
    enlarged = np.kron(bitmap, np.ones((upscale, upscale)))
    canvas = np.zeros((IMAGE_SIDE, IMAGE_SIDE))
    h, w = enlarged.shape
    if h > IMAGE_SIDE or w > IMAGE_SIDE:
        raise ValueError("glyph too large for the canvas")
    top = (IMAGE_SIDE - h) // 2
    left = (IMAGE_SIDE - w) // 2
    canvas[top : top + h, left : left + w] = enlarged
    return ndimage.gaussian_filter(canvas, sigma=0.9)


def augment(
    prototype: np.ndarray,
    rng: np.random.Generator,
    max_shift: int = 2,
    noise_scale: float = 0.05,
    intensity_range: tuple = (0.75, 1.0),
) -> np.ndarray:
    """One jittered sample from a class prototype (28×28 → 784 floats)."""
    shift_y = int(rng.integers(-max_shift, max_shift + 1))
    shift_x = int(rng.integers(-max_shift, max_shift + 1))
    image = ndimage.shift(prototype, (shift_y, shift_x), order=1, mode="constant")
    blur = float(rng.uniform(0.0, 0.6))
    if blur > 0.05:
        image = ndimage.gaussian_filter(image, sigma=blur)
    intensity = float(rng.uniform(*intensity_range))
    image = image * intensity
    image = image + rng.normal(0.0, noise_scale, image.shape)
    peak = image.max()
    if peak > 1.0:
        image = image / peak
    return np.clip(image, 0.0, 1.0).astype(np.float32).ravel()


def build_dataset(
    name: str,
    prototypes: np.ndarray,
    n_train: int,
    n_test: int,
    seed: int,
) -> Dataset:
    """Assemble a balanced dataset by augmenting per-class prototypes.

    ``prototypes`` has shape (n_classes, 28, 28).  Train and test use
    disjoint RNG streams so the splits never share samples.
    """
    if len(prototypes) != N_CLASSES:
        raise ValueError(f"need {N_CLASSES} class prototypes, got {len(prototypes)}")
    if n_train <= 0 or n_test <= 0:
        raise ValueError("n_train and n_test must be > 0")
    train_rng = np.random.default_rng(seed)
    test_rng = np.random.default_rng(seed + 1_000_003)

    def make_split(n: int, rng: np.random.Generator):
        labels = np.arange(n) % N_CLASSES
        rng.shuffle(labels)
        images = np.stack([augment(prototypes[c], rng) for c in labels])
        return images.astype(np.float32), labels.astype(np.int64)

    train_images, train_labels = make_split(n_train, train_rng)
    test_images, test_labels = make_split(n_test, test_rng)
    return Dataset(
        name=name,
        train_images=train_images,
        train_labels=train_labels,
        test_images=test_images,
        test_labels=test_labels,
    )

"""Procedural digit dataset with the MNIST interface.

Each digit class is a 7×5 glyph bitmap (classic dot-matrix font)
rendered to a soft 28×28 prototype, then augmented per sample with
translation, blur, intensity scaling and pixel noise.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset, build_dataset, render_glyph

_DIGIT_ROWS = {
    0: ("01110", "10001", "10011", "10101", "11001", "10001", "01110"),
    1: ("00100", "01100", "00100", "00100", "00100", "00100", "01110"),
    2: ("01110", "10001", "00001", "00110", "01000", "10000", "11111"),
    3: ("11110", "00001", "00001", "01110", "00001", "00001", "11110"),
    4: ("00010", "00110", "01010", "10010", "11111", "00010", "00010"),
    5: ("11111", "10000", "11110", "00001", "00001", "10001", "01110"),
    6: ("00110", "01000", "10000", "11110", "10001", "10001", "01110"),
    7: ("11111", "00001", "00010", "00100", "01000", "01000", "01000"),
    8: ("01110", "10001", "10001", "01110", "10001", "10001", "01110"),
    9: ("01110", "10001", "10001", "01111", "00001", "00010", "01100"),
}


def digit_bitmap(digit: int) -> np.ndarray:
    """The 7×5 binary glyph of one digit class."""
    if digit not in _DIGIT_ROWS:
        raise ValueError(f"digit must be 0-9, got {digit}")
    rows = _DIGIT_ROWS[digit]
    return np.array([[int(ch) for ch in row] for row in rows], dtype=np.float64)


def digit_prototypes() -> np.ndarray:
    """Soft 28×28 prototypes of all ten digit classes."""
    return np.stack([render_glyph(digit_bitmap(d)) for d in range(10)])


def load_synthetic_mnist(
    n_train: int = 500, n_test: int = 200, seed: int = 7
) -> Dataset:
    """A balanced procedural digit dataset (flattened, float32, [0,1])."""
    return build_dataset("synthetic-mnist", digit_prototypes(), n_train, n_test, seed)

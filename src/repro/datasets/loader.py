"""Unified dataset loading by name."""

from __future__ import annotations

from repro.datasets.base import Dataset
from repro.datasets.synthetic_fashion import load_synthetic_fashion
from repro.datasets.synthetic_mnist import load_synthetic_mnist

DATASET_NAMES = ("mnist", "fashion")

_ALIASES = {
    "mnist": "mnist",
    "synthetic-mnist": "mnist",
    "fashion": "fashion",
    "fashion-mnist": "fashion",
    "synthetic-fashion": "fashion",
}


def load_dataset(
    name: str, n_train: int = 500, n_test: int = 200, seed: int | None = None
) -> Dataset:
    """Load a workload by name ('mnist' or 'fashion', with aliases)."""
    key = _ALIASES.get(name.lower())
    if key is None:
        raise ValueError(f"unknown dataset {name!r}; choose from {DATASET_NAMES}")
    if key == "mnist":
        return load_synthetic_mnist(n_train, n_test, seed if seed is not None else 7)
    return load_synthetic_fashion(n_train, n_test, seed if seed is not None else 13)

"""Unified dataset loading by name, backed by the dataset registry.

New workloads plug in without touching this module::

    from repro.datasets.loader import DATASETS

    @DATASETS.register("blobs")
    def load_blobs(n_train, n_test, seed=None):
        return Dataset(...)

Registered loaders take ``(n_train, n_test, seed)`` where ``seed`` may
be ``None`` to request the workload's default seed.
"""

from __future__ import annotations

from repro.datasets.base import Dataset
from repro.datasets.synthetic_fashion import load_synthetic_fashion
from repro.datasets.synthetic_mnist import load_synthetic_mnist
from repro.registry import Registry

DATASETS = Registry("dataset")


@DATASETS.register("mnist", aliases=("synthetic-mnist",))
def _load_mnist(n_train: int, n_test: int, seed: int | None) -> Dataset:
    return load_synthetic_mnist(n_train, n_test, seed if seed is not None else 7)


@DATASETS.register("fashion", aliases=("fashion-mnist", "synthetic-fashion"))
def _load_fashion(n_train: int, n_test: int, seed: int | None) -> Dataset:
    return load_synthetic_fashion(n_train, n_test, seed if seed is not None else 13)


def dataset_names() -> tuple:
    """Currently registered workload names."""
    return DATASETS.names()


#: Kept (in historical order) for backward compatibility with the seed
#: API; prefer :func:`dataset_names` which reflects live registrations.
DATASET_NAMES = ("mnist", "fashion")


def load_dataset(
    name: str, n_train: int = 500, n_test: int = 200, seed: int | None = None
) -> Dataset:
    """Load a workload by registered name (e.g. 'mnist', with aliases)."""
    loader = DATASETS.get(name)
    return loader(n_train, n_test, seed)

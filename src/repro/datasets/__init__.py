"""Synthetic workloads standing in for MNIST and Fashion-MNIST.

The paper evaluates on MNIST and Fashion-MNIST (Section V).  This
environment has no network access, so the real archives cannot be
downloaded; instead we generate *procedural* 28×28 10-class datasets
with the same shapes, value range and API:

- :func:`load_synthetic_mnist` — stroke-rendered digit glyphs with
  per-sample jitter (translation, thickness, noise, intensity);
- :func:`load_synthetic_fashion` — garment silhouettes with the same
  augmentation pipeline.

Every accuracy trend the paper reports depends on *class structure*
(weight corruption scrambles learned receptive fields; fault-aware
training restores robustness), not on natural-image statistics, so
these stand-ins preserve the experiments' behaviour.  See DESIGN.md.
"""

from repro.datasets.base import Dataset
from repro.datasets.synthetic_mnist import load_synthetic_mnist
from repro.datasets.synthetic_fashion import load_synthetic_fashion
from repro.datasets.loader import load_dataset, dataset_names, DATASETS, DATASET_NAMES

__all__ = [
    "Dataset",
    "load_synthetic_mnist",
    "load_synthetic_fashion",
    "load_dataset",
    "dataset_names",
    "DATASETS",
    "DATASET_NAMES",
]

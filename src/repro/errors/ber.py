"""Bit error rate as a function of DRAM supply voltage.

Substitutes for the real reduced-voltage characterisation the paper
borrows from Chang et al.: the only properties the experiments rely on
are (1) zero errors at the nominal voltage, (2) a *monotonically
decreasing* BER as the voltage rises, and (3) the span of Fig. 2(c) —
roughly 10⁻⁸ near the top of the reduced range down at 1.325 V and
growing toward 10⁻³…10⁻² at 1.025 V.

The curve interpolates log10(BER) piecewise-linearly through anchor
points, which both matches the straight-ish line of Fig. 2(c) on its
log axis and keeps the mapping exactly invertible for tests.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class BerVoltageCurve:
    """Piecewise log-linear BER(V) with a hard zero at/above ``v_safe``.

    Parameters
    ----------
    anchors:
        ``(voltage, ber)`` pairs, strictly increasing in voltage and
        strictly decreasing in BER.  Voltages above the largest anchor
        but below ``v_safe`` extrapolate the last segment.
    v_safe:
        At or above this supply voltage the DRAM is accurate: BER = 0.
    """

    anchors: Tuple[Tuple[float, float], ...]
    v_safe: float = 1.35

    def __post_init__(self):
        if len(self.anchors) < 2:
            raise ValueError("need at least two anchors")
        volts = [v for v, _ in self.anchors]
        bers = [b for _, b in self.anchors]
        if any(b <= 0 for b in bers):
            raise ValueError("anchor BERs must be > 0 (v_safe handles the zero)")
        if sorted(volts) != volts or len(set(volts)) != len(volts):
            raise ValueError("anchor voltages must be strictly increasing")
        if sorted(bers, reverse=True) != bers or len(set(bers)) != len(bers):
            raise ValueError("anchor BERs must be strictly decreasing")
        if volts[-1] >= self.v_safe:
            raise ValueError("all anchors must lie below v_safe")

    # ------------------------------------------------------------------
    def ber_at(self, v_supply: float) -> float:
        """BER of the device operated at ``v_supply``."""
        if v_supply <= 0:
            raise ValueError(f"v_supply must be > 0, got {v_supply}")
        if v_supply >= self.v_safe:
            return 0.0
        volts = [v for v, _ in self.anchors]
        logs = [np.log10(b) for _, b in self.anchors]
        if v_supply <= volts[0]:
            # extrapolate the first segment below the measured range
            i0, i1 = 0, 1
        elif v_supply >= volts[-1]:
            i0, i1 = len(volts) - 2, len(volts) - 1
        else:
            i1 = bisect.bisect_right(volts, v_supply)
            i0 = i1 - 1
        slope = (logs[i1] - logs[i0]) / (volts[i1] - volts[i0])
        log_ber = logs[i0] + slope * (v_supply - volts[i0])
        return float(10.0 ** log_ber)

    def ber_array(self, v_supplies: Sequence[float]) -> np.ndarray:
        return np.array([self.ber_at(v) for v in v_supplies])

    # ------------------------------------------------------------------
    def voltage_for_ber(self, ber: float) -> float:
        """Lowest voltage whose BER does not exceed ``ber`` (inverse map).

        Returns ``v_safe`` for ``ber <= 0``.
        """
        if ber <= 0:
            return self.v_safe
        volts = [v for v, _ in self.anchors]
        logs = [np.log10(b) for _, b in self.anchors]
        target = np.log10(ber)
        if target >= logs[0]:
            i0, i1 = 0, 1
        elif target <= logs[-1]:
            i0, i1 = len(volts) - 2, len(volts) - 1
        else:
            # logs decrease with index; find the segment bracketing target
            i1 = next(i for i in range(1, len(logs)) if logs[i] <= target)
            i0 = i1 - 1
        slope = (logs[i1] - logs[i0]) / (volts[i1] - volts[i0])
        v = volts[i0] + (target - logs[i0]) / slope
        return float(min(v, self.v_safe))


#: Anchors chosen to match the evaluated voltage corners of the paper:
#: the five reduced supplies of Fig. 12(a) map onto the BER decades the
#: accuracy study of Fig. 11 sweeps (10⁻⁹ … 10⁻³).
DEFAULT_BER_CURVE = BerVoltageCurve(
    anchors=(
        (1.025, 1e-3),
        (1.100, 1e-5),
        (1.175, 1e-6),
        (1.250, 1e-7),
        (1.325, 1e-9),
    ),
    v_safe=1.35,
)

"""Bit-level views and bit flipping for stored weight representations.

DRAM errors flip individual *bits* of whatever is stored.  The SNN stores
synaptic weights either as IEEE-754 float32 (the paper's FP32 evaluation)
or as fixed-point integers (INT8/INT16).  This module provides exact,
vectorised bit views and XOR-based flipping for both.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def float32_to_bits(values: np.ndarray) -> np.ndarray:
    """Reinterpret a float32 array as its uint32 bit patterns (no copy)."""
    arr = np.ascontiguousarray(values, dtype=np.float32)
    return arr.view(np.uint32)


def bits_to_float32(bits: np.ndarray) -> np.ndarray:
    """Reinterpret a uint32 array as float32 values (no copy)."""
    arr = np.ascontiguousarray(bits, dtype=np.uint32)
    return arr.view(np.float32)


def int8_to_bits(values: np.ndarray) -> np.ndarray:
    """Reinterpret an int8 array as uint8 bit patterns (no copy)."""
    arr = np.ascontiguousarray(values, dtype=np.int8)
    return arr.view(np.uint8)


def bits_to_int8(bits: np.ndarray) -> np.ndarray:
    """Reinterpret a uint8 bit-pattern array as int8 values (no copy)."""
    arr = np.ascontiguousarray(bits, dtype=np.uint8)
    return arr.view(np.int8)


def _flip(
    words: np.ndarray,
    word_indices: np.ndarray,
    bit_positions: np.ndarray,
    word_bits: int,
) -> np.ndarray:
    """XOR single bits into a flat word array (out-of-place)."""
    word_indices = np.asarray(word_indices, dtype=np.int64)
    bit_positions = np.asarray(bit_positions, dtype=np.int64)
    if word_indices.shape != bit_positions.shape:
        raise ValueError("word_indices and bit_positions must align")
    if word_indices.size and (
        word_indices.min() < 0 or word_indices.max() >= words.size
    ):
        raise IndexError("word index out of range")
    if bit_positions.size and (
        bit_positions.min() < 0 or bit_positions.max() >= word_bits
    ):
        raise IndexError(f"bit position out of range [0, {word_bits})")
    out = words.copy()
    # The same word may be hit more than once; XOR must accumulate, so we
    # fold duplicate word hits into one combined mask first.
    masks = (np.uint64(1) << bit_positions.astype(np.uint64)).astype(words.dtype)
    combined = np.zeros_like(words)
    np.bitwise_xor.at(combined, word_indices, masks)
    out ^= combined
    return out


def flip_bits_float32(
    values: np.ndarray, flat_bit_indices: np.ndarray
) -> np.ndarray:
    """Flip the given flat bit indices of a float32 array.

    Bit ``i`` addresses bit ``i % 32`` of element ``i // 32`` in the
    flattened array.  Returns a new array with the original shape.
    """
    flat = np.ravel(np.asarray(values, dtype=np.float32)).copy()
    bits = flat.view(np.uint32)
    idx = np.asarray(flat_bit_indices, dtype=np.int64)
    flipped = _flip(bits, idx // 32, idx % 32, 32)
    return flipped.view(np.float32).reshape(np.shape(values))


def flip_bits_int8(values: np.ndarray, flat_bit_indices: np.ndarray) -> np.ndarray:
    """Flip the given flat bit indices of an int8 array (8 bits/element)."""
    flat = np.ravel(np.asarray(values, dtype=np.int8)).copy()
    bits = flat.view(np.uint8)
    idx = np.asarray(flat_bit_indices, dtype=np.int64)
    flipped = _flip(bits, idx // 8, idx % 8, 8)
    return flipped.view(np.int8).reshape(np.shape(values))


def flip_bits_uint(
    words: np.ndarray, flat_bit_indices: np.ndarray, word_bits: int
) -> np.ndarray:
    """Flip flat bit indices of an unsigned integer word array."""
    flat = np.ravel(words).copy()
    idx = np.asarray(flat_bit_indices, dtype=np.int64)
    flipped = _flip(flat, idx // word_bits, idx % word_bits, word_bits)
    return flipped.reshape(np.shape(words))


def popcount_difference(a: np.ndarray, b: np.ndarray) -> int:
    """Number of differing bits between two same-dtype integer arrays."""
    if a.shape != b.shape or a.dtype != b.dtype:
        raise ValueError("arrays must share shape and dtype")
    xor = np.bitwise_xor(a, b)
    # unpackbits requires uint8: view the words bytewise.
    return int(np.unpackbits(xor.view(np.uint8)).sum())


def msb_positions(word_bits: int, count: int) -> Tuple[int, ...]:
    """The ``count`` most significant bit positions of a word."""
    if not 0 < count <= word_bits:
        raise ValueError(f"count must be in [1, {word_bits}]")
    return tuple(range(word_bits - 1, word_bits - 1 - count, -1))

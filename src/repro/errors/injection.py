"""Bit-error injection into DRAM-resident synaptic weights.

This is the "Error Generator & Injection" box of the paper's toolflow
(Fig. 10): given the weights, their storage representation, where each
weight lives in DRAM, and the per-location error rates, it flips the
corresponding stored bits and returns the corrupted weights.

Two operating modes cover the paper's uses:

- **uniform** (training, Section IV-B Steps 1-2): one device-level BER,
  Error Model-0, baseline sequential mapping — every stored bit is
  equally likely to flip;
- **per-subarray** (mapping evaluation, Section IV-D): each weight is
  assigned to a subarray with its own error rate; flips are sampled
  region by region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors.models import BitContext, ErrorModel, ErrorModel0


@dataclass(frozen=True)
class InjectionReport:
    """What one injection pass actually did."""

    total_bits: int
    flipped_bits: int
    requested_ber: float
    per_region_flips: Dict[int, int] = field(default_factory=dict)

    @property
    def achieved_ber(self) -> float:
        return self.flipped_bits / self.total_bits if self.total_bits else 0.0


class ErrorInjector:
    """Injects DRAM bit errors into a weight tensor.

    Parameters
    ----------
    representation:
        A weight representation from :mod:`repro.snn.quantization`
        (``encode``/``decode``/``bits_per_weight``/``flip_bits``).
    model:
        One of the Section III error models; defaults to Model-0, which
        is what SparkXD uses.
    lane_bits:
        Number of distinct bitlines a slot spans (used to derive each
        bit's bitline index for Model-1).
    row_bits:
        Bits per DRAM row (used to derive wordline indices for Model-2).
    seed:
        Seed for the flip sampling stream.  Each call to
        :meth:`inject` advances the stream unless an explicit ``rng``
        is supplied.
    """

    def __init__(
        self,
        representation,
        model: Optional[ErrorModel] = None,
        lane_bits: int = 64,
        row_bits: int = 65536,
        seed: Optional[int] = None,
    ):
        if lane_bits <= 0 or row_bits <= 0:
            raise ValueError("lane_bits and row_bits must be > 0")
        self.representation = representation
        self.model = model or ErrorModel0()
        self.lane_bits = lane_bits
        self.row_bits = row_bits
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def inject_uniform(
        self,
        weights: np.ndarray,
        ber: float,
        rng: Optional[np.random.Generator] = None,
    ) -> Tuple[np.ndarray, InjectionReport]:
        """Flip stored bits with one uniform BER (training mode)."""
        n = int(np.size(weights))
        return self.inject_by_region(
            weights,
            region_of_weight=np.zeros(n, dtype=np.int64),
            region_rates=np.array([ber], dtype=float),
            rng=rng,
        )

    def inject_stack(
        self,
        weights: np.ndarray,
        bers,
        n_realizations: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> Tuple[np.ndarray, List[InjectionReport]]:
        """Produce a stack of independently corrupted weight copies.

        The E-axis the batched engine consumes in one call: for every
        BER in ``bers`` (a scalar or a sequence), ``n_realizations``
        independent error masks are sampled, giving a stack of shape
        ``(len(bers) * n_realizations, *weights.shape)`` in BER-major
        order (all realizations of ``bers[0]`` first).  Random draws
        happen in exactly that order from ``rng`` (or the injector's own
        stream), so the stack matches an equivalent sequence of
        :meth:`inject_uniform` calls bit for bit.

        Returns ``(stack, reports)`` with one
        :class:`InjectionReport` per stack entry.
        """
        if n_realizations <= 0:
            raise ValueError(f"n_realizations must be > 0, got {n_realizations}")
        bers = np.atleast_1d(np.asarray(bers, dtype=float))
        if bers.ndim != 1 or bers.size == 0:
            raise ValueError("bers must be a scalar or a non-empty 1-D sequence")
        weights = np.asarray(weights)
        stack = np.empty((bers.size * n_realizations,) + weights.shape, dtype=np.float64)
        reports: List[InjectionReport] = []
        index = 0
        for ber in bers:
            for _ in range(n_realizations):
                corrupted, report = self.inject_uniform(weights, float(ber), rng=rng)
                stack[index] = corrupted
                reports.append(report)
                index += 1
        return stack, reports

    def inject_by_region(
        self,
        weights: np.ndarray,
        region_of_weight: np.ndarray,
        region_rates: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> Tuple[np.ndarray, InjectionReport]:
        """Flip stored bits with per-region (e.g. per-subarray) rates.

        ``region_of_weight[i]`` is the region index of flattened weight
        ``i``; ``region_rates[r]`` is region ``r``'s bit error rate.
        Returns ``(corrupted_weights, report)``; the input is untouched.
        """
        rng = rng if rng is not None else self._rng
        weights = np.asarray(weights)
        flat_shape = weights.shape
        n_weights = int(weights.size)
        region_of_weight = np.asarray(region_of_weight, dtype=np.int64).ravel()
        if region_of_weight.shape != (n_weights,):
            raise ValueError(
                f"region_of_weight must have one entry per weight "
                f"({n_weights}), got {region_of_weight.shape}"
            )
        region_rates = np.asarray(region_rates, dtype=float)
        if region_of_weight.size and (
            region_of_weight.min() < 0 or region_of_weight.max() >= region_rates.size
        ):
            raise IndexError("region index out of range of region_rates")
        if np.any(region_rates < 0) or np.any(region_rates > 1):
            raise ValueError("region rates must lie in [0, 1]")

        rep = self.representation
        bpw = rep.bits_per_weight
        words = rep.encode(weights)
        words_flat = np.ravel(words)

        all_flips: list[np.ndarray] = []
        per_region: Dict[int, int] = {}
        mean_rate = 0.0
        for region in np.unique(region_of_weight):
            rate = float(region_rates[region])
            members = np.flatnonzero(region_of_weight == region)
            n_bits = members.size * bpw
            mean_rate += rate * n_bits
            context = self._context_for(words_flat, members, bpw, rate)
            local_flips = self.model.sample_flips(context, rng)
            per_region[int(region)] = int(local_flips.size)
            if local_flips.size:
                # local bit index -> (member weight, bit) -> global bit index
                member_idx = members[local_flips // bpw]
                global_bits = member_idx * bpw + (local_flips % bpw)
                all_flips.append(global_bits)

        total_bits = n_weights * bpw
        if all_flips:
            flat_bits = np.concatenate(all_flips)
            corrupted_words = rep.flip_bits(words_flat, flat_bits)
        else:
            flat_bits = np.empty(0, dtype=np.int64)
            corrupted_words = words_flat
        corrupted = rep.decode(corrupted_words).reshape(flat_shape)
        report = InjectionReport(
            total_bits=total_bits,
            flipped_bits=int(flat_bits.size),
            requested_ber=mean_rate / total_bits if total_bits else 0.0,
            per_region_flips=per_region,
        )
        return corrupted, report

    # ------------------------------------------------------------------
    def _context_for(
        self,
        words_flat: np.ndarray,
        members: np.ndarray,
        bpw: int,
        rate: float,
    ) -> BitContext:
        """Build the BitContext one region's bits present to the model."""
        n_bits = members.size * bpw
        fields = getattr(self.model, "context_fields", ())
        needs_lanes = "bitline_of" in fields
        needs_rows = "wordline_of" in fields
        needs_values = "values" in fields
        bitline_of = wordline_of = values = None
        if needs_lanes or needs_rows:
            # Bits of consecutive member weights stream into consecutive
            # DRAM columns; lane = position within the column width,
            # wordline advances every row_bits bits.
            positions = np.arange(n_bits, dtype=np.int64)
            if needs_lanes:
                bitline_of = positions % self.lane_bits
            if needs_rows:
                wordline_of = positions // self.row_bits
        if needs_values:
            member_words = words_flat[members].astype(np.uint64)
            shifts = np.arange(bpw, dtype=np.uint64)
            values = ((member_words[:, None] >> shifts[None, :]) & 1).astype(
                np.uint8
            ).ravel()
        return BitContext(
            n_bits=n_bits,
            base_rate=rate,
            bitline_of=bitline_of,
            wordline_of=wordline_of,
            values=values,
        )

"""Approximate-DRAM error modelling and bit-level error injection.

Implements the probabilistic error models of the paper's Section III
(Error Models 0–3, following the EDEN characterisation of real
reduced-voltage DRAM), a BER-versus-supply-voltage curve with the shape
of Fig. 2(c), per-subarray weak-cell profiles, and the machinery to flip
bits of synaptic weights according to where they live in DRAM.
"""

from repro.errors.ber import BerVoltageCurve, DEFAULT_BER_CURVE
from repro.errors.bitops import (
    flip_bits_float32,
    flip_bits_int8,
    float32_to_bits,
    bits_to_float32,
)
from repro.errors.weak_cells import SubarrayErrorProfile, WeakCellMap
from repro.errors.models import (
    ErrorModel,
    ErrorModel0,
    ErrorModel1,
    ErrorModel2,
    ErrorModel3,
    ERROR_MODELS,
    make_error_model,
)
from repro.errors.injection import ErrorInjector, InjectionReport
from repro.errors.ecc import (
    EccProtectedRepresentation,
    ECC_OVERHEAD,
    decode_words,
    encode_words,
)

__all__ = [
    "EccProtectedRepresentation",
    "ECC_OVERHEAD",
    "decode_words",
    "encode_words",
    "BerVoltageCurve",
    "DEFAULT_BER_CURVE",
    "flip_bits_float32",
    "flip_bits_int8",
    "float32_to_bits",
    "bits_to_float32",
    "SubarrayErrorProfile",
    "WeakCellMap",
    "ErrorModel",
    "ErrorModel0",
    "ErrorModel1",
    "ErrorModel2",
    "ErrorModel3",
    "ERROR_MODELS",
    "make_error_model",
    "ErrorInjector",
    "InjectionReport",
]

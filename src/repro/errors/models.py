"""The four probabilistic error models of Section III.

All four models follow the EDEN characterisation of real approximate
DRAM.  Each one answers the same question — *which stored bits flip?* —
but with a different spatial structure:

- **Model-0** — uniform random across a DRAM bank.  The product of the
  weak-cell density and the per-weak-cell failure probability is the bit
  error rate; every bit is equally likely to flip.
- **Model-1** — *vertical* structure: error probability varies per
  **bitline**; weak bitlines concentrate the flips.
- **Model-2** — *horizontal* structure: error probability varies per
  **wordline** (row).
- **Model-3** — *data-dependent*: uniform random, but bits currently
  holding ``1`` fail with a different probability than bits holding
  ``0`` (true-cell vs anti-cell asymmetry).

SparkXD itself uses Model-0 (fast software injection, good approximation
of the others — Section III), but all four are implemented so the
ablation benchmark can compare them.

Every model receives a :class:`BitContext` describing the bits of one
*region* that shares a base error rate (in practice: the bits mapped to
one subarray), and returns the flat indices of the bits that flip.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.registry import Registry


@dataclass(frozen=True)
class BitContext:
    """Bits of one equal-base-rate region, with their DRAM geometry.

    ``n_bits`` bits are indexed ``0 … n_bits-1`` in data order.
    ``bitline_of`` / ``wordline_of`` give each bit's physical lane and
    row; the injector derives them from the mapping.  ``values`` is the
    current content of each bit (only required by Model-3).
    """

    n_bits: int
    base_rate: float
    bitline_of: Optional[np.ndarray] = None
    wordline_of: Optional[np.ndarray] = None
    values: Optional[np.ndarray] = None

    def __post_init__(self):
        if self.n_bits < 0:
            raise ValueError(f"n_bits must be >= 0, got {self.n_bits}")
        if not 0.0 <= self.base_rate <= 1.0:
            raise ValueError(f"base_rate must be in [0, 1], got {self.base_rate}")
        for name in ("bitline_of", "wordline_of", "values"):
            arr = getattr(self, name)
            if arr is not None and arr.shape != (self.n_bits,):
                raise ValueError(f"{name} must have shape ({self.n_bits},)")


class ErrorModel(abc.ABC):
    """Base class: sample the flat indices of flipped bits in a region."""

    name: str = "base"
    #: Optional :class:`BitContext` fields this model reads
    #: (``"bitline_of"``, ``"wordline_of"``, ``"values"``).  The
    #: injector only materialises what the model declares.
    context_fields: tuple = ()

    @abc.abstractmethod
    def sample_flips(self, context: BitContext, rng: np.random.Generator) -> np.ndarray:
        """Return sorted unique flat bit indices that flip."""

    @staticmethod
    def _binomial_positions(
        n_bits: int, rate: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw Binomial(n, p) flip count, then uniform distinct positions.

        Exactly equivalent to n independent Bernoulli draws but O(count)
        instead of O(n) for the small rates the paper sweeps (10⁻⁹…10⁻³).
        """
        if n_bits == 0 or rate <= 0.0:
            return np.empty(0, dtype=np.int64)
        if rate >= 1.0:
            return np.arange(n_bits, dtype=np.int64)
        count = rng.binomial(n_bits, rate)
        if count == 0:
            return np.empty(0, dtype=np.int64)
        return np.sort(rng.choice(n_bits, size=count, replace=False).astype(np.int64))


class ErrorModel0(ErrorModel):
    """Uniform random errors across the bank (the model SparkXD uses)."""

    name = "model0"

    def sample_flips(self, context: BitContext, rng: np.random.Generator) -> np.ndarray:
        return self._binomial_positions(context.n_bits, context.base_rate, rng)


class _StructuredModel(ErrorModel):
    """Shared machinery for per-bitline / per-wordline severity.

    Severity factors for each structural unit are drawn lazily per unit
    id from a deterministic per-model stream, then normalised so the
    *mean* error rate stays equal to the base rate (the structure
    redistributes errors, it does not add them).
    """

    def __init__(self, sigma: float = 1.0, structure_seed: int = 0):
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        self.sigma = sigma
        self.structure_seed = structure_seed

    def _unit_factors(self, unit_ids: np.ndarray) -> np.ndarray:
        """Deterministic lognormal severity per structural unit id."""
        unique = np.unique(unit_ids)
        rng = np.random.default_rng(self.structure_seed)
        # Draw enough factors to cover the largest unit id seen.
        factors = rng.lognormal(mean=0.0, sigma=self.sigma, size=int(unique.max()) + 1)
        per_bit = factors[unit_ids]
        mean = per_bit.mean()
        return per_bit / mean if mean > 0 else per_bit

    def _structured_flips(
        self, context: BitContext, unit_ids: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        if context.n_bits == 0 or context.base_rate <= 0:
            return np.empty(0, dtype=np.int64)
        probabilities = np.clip(
            context.base_rate * self._unit_factors(unit_ids), 0.0, 1.0
        )
        # Thinning: draw from the max rate, then accept proportionally.
        p_max = float(probabilities.max())
        candidates = self._binomial_positions(context.n_bits, p_max, rng)
        if candidates.size == 0:
            return candidates
        accept = rng.random(candidates.size) < probabilities[candidates] / p_max
        return candidates[accept]


class ErrorModel1(_StructuredModel):
    """Vertical distribution: severity varies across bitlines."""

    name = "model1"
    context_fields = ("bitline_of",)

    def sample_flips(self, context: BitContext, rng: np.random.Generator) -> np.ndarray:
        if context.bitline_of is None:
            raise ValueError("ErrorModel1 requires BitContext.bitline_of")
        return self._structured_flips(context, context.bitline_of, rng)


class ErrorModel2(_StructuredModel):
    """Horizontal distribution: severity varies across wordlines."""

    name = "model2"
    context_fields = ("wordline_of",)

    def sample_flips(self, context: BitContext, rng: np.random.Generator) -> np.ndarray:
        if context.wordline_of is None:
            raise ValueError("ErrorModel2 requires BitContext.wordline_of")
        return self._structured_flips(context, context.wordline_of, rng)


class ErrorModel3(ErrorModel):
    """Data-dependent errors: ``1`` bits and ``0`` bits fail differently.

    ``one_to_zero_ratio`` is the relative failure likelihood of a bit
    holding 1 versus a bit holding 0.  Rates are scaled so that the
    overall expected BER equals the base rate on balanced data.
    """

    name = "model3"
    context_fields = ("values",)

    def __init__(self, one_to_zero_ratio: float = 4.0):
        if one_to_zero_ratio <= 0:
            raise ValueError(f"ratio must be > 0, got {one_to_zero_ratio}")
        self.one_to_zero_ratio = one_to_zero_ratio

    def sample_flips(self, context: BitContext, rng: np.random.Generator) -> np.ndarray:
        if context.values is None:
            raise ValueError("ErrorModel3 requires BitContext.values")
        if context.n_bits == 0 or context.base_rate <= 0:
            return np.empty(0, dtype=np.int64)
        r = self.one_to_zero_ratio
        p_one = min(1.0, context.base_rate * 2.0 * r / (r + 1.0))
        p_zero = min(1.0, context.base_rate * 2.0 / (r + 1.0))
        ones = np.flatnonzero(context.values != 0)
        zeros = np.flatnonzero(context.values == 0)
        pick_ones = self._binomial_positions(ones.size, p_one, rng)
        pick_zeros = self._binomial_positions(zeros.size, p_zero, rng)
        flips = np.concatenate([ones[pick_ones], zeros[pick_zeros]])
        return np.sort(flips.astype(np.int64))


class ErrorModelEden(_StructuredModel):
    """EDEN-style composite variant: row severity × cell asymmetry.

    The EDEN characterisation observes that real reduced-voltage DRAM
    combines *both* spatial structure (weak rows concentrate failures)
    and data dependence (true-cells holding ``1`` fail more often than
    anti-cells holding ``0``).  This model composes Model-2's
    per-wordline lognormal severity with Model-3's value asymmetry,
    normalised so the expected BER on balanced data stays at the base
    rate — structure redistributes errors, it does not add them.
    """

    name = "eden"
    context_fields = ("wordline_of", "values")

    def __init__(
        self,
        sigma: float = 0.6,
        structure_seed: int = 0,
        one_to_zero_ratio: float = 4.0,
    ):
        super().__init__(sigma=sigma, structure_seed=structure_seed)
        if one_to_zero_ratio <= 0:
            raise ValueError(f"ratio must be > 0, got {one_to_zero_ratio}")
        self.one_to_zero_ratio = one_to_zero_ratio

    def sample_flips(self, context: BitContext, rng: np.random.Generator) -> np.ndarray:
        if context.wordline_of is None:
            raise ValueError("ErrorModelEden requires BitContext.wordline_of")
        if context.values is None:
            raise ValueError("ErrorModelEden requires BitContext.values")
        if context.n_bits == 0 or context.base_rate <= 0:
            return np.empty(0, dtype=np.int64)
        r = self.one_to_zero_ratio
        value_factor = np.where(
            context.values != 0, 2.0 * r / (r + 1.0), 2.0 / (r + 1.0)
        )
        probabilities = np.clip(
            context.base_rate
            * self._unit_factors(context.wordline_of)
            * value_factor,
            0.0,
            1.0,
        )
        # Thinning: draw from the max rate, then accept proportionally.
        p_max = float(probabilities.max())
        candidates = self._binomial_positions(context.n_bits, p_max, rng)
        if candidates.size == 0:
            return candidates
        accept = rng.random(candidates.size) < probabilities[candidates] / p_max
        return candidates[accept]


#: Registry of the Section III error models; new spatial structures
#: plug in with ``@ERROR_MODELS.register("model4")`` and are then
#: constructible by name everywhere (CLI, sweeps, ablations).
ERROR_MODELS = Registry("error model")
ERROR_MODELS.register("model0", ErrorModel0, aliases=("uniform",))
ERROR_MODELS.register("model1", ErrorModel1, aliases=("bitline", "vertical"))
ERROR_MODELS.register("model2", ErrorModel2, aliases=("wordline", "horizontal"))
ERROR_MODELS.register("model3", ErrorModel3, aliases=("data-dependent",))
ERROR_MODELS.register("eden", ErrorModelEden, aliases=("model4", "eden-composite"))


def make_error_model(name: str, **kwargs) -> ErrorModel:
    """Construct an error model by its paper name ('model0' … 'model3')."""
    key = name.lower().replace("-", "").replace("_", "").replace("errormodel", "model")
    if key not in ERROR_MODELS:
        key = name
    return ERROR_MODELS.get(key)(**kwargs)

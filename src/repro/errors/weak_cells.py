"""Weak-cell profiles: spatial variation of error rates across subarrays.

Real reduced-voltage DRAM error rates are *spatially non-uniform*: some
subarrays contain more weak cells (cells that fail when timing/voltage
margins shrink) than others.  SparkXD's mapping (Section IV-D) exploits
exactly this: subarrays whose error rate exceeds the tolerable BER are
skipped, the rest store weights.

:class:`WeakCellMap` draws a per-subarray *relative severity* factor from
a lognormal distribution (mean 1 across the device), seeded and
reproducible.  Multiplying by the device-level BER(V) from
:mod:`repro.errors.ber` yields the per-subarray error rates that the
paper's Algorithm 2 consumes (``subarray_rate``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dram.organization import DramOrganization
from repro.errors.ber import BerVoltageCurve, DEFAULT_BER_CURVE


class WeakCellMap:
    """Per-subarray relative weak-cell severity for one physical device.

    Parameters
    ----------
    organization:
        The device whose subarrays are being profiled.
    sigma:
        Log-space standard deviation of the severity factors.  ``0``
        gives a perfectly uniform device; ``~0.8`` gives the order-of-
        magnitude spread real devices show.
    seed:
        Seed of the per-device profile ("manufacturing randomness").
    """

    def __init__(
        self,
        organization: DramOrganization,
        sigma: float = 0.8,
        seed: int = 0,
    ):
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        self.organization = organization
        self.sigma = sigma
        self.seed = seed
        rng = np.random.default_rng(seed)
        n = organization.total_subarrays
        if sigma == 0:
            factors = np.ones(n)
        else:
            factors = rng.lognormal(mean=0.0, sigma=sigma, size=n)
            factors /= factors.mean()  # keep the device-level BER unbiased
        self.severity = factors

    def profile_at(self, v_supply: float, curve: BerVoltageCurve = DEFAULT_BER_CURVE) -> "SubarrayErrorProfile":
        """Per-subarray error rates at one supply voltage."""
        device_ber = curve.ber_at(v_supply)
        rates = np.clip(self.severity * device_ber, 0.0, 1.0)
        return SubarrayErrorProfile(
            organization=self.organization,
            v_supply=v_supply,
            device_ber=device_ber,
            rates=rates,
        )


@dataclass(frozen=True)
class SubarrayErrorProfile:
    """Error rate of every subarray at one operating voltage.

    ``rates[i]`` is the bit error rate of the subarray with flat index
    ``i`` (see :meth:`repro.dram.organization.DramOrganization.subarray_index`).
    """

    organization: DramOrganization
    v_supply: float
    device_ber: float
    rates: np.ndarray

    def __post_init__(self):
        if self.rates.shape != (self.organization.total_subarrays,):
            raise ValueError(
                f"rates must have one entry per subarray "
                f"({self.organization.total_subarrays}), got {self.rates.shape}"
            )
        if np.any(self.rates < 0) or np.any(self.rates > 1):
            raise ValueError("subarray rates must lie in [0, 1]")

    def safe_mask(self, ber_threshold: float) -> np.ndarray:
        """Boolean mask of subarrays with rate <= the tolerable BER."""
        return self.rates <= ber_threshold

    def safe_fraction(self, ber_threshold: float) -> float:
        return float(self.safe_mask(ber_threshold).mean())

    def rate_of(self, subarray_index: int) -> float:
        return float(self.rates[subarray_index])

    def mean_rate(self) -> float:
        return float(self.rates.mean())

"""Statistical validation of the error models.

Section III justifies Error Model-0 by its similarity to real
approximate-DRAM error patterns.  These utilities quantify the
statistical properties each model is supposed to have, so the claim is
testable in this reproduction:

- :func:`uniformity_pvalue` — chi-square test that Model-0's flips are
  uniform over the bit space;
- :func:`structure_score` — how concentrated flips are along a given
  structural axis (bitlines for Model-1, wordlines for Model-2),
  normalised against the uniform expectation;
- :func:`data_dependence_ratio` — observed 1-bit vs 0-bit failure
  ratio for Model-3.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.errors.models import BitContext, ErrorModel


def sample_flip_positions(
    model: ErrorModel,
    n_bits: int,
    ber: float,
    rng: np.random.Generator,
    lane_bits: int = 64,
    row_bits: int = 4096,
    values: np.ndarray | None = None,
) -> np.ndarray:
    """Draw one flip set from a model over a synthetic bit space."""
    positions = np.arange(n_bits, dtype=np.int64)
    context = BitContext(
        n_bits=n_bits,
        base_rate=ber,
        bitline_of=positions % lane_bits,
        wordline_of=positions // row_bits,
        values=values,
    )
    return model.sample_flips(context, rng)


def uniformity_pvalue(
    flips: np.ndarray, n_bits: int, n_buckets: int = 16
) -> float:
    """Chi-square p-value that flips are uniform over the bit space.

    High p-values (>> 0.01) are consistent with uniformity; structured
    models produce vanishing p-values on the matching axis.
    """
    if n_bits <= 0 or n_buckets <= 1:
        raise ValueError("need n_bits > 0 and n_buckets > 1")
    if flips.size < n_buckets * 5:
        raise ValueError(
            f"too few flips ({flips.size}) for a {n_buckets}-bucket test"
        )
    buckets = np.minimum(flips * n_buckets // n_bits, n_buckets - 1)
    observed = np.bincount(buckets, minlength=n_buckets)
    return float(stats.chisquare(observed).pvalue)


def structure_score(
    flips: np.ndarray, unit_of_bit: np.ndarray
) -> float:
    """Concentration of flips across structural units, vs uniform.

    Returns the ratio of the observed per-unit flip-count variance to
    the variance a uniform (multinomial) distribution would produce.
    ~1 means unstructured; >> 1 means the flips cluster on weak units.
    """
    if flips.size == 0:
        raise ValueError("need at least one flip")
    units = unit_of_bit[flips]
    n_units = int(unit_of_bit.max()) + 1
    counts = np.bincount(units, minlength=n_units).astype(np.float64)
    n = counts.sum()
    p = 1.0 / n_units
    expected_variance = n * p * (1 - p)
    observed_variance = counts.var()
    if expected_variance <= 0:
        raise ValueError("degenerate unit structure")
    return float(observed_variance / expected_variance)


def data_dependence_ratio(
    flips: np.ndarray, values: np.ndarray
) -> float:
    """Observed failure-rate ratio of 1-bits to 0-bits.

    ~1 for data-independent models; matches the configured
    ``one_to_zero_ratio`` (in expectation) for Model-3.
    """
    if flips.size == 0:
        raise ValueError("need at least one flip")
    ones_total = int((values != 0).sum())
    zeros_total = values.size - ones_total
    if ones_total == 0 or zeros_total == 0:
        raise ValueError("values must contain both 0s and 1s")
    flipped_ones = int((values[flips] != 0).sum())
    flipped_zeros = flips.size - flipped_ones
    rate_ones = flipped_ones / ones_total
    rate_zeros = max(flipped_zeros / zeros_total, 1e-12)
    return float(rate_ones / rate_zeros)

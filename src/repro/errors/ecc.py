"""SEC-DED ECC: the conventional alternative to fault-aware training.

The classic way to run DRAM at reduced voltage is to protect it with
error-correcting codes — the EDEN work SparkXD builds on discusses
exactly this comparator.  This module implements the standard
**Hamming(72,64) SEC-DED** scheme used by ECC DRAM: 8 check bits per
64-bit word, correcting any single bit error and detecting (but not
correcting) double errors.

It exists so the ablation benchmarks can compare SparkXD's approach
(make the *model* tolerate errors; zero storage overhead) against the
hardware approach (correct the errors; +12.5% storage, energy and
bandwidth, and failure beyond one flip per word).

The implementation is a bit-matrix Hamming code over numpy:

- ``encode_words`` appends check bits to 64-bit data words;
- ``decode_words`` recomputes the syndrome, corrects single-bit
  errors, flags uncorrectable (double-bit) words;
- :class:`EccProtectedRepresentation` wraps any weight representation
  so the error injector exercises the full store→corrupt→correct path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

DATA_BITS = 64
CHECK_BITS = 8  # SEC-DED for 64 data bits
CODE_BITS = DATA_BITS + CHECK_BITS
#: storage/energy/bandwidth overhead of the code.
ECC_OVERHEAD = CHECK_BITS / DATA_BITS


def _parity_check_matrix() -> np.ndarray:
    """H matrix (CHECK_BITS x CODE_BITS) of an extended Hamming code.

    Columns 0..63 carry the data bits, columns 64..71 the check bits.
    Data column ``i`` encodes the binary pattern of a distinct non-power
    -of-two integer (classic Hamming construction) plus an overall
    parity row that upgrades SEC to SEC-DED.
    """
    # distinct 7-bit values with >= 2 bits set, one per data bit
    values = [v for v in range(3, 128) if bin(v).count("1") >= 2][:DATA_BITS]
    h = np.zeros((CHECK_BITS, CODE_BITS), dtype=np.uint8)
    for column, value in enumerate(values):
        for row in range(CHECK_BITS - 1):
            h[row, column] = (value >> row) & 1
    for check in range(CHECK_BITS - 1):
        h[check, DATA_BITS + check] = 1
    h[CHECK_BITS - 1, :] = 1  # overall parity row (the SEC-DED extension)
    return h


_H = _parity_check_matrix()
#: syndrome value (as integer) -> correctable bit position
_SYNDROME_TO_BIT = {}
for _bit in range(CODE_BITS):
    _syndrome = 0
    for _row in range(CHECK_BITS):
        _syndrome |= int(_H[_row, _bit]) << _row
    _SYNDROME_TO_BIT[_syndrome] = _bit


def _bits_of_words(words: np.ndarray) -> np.ndarray:
    """uint64 word array -> (n, 64) bit matrix (LSB first)."""
    shifts = np.arange(DATA_BITS, dtype=np.uint64)
    return ((words[:, None] >> shifts[None, :]) & np.uint64(1)).astype(np.uint8)


def _words_of_bits(bits: np.ndarray) -> np.ndarray:
    shifts = np.arange(DATA_BITS, dtype=np.uint64)
    return (bits.astype(np.uint64) << shifts[None, :]).sum(axis=1, dtype=np.uint64)


def encode_words(data: np.ndarray) -> np.ndarray:
    """Encode uint64 data words into (n, 72) codeword bit matrices."""
    data = np.ascontiguousarray(data, dtype=np.uint64).ravel()
    data_bits = _bits_of_words(data)
    code = np.zeros((data.size, CODE_BITS), dtype=np.uint8)
    code[:, :DATA_BITS] = data_bits
    # check bits chosen so H @ code = 0 (mod 2); because each check bit
    # appears in exactly its own row (plus the parity row), solve rows
    # 0..6 first, then the parity bit.
    for check in range(CHECK_BITS - 1):
        mask = _H[check, :DATA_BITS].astype(bool)
        code[:, DATA_BITS + check] = data_bits[:, mask].sum(axis=1) % 2
    code[:, CODE_BITS - 1] = code[:, : CODE_BITS - 1].sum(axis=1) % 2
    return code


@dataclass(frozen=True)
class DecodeReport:
    """What the ECC decoder observed for one batch of words."""

    corrected_words: int
    uncorrectable_words: int
    total_words: int

    @property
    def corrected_fraction(self) -> float:
        return self.corrected_words / self.total_words if self.total_words else 0.0


def decode_words(code: np.ndarray) -> Tuple[np.ndarray, DecodeReport]:
    """Correct single-bit errors; flag double-bit errors.

    Returns ``(data_words, report)``.  Uncorrectable words are returned
    with their (corrupted) data bits as stored — mirroring a memory
    controller that signals the error but must still return data.
    """
    code = np.ascontiguousarray(code, dtype=np.uint8)
    if code.ndim != 2 or code.shape[1] != CODE_BITS:
        raise ValueError(f"codewords must have shape (n, {CODE_BITS})")
    code = code.copy()
    syndromes = (code @ _H.T) % 2
    syndrome_values = (syndromes.astype(np.int64) * (1 << np.arange(CHECK_BITS))).sum(axis=1)
    overall_parity = syndromes[:, CHECK_BITS - 1]

    corrected = 0
    uncorrectable = 0
    for i in np.flatnonzero(syndrome_values):
        value = int(syndrome_values[i])
        if overall_parity[i] == 1:
            # odd number of flips -> single-bit error, correctable
            bit = _SYNDROME_TO_BIT.get(value)
            if bit is not None:
                code[i, bit] ^= 1
                corrected += 1
            else:  # triple+ error aliasing; count as uncorrectable
                uncorrectable += 1
        else:
            # non-zero syndrome with even parity -> double-bit error
            uncorrectable += 1

    report = DecodeReport(
        corrected_words=corrected,
        uncorrectable_words=uncorrectable,
        total_words=code.shape[0],
    )
    return _words_of_bits(code[:, :DATA_BITS]), report


class EccProtectedRepresentation:
    """Wrap a weight representation with Hamming(72,64) protection.

    Weights are packed into 64-bit data words, encoded to 72-bit
    codewords; the stored bit space seen by the error injector is the
    *codeword* space (check bits can flip too); decoding corrects
    single-bit errors per word before handing the data back to the
    wrapped representation.

    ``bits_per_weight`` reflects the true storage cost including the
    12.5% check-bit overhead (scaled by 9/8), so DRAM traffic and
    energy comparisons automatically account for it.
    """

    name = "ecc-protected"

    def __init__(self, inner):
        if DATA_BITS % inner.bits_per_weight != 0:
            raise ValueError(
                f"inner representation width {inner.bits_per_weight} must "
                f"divide {DATA_BITS}"
            )
        if (inner.bits_per_weight * CODE_BITS) % DATA_BITS != 0:
            raise ValueError("inner width must give a whole number of coded bits")
        self.inner = inner
        self.weights_per_word = DATA_BITS // inner.bits_per_weight
        self.last_decode_report: DecodeReport | None = None
        self._last_n_weights: int | None = None

    @property
    def bits_per_weight(self) -> int:
        """Stored bits per weight including the 12.5% check-bit share."""
        return self.inner.bits_per_weight * CODE_BITS // DATA_BITS

    # -- paths used by the error injector ------------------------------
    def encode(self, weights: np.ndarray) -> np.ndarray:
        """Weights -> flat codeword *bit* array (uint8 0/1)."""
        inner_words = np.ravel(self.inner.encode(weights))
        self._last_n_weights = inner_words.size
        padded = self._pack_words(inner_words)
        return encode_words(padded).ravel()

    def decode(self, stored_bits: np.ndarray) -> np.ndarray:
        """Flat codeword bits -> weights (correcting single-bit flips).

        Trimmed to the weight count of the last :meth:`encode` call so
        padding weights never leak back (odd tensor sizes pad the final
        64-bit data word).
        """
        bits = np.ascontiguousarray(stored_bits, dtype=np.uint8)
        if bits.size % CODE_BITS != 0:
            raise ValueError("stored bit count is not a whole number of codewords")
        data_words, report = decode_words(bits.reshape(-1, CODE_BITS))
        self.last_decode_report = report
        inner_words = self._unpack_words(data_words)
        if self._last_n_weights is not None:
            inner_words = inner_words[: self._last_n_weights]
        return self.inner.decode(inner_words)

    def flip_bits(self, stored_bits: np.ndarray, flat_bit_indices: np.ndarray) -> np.ndarray:
        out = np.ravel(stored_bits).copy()
        idx = np.asarray(flat_bit_indices, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= out.size):
            raise IndexError("bit index out of stored range")
        # bits are stored unpacked (one uint8 per bit), so a flip is XOR 1
        np.logical_xor.at(out, idx, True)
        return out

    # -- packing helpers ------------------------------------------------
    def _pack_words(self, inner_words: np.ndarray) -> np.ndarray:
        bpw = self.inner.bits_per_weight
        n = inner_words.size
        n_words = -(-n // self.weights_per_word)
        padded = np.zeros(n_words * self.weights_per_word, dtype=np.uint64)
        padded[:n] = inner_words.astype(np.uint64)
        grouped = padded.reshape(n_words, self.weights_per_word)
        shifts = (np.arange(self.weights_per_word, dtype=np.uint64) * np.uint64(bpw))
        return (grouped << shifts[None, :]).sum(axis=1, dtype=np.uint64)

    def _unpack_words(self, data_words: np.ndarray) -> np.ndarray:
        bpw = self.inner.bits_per_weight
        shifts = (np.arange(self.weights_per_word, dtype=np.uint64) * np.uint64(bpw))
        mask = np.uint64((1 << bpw) - 1) if bpw < 64 else np.uint64(0xFFFFFFFFFFFFFFFF)
        pieces = (data_words[:, None] >> shifts[None, :]) & mask
        flat = pieces.ravel()
        self._n_inner_words = flat.size
        return flat.astype(self.inner.word_dtype)

    def protected_roundtrip(
        self, weights: np.ndarray, flat_bit_indices: np.ndarray
    ) -> Tuple[np.ndarray, DecodeReport]:
        """Store, flip the given codeword bits, read back corrected.

        Convenience path for experiments; the result is trimmed to the
        original weight count (padding weights dropped).
        """
        n = int(np.size(weights))
        stored = self.encode(weights)
        corrupted = self.flip_bits(stored, flat_bit_indices)
        decoded = self.decode(corrupted)
        report = self.last_decode_report
        return decoded.ravel()[:n].reshape(np.shape(weights)), report

"""Structured JSON logging plus the shared telemetry entrypoint.

Library code logs through ``get_logger(__name__)`` (the ``log-discipline``
lint rule bans bare ``print(...)`` diagnostics outside the CLI and
benchmark surfaces).  Nothing is configured by default: un-configured,
only WARNING+ records reach stderr via logging's last-resort handler,
so importing the library stays silent on the happy path.

:func:`configure_telemetry` is the single switch the CLI flags flip —
``--log-level`` installs a JSON-lines handler on the ``repro`` logger
hierarchy, ``--trace`` installs the span :class:`~repro.telemetry.spans.TraceWriter`.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Any, Dict, Optional

from repro.telemetry import spans

__all__ = ["JsonLineFormatter", "configure_telemetry", "get_logger"]

#: Attributes present on every LogRecord; anything else arrived via
#: ``extra=`` and is surfaced in the JSON payload.
_STANDARD_RECORD_FIELDS = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}

_HANDLER_NAME = "repro-telemetry"


class JsonLineFormatter(logging.Formatter):
    """One JSON object per record: ts/level/logger/message + extras."""

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        ctx = spans.current_context()
        if ctx is not None:
            payload["trace_id"] = ctx["trace_id"]
        for key, value in record.__dict__.items():
            if key not in _STANDARD_RECORD_FIELDS and not key.startswith("_"):
                payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


def get_logger(name: str) -> logging.Logger:
    """The telemetry logger for a module; pass ``__name__``."""

    if not name:
        raise ValueError("get_logger() requires a module name")
    return logging.getLogger(name)


def configure_telemetry(
    level: Optional[str] = None,
    trace_path: Optional[str] = None,
    stream: Any = None,
) -> None:
    """Shared entrypoint behind the ``--log-level`` / ``--trace`` flags.

    Idempotent: reconfiguring replaces the previously-installed JSON
    handler and trace writer rather than stacking them.  Structured log
    records go to stderr (stdout stays reserved for CLI user-facing
    output and ``--json`` payloads).
    """

    if level is not None:
        numeric = logging.getLevelName(str(level).upper())
        if not isinstance(numeric, int):
            raise ValueError(f"unknown log level: {level!r}")
        root = logging.getLogger("repro")
        for handler in list(root.handlers):
            if handler.get_name() == _HANDLER_NAME:
                root.removeHandler(handler)
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        handler.set_name(_HANDLER_NAME)
        handler.setFormatter(JsonLineFormatter())
        root.addHandler(handler)
        root.setLevel(numeric)
    if trace_path is not None:
        spans.configure_tracing(trace_path)

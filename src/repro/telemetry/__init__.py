"""repro.telemetry — stdlib-only tracing, metrics, and structured logs.

Three small pieces, threaded through every layer of the system:

- :mod:`repro.telemetry.spans` — nested span context managers with
  monotonic durations, recorded to a per-process JSONL trace and
  exportable to Chrome/Perfetto ``trace.json``
  (``repro telemetry export``);
- :mod:`repro.telemetry.metrics` — a process-local registry of
  counters/gauges/histograms whose snapshots merge, so workers ship
  them over the wire and the coordinator folds a fleet-wide view;
- :mod:`repro.telemetry.logs` — JSON-line structured logging and the
  shared :func:`configure_telemetry` entrypoint behind the CLI's
  ``--log-level`` / ``--trace`` flags.

Everything is off by default and stays off-path cheap: ``span(...)``
returns a shared no-op until a trace writer is installed, and no
writer is ever allocated unless ``--trace`` (or
:func:`~repro.telemetry.spans.configure_tracing`) asks for one.
"""

from repro.telemetry.logs import JsonLineFormatter, configure_telemetry, get_logger
from repro.telemetry.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    merge_snapshots,
)
from repro.telemetry.spans import (
    Span,
    TraceWriter,
    adopt_context,
    configure_tracing,
    current_context,
    export_chrome_trace,
    open_spans,
    shutdown_tracing,
    span,
    timed_span,
    trace_writer,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "DEFAULT_SECONDS_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonLineFormatter",
    "MetricsRegistry",
    "Span",
    "TraceWriter",
    "adopt_context",
    "configure_telemetry",
    "configure_tracing",
    "current_context",
    "export_chrome_trace",
    "get_logger",
    "get_metrics",
    "merge_snapshots",
    "open_spans",
    "shutdown_tracing",
    "span",
    "telemetry_snapshot",
    "timed_span",
    "trace_writer",
    "write_chrome_trace",
]


def telemetry_snapshot() -> dict:
    """The per-process snapshot workers piggyback on wire requests:
    the merged metrics plus the slowest currently-open spans."""

    return {"metrics": get_metrics().to_dict(), "open_spans": open_spans()}

"""Zero-dependency span/trace API recording to per-process JSONL.

A *span* is a named, timed region of work.  Spans nest: a thread-local
stack makes the innermost open span the parent of any span started on
the same thread, so ``stage.train-baseline`` opened inside
``cluster.job`` lands under it in the exported trace without any
explicit plumbing.  Durations come from ``time.perf_counter()`` (the
monotonic clock); the wall-clock ``ts`` field exists only to align
timelines *across* processes in the merged trace.

Tracing is off by default and stays allocation-free on the hot paths:
``span(...)`` returns a shared no-op singleton until a ``TraceWriter``
is installed via :func:`configure_tracing`, so per-chunk / per-epoch
instrumentation costs one global read when telemetry is disabled.
``timed_span(...)`` always returns a real span (callers that need the
measured ``duration_s`` — the pipeline's ``stage_timings`` — use it),
but still writes nothing without a writer.

Multi-process traces: every record is a single ``write()`` of one
JSON line in append mode, so a coordinator and its worker subprocesses
can share one trace file — the OS interleaves whole lines and the
exporter separates timelines by ``pid``.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "TraceWriter",
    "adopt_context",
    "configure_tracing",
    "current_context",
    "export_chrome_trace",
    "open_spans",
    "shutdown_tracing",
    "span",
    "timed_span",
    "trace_writer",
    "write_chrome_trace",
]


def new_id() -> str:
    """A fresh 16-hex-char trace/span id (uuid4-backed, not seeded RNG)."""

    return uuid.uuid4().hex[:16]


class TraceWriter:
    """Append-only JSONL sink shared by every span in the process.

    One ``write()`` call per record keeps concurrent appends from
    multiple processes line-atomic on POSIX; the per-instance lock
    serialises threads within this process.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        self._handle = open(self.path, "a", encoding="utf-8")

    def write(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()


_state_lock = threading.Lock()
_writer: Optional[TraceWriter] = None
_tls = threading.local()
#: Open (entered, not yet exited) spans: span_id -> (name, perf_counter at entry).
_open: Dict[str, Any] = {}


def configure_tracing(path: str) -> TraceWriter:
    """Install (or replace) the process-wide trace writer."""

    global _writer
    with _state_lock:
        if _writer is not None:
            _writer.close()
        _writer = TraceWriter(path)
        return _writer


def shutdown_tracing() -> None:
    """Close and remove the process-wide trace writer (spans go no-op)."""

    global _writer
    with _state_lock:
        if _writer is not None:
            _writer.close()
        _writer = None


def trace_writer() -> Optional[TraceWriter]:
    """The installed writer, or ``None`` when tracing is off."""

    return _writer


def _stack() -> List["Span"]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = []
        _tls.stack = stack
    return stack


class Span:
    """A timed region; use as a context manager via span()/timed_span()."""

    __slots__ = (
        "name",
        "attrs",
        "trace_id",
        "span_id",
        "parent_id",
        "duration_s",
        "_t0",
        "_wall0",
    )

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.trace_id = ""
        self.span_id = ""
        self.parent_id: Optional[str] = None
        self.duration_s = 0.0
        self._t0 = 0.0
        self._wall0 = 0.0

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = _stack()
        if stack:
            parent = stack[-1]
            self.trace_id = parent.trace_id
            self.parent_id = parent.span_id
        else:
            remote = getattr(_tls, "remote", None)
            if remote is not None:
                self.trace_id, self.parent_id = remote
            else:
                self.trace_id = new_id()
        self.span_id = new_id()
        stack.append(self)
        with _state_lock:
            _open[self.span_id] = (self.name, time.perf_counter())
        self._wall0 = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.duration_s = time.perf_counter() - self._t0
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # exited out of order; keep the stack sane
            stack.remove(self)
        with _state_lock:
            _open.pop(self.span_id, None)
        writer = _writer
        if writer is not None:
            record = {
                "type": "span",
                "name": self.name,
                "trace": self.trace_id,
                "span": self.span_id,
                "parent": self.parent_id,
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "ts": self._wall0,
                "dur_s": self.duration_s,
            }
            if exc_type is not None:
                record["error"] = exc_type.__name__
            if self.attrs:
                record["attrs"] = self.attrs
            writer.write(record)


class _NullSpan:
    """Shared no-op stand-in returned by span() when tracing is off."""

    __slots__ = ()

    duration_s = 0.0
    trace_id = ""
    span_id = ""
    parent_id = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        return None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


def span(name: str, **attrs: Any):
    """A recording span when tracing is on; a shared no-op otherwise.

    Hot paths (per-chunk, per-minibatch) use this: the disabled cost is
    one module-global read and no allocation.
    """

    if _writer is None:
        return _NULL_SPAN
    return Span(name, attrs)


def timed_span(name: str, **attrs: Any) -> Span:
    """A real span even when tracing is off, for callers that consume
    ``duration_s`` (e.g. span-backed ``stage_timings``)."""

    return Span(name, attrs)


def current_context() -> Optional[Dict[str, str]]:
    """``{"trace_id", "span_id"}`` of the innermost open span, if any."""

    stack = getattr(_tls, "stack", None)
    if stack:
        top = stack[-1]
        return {"trace_id": top.trace_id, "span_id": top.span_id}
    remote = getattr(_tls, "remote", None)
    if remote is not None:
        return {"trace_id": remote[0], "span_id": remote[1]}
    return None


class adopt_context:
    """Adopt a remote parent (e.g. from a lease reply) for this thread.

    While active, spans opened with an empty local stack parent under
    the remote context instead of starting fresh traces — this is how a
    worker's ``cluster.job`` span joins the coordinator's sweep trace.
    ``ctx`` may be ``None`` (no-op) for wire payloads without trace
    context.
    """

    def __init__(self, ctx: Optional[Dict[str, str]]) -> None:
        trace_id = (ctx or {}).get("trace_id")
        span_id = (ctx or {}).get("span_id")
        self._remote = (trace_id, span_id) if trace_id else None
        self._prior: Any = None

    def __enter__(self) -> "adopt_context":
        self._prior = getattr(_tls, "remote", None)
        if self._remote is not None:
            _tls.remote = self._remote
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        _tls.remote = self._prior


def open_spans(limit: int = 5) -> List[Dict[str, Any]]:
    """The oldest currently-open spans as ``{"name", "age_s"}`` rows.

    This is the "slowest open spans" feed for worker telemetry
    snapshots and ``repro cluster top`` — a span that has been open for
    minutes is a straggler regardless of whether tracing writes a file.
    """

    now = time.perf_counter()
    with _state_lock:
        entries = [(name, now - t0) for (name, t0) in _open.values()]
    entries.sort(key=lambda item: -item[1])
    return [
        {"name": name, "age_s": round(age, 3)} for name, age in entries[:limit]
    ]


# ----------------------------------------------------------------------
# Chrome/Perfetto export


def _iter_records(jsonl_path: str) -> Iterator[Dict[str, Any]]:
    with open(jsonl_path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("type") == "span":
                yield record


def export_chrome_trace(jsonl_path: str) -> Dict[str, Any]:
    """Convert a span JSONL file to a Chrome/Perfetto ``trace.json`` dict.

    Complete-phase (``"ph": "X"``) events, microsecond timestamps from
    the wall-clock ``ts`` field so records from different processes land
    on one timeline.
    """

    events: List[Dict[str, Any]] = []
    for record in _iter_records(jsonl_path):
        args = dict(record.get("attrs") or {})
        args["trace_id"] = record["trace"]
        args["span_id"] = record["span"]
        if record.get("parent"):
            args["parent_id"] = record["parent"]
        if record.get("error"):
            args["error"] = record["error"]
        events.append(
            {
                "name": record["name"],
                "cat": "repro",
                "ph": "X",
                "ts": record["ts"] * 1e6,
                "dur": record["dur_s"] * 1e6,
                "pid": record["pid"],
                "tid": record["tid"],
                "args": args,
            }
        )
    events.sort(key=lambda event: event["ts"])
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(jsonl_path: str, out_path: str) -> Dict[str, Any]:
    """Export ``jsonl_path`` to ``out_path``; returns a small summary."""

    trace = export_chrome_trace(jsonl_path)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle)
    events = trace["traceEvents"]
    return {
        "trace": str(jsonl_path),
        "out": str(out_path),
        "events": len(events),
        "pids": len({event["pid"] for event in events}),
    }

"""Process-local metrics: counters, gauges, bounded-bucket histograms.

One :class:`MetricsRegistry` per process (:func:`get_metrics`); every
instrument is create-on-first-use by name, so call sites never need a
wiring step:

    get_metrics().counter("store.hits").inc()
    get_metrics().histogram("engine.minibatch_s").observe(dt)

Snapshots (``to_dict()``) are plain-JSON and **mergeable**: a
coordinator folds the latest snapshot from each worker plus its own
registry into one fleet view with :func:`merge_snapshots`.  Counters
add, gauges keep the last write, histograms add bucket-wise (bucket
bounds must agree — all callers use the shared defaults unless they
own the name).

Existing ad-hoc stats (``WorkerStats``, ``ArtifactSync`` counters,
``CacheStats``) keep their public shapes — the registry mirrors them
under stable dotted names, and is the thing shipped over the wire.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_SECONDS_BUCKETS",
    "get_metrics",
    "merge_snapshots",
]

#: Default bucket upper bounds for duration histograms, in seconds.
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
)


class Counter:
    """Monotonic add-only counter (floats allowed: byte totals, seconds)."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value: float = 0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value


class Histogram:
    """Bounded-bucket histogram: cumulative-free per-bucket counts plus
    count/sum/min/max, so merged snapshots stay exact."""

    __slots__ = ("_lock", "buckets", "counts", "count", "total", "min", "max")

    def __init__(
        self, lock: threading.Lock, buckets: Iterable[float] = DEFAULT_SECONDS_BUCKETS
    ) -> None:
        self._lock = lock
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        # one slot per bound plus the overflow bucket
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        idx = bisect_left(self.buckets, value)
        with self._lock:
            self.counts[idx] += 1
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def snapshot(self) -> Dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Thread-safe, create-on-first-use registry of named instruments."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = Counter(self._lock)
                self._counters[name] = instrument
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = Gauge(self._lock)
                self._gauges[name] = instrument
            return instrument

    def histogram(
        self, name: str, buckets: Iterable[float] = DEFAULT_SECONDS_BUCKETS
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = Histogram(self._lock, buckets)
                self._histograms[name] = instrument
            return instrument

    def to_dict(self) -> Dict[str, Any]:
        """A plain-JSON snapshot (the wire/merge format)."""

        with self._lock:
            return {
                "counters": {
                    name: instrument.value
                    for name, instrument in sorted(self._counters.items())
                },
                "gauges": {
                    name: instrument.value
                    for name, instrument in sorted(self._gauges.items())
                },
                "histograms": {
                    name: instrument.snapshot()
                    for name, instrument in sorted(self._histograms.items())
                },
            }

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a ``to_dict()``-shaped snapshot into this registry."""

        for name, value in (snapshot.get("counters") or {}).items():
            self.counter(name).inc(value)
        for name, value in (snapshot.get("gauges") or {}).items():
            self.gauge(name).set(value)
        for name, data in (snapshot.get("histograms") or {}).items():
            hist = self.histogram(name, data.get("buckets") or DEFAULT_SECONDS_BUCKETS)
            with self._lock:
                _fold_histogram_locked(hist, data)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def _fold_histogram_locked(hist: Histogram, data: Mapping[str, Any]) -> None:
    counts = data.get("counts") or []
    if list(data.get("buckets") or []) == list(hist.buckets) and len(counts) == len(
        hist.counts
    ):
        for idx, n in enumerate(counts):
            hist.counts[idx] += n
    else:  # bucket mismatch: fold the overflow slot so totals stay exact
        hist.counts[-1] += int(data.get("count") or 0)
    hist.count += int(data.get("count") or 0)
    hist.total += float(data.get("sum") or 0.0)
    for bound, pick in (("min", min), ("max", max)):
        incoming = data.get(bound)
        if incoming is None:
            continue
        current = getattr(hist, bound)
        setattr(hist, bound, incoming if current is None else pick(current, incoming))


def merge_snapshots(snapshots: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Merge ``to_dict()`` snapshots (e.g. one per worker) into one view."""

    merged = MetricsRegistry()
    for snapshot in snapshots:
        if snapshot:
            merged.merge(snapshot)
    return merged.to_dict()


_REGISTRY = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-global registry instrumented code records into."""

    return _REGISTRY

"""SparkXD reproduction.

A full reimplementation of *SparkXD: A Framework for Resilient and
Energy-Efficient Spiking Neural Network Inference using Approximate DRAM*
(Putra, Hanif, Shafique — DAC 2021), including every substrate the paper
depends on:

- a vectorised numpy SNN simulator (:mod:`repro.snn`),
- a command-level DRAM model with voltage-dependent timing and energy
  (:mod:`repro.dram`),
- approximate-DRAM probabilistic error models and bit-level error
  injection (:mod:`repro.errors`),
- synthetic MNIST / Fashion-MNIST workloads (:mod:`repro.datasets`),
- SNN-inference-to-DRAM-trace generation (:mod:`repro.trace`),
- and the SparkXD framework itself (:mod:`repro.core`): fault-aware
  training, error-tolerance analysis, and fault/energy-aware DRAM mapping.

Quickstart::

    from repro import SparkXD, SparkXDConfig
    frame = SparkXD(SparkXDConfig.small())
    result = frame.run()
    print(result.summary())
"""

from repro.core.config import SparkXDConfig
from repro.core.framework import SparkXD, SparkXDResult

__all__ = ["SparkXD", "SparkXDConfig", "SparkXDResult"]
__version__ = "1.0.0"

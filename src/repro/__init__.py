"""SparkXD reproduction.

A full reimplementation of *SparkXD: A Framework for Resilient and
Energy-Efficient Spiking Neural Network Inference using Approximate DRAM*
(Putra, Hanif, Shafique — DAC 2021), including every substrate the paper
depends on:

- a vectorised numpy SNN simulator (:mod:`repro.snn`),
- a command-level DRAM model with voltage-dependent timing and energy
  (:mod:`repro.dram`),
- approximate-DRAM probabilistic error models and bit-level error
  injection (:mod:`repro.errors`),
- synthetic MNIST / Fashion-MNIST workloads (:mod:`repro.datasets`),
- SNN-inference-to-DRAM-trace generation (:mod:`repro.trace`),
- the SparkXD framework itself (:mod:`repro.core`): fault-aware
  training, error-tolerance analysis, and fault/energy-aware DRAM
  mapping,
- a staged experiment pipeline (:mod:`repro.pipeline`): the Fig. 7
  flow as composable stages with content-addressed artifact caching and
  a parallel grid-sweep runner,
- a batched vectorized evaluation engine (:mod:`repro.engine`):
  one simulation pass scores a whole evaluation set under a stack of
  corrupted-weight realizations, bit-identical to the sequential
  per-sample loop (see ``docs/engine.md``),
- and a distributed sweep service (:mod:`repro.cluster`): a
  coordinator/worker fleet over a stdlib line protocol with
  fingerprint-deduplicated jobs, lease-based fault tolerance and
  content-addressed artifact sync — records identical to single-host
  runs (see ``docs/cluster.md``).

Quickstart — one run, classic facade::

    from repro import SparkXD, SparkXDConfig
    result = SparkXD(SparkXDConfig.small()).run()
    print(result.summary())

Quickstart — staged, cached, swept::

    from repro import SparkXDConfig
    from repro.pipeline import ArtifactStore, ExperimentPipeline, Runner

    store = ArtifactStore()          # ArtifactStore("cache/") persists to disk
    config = SparkXDConfig.small()
    result = ExperimentPipeline(config, store=store).run()   # trains once

    records = Runner(config, store=store, max_workers=4).run({
        "voltages": [(1.325,), (1.175,), (1.025,)],          # BER rises as V drops
        "mapping_policy": ["sparkxd", "baseline"],
    })                               # 6 points, zero retraining: cache hits
    for record in records:
        print(record.run_id, record.mean_energy_saving)

New scenarios plug in by name, without core edits: register workloads in
``repro.datasets.DATASETS``, error models in
``repro.errors.ERROR_MODELS``, weight-mapping policies in
``repro.core.mapping_policy.MAPPING_POLICIES`` and devices in
``repro.dram.specs.DRAM_SPECS``.  See ``docs/pipeline.md`` for the full
tour, and ``python -m repro stages`` for a live inventory.
"""

from repro.core.config import SparkXDConfig
from repro.core.framework import SparkXD, SparkXDResult, VoltageOutcome

__all__ = ["SparkXD", "SparkXDConfig", "SparkXDResult", "VoltageOutcome"]
__version__ = "1.1.0"

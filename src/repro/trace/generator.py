"""Generating the DRAM read trace of one SNN inference.

The paper's hardware model (Section I): the SNN accelerator's on-chip
memory is smaller than the weight tensor, so inference *streams* the
synaptic weights from DRAM.  For the fully-connected architecture the
weights are read tile by tile in data order, once per inference pass
(or more, if the on-chip buffer forces re-fetching across timestep
groups — ``refetch_passes`` models that).

A *chunk* is one column-slot's worth of weights (``column_width_bits /
bits_per_weight`` weights).  The mapping policy decides which DRAM slot
each chunk occupies; the trace is simply the chunks' slots in streaming
order, repeated per pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dram.organization import DramOrganization


def chunks_for_weights(
    organization: DramOrganization, n_weights: int, bits_per_weight: int
) -> int:
    """Number of column-slot chunks the weight tensor occupies."""
    if n_weights < 0:
        raise ValueError(f"n_weights must be >= 0, got {n_weights}")
    if bits_per_weight <= 0:
        raise ValueError(f"bits_per_weight must be > 0, got {bits_per_weight}")
    return organization.slots_needed(n_weights * bits_per_weight)


@dataclass(frozen=True)
class InferenceTraceSpec:
    """Parameters of one inference's DRAM traffic."""

    n_weights: int
    bits_per_weight: int
    #: how many times the full weight tensor is streamed per inference.
    refetch_passes: int = 1

    def __post_init__(self):
        if self.n_weights <= 0:
            raise ValueError(f"n_weights must be > 0, got {self.n_weights}")
        if self.bits_per_weight <= 0:
            raise ValueError("bits_per_weight must be > 0")
        if self.refetch_passes <= 0:
            raise ValueError("refetch_passes must be > 0")

    def total_bits(self) -> int:
        return self.n_weights * self.bits_per_weight


def inference_read_trace(
    spec: InferenceTraceSpec,
    slot_of_chunk: np.ndarray,
    organization: DramOrganization,
) -> np.ndarray:
    """The DRAM slot sequence one inference reads, in access order.

    ``slot_of_chunk`` comes from a mapping policy
    (:mod:`repro.core.mapping_policy`): entry ``i`` is the DRAM slot of
    the ``i``-th weight chunk in data order.  The trace streams the
    chunks in data order, ``refetch_passes`` times.
    """
    slots = np.asarray(slot_of_chunk, dtype=np.int64)
    needed = chunks_for_weights(organization, spec.n_weights, spec.bits_per_weight)
    if slots.shape != (needed,):
        raise ValueError(
            f"mapping covers {slots.shape[0]} chunks but the tensor needs {needed}"
        )
    if slots.size and (slots.min() < 0 or slots.max() >= organization.total_slots):
        raise IndexError("mapped slot out of device range")
    if len(np.unique(slots)) != slots.size:
        raise ValueError("mapping assigns two chunks to the same DRAM slot")
    if spec.refetch_passes == 1:
        return slots
    return np.tile(slots, spec.refetch_passes)

"""On-chip buffer modelling: how many times weights stream from DRAM.

The paper's premise (Section I): an SNN whose weight tensor exceeds the
accelerator's on-chip memory must stream weights from DRAM, and the
number of re-fetches multiplies the DRAM energy.  This module models
that relationship:

- :func:`refetch_passes_for_buffer` — given the on-chip buffer size,
  the weight tensor size, and how the inference loop is tiled, compute
  how many times each weight is fetched per inference;
- :class:`TiledInferencePlan` — the derived streaming plan, convertible
  into an :class:`~repro.trace.generator.InferenceTraceSpec`.

The fully-connected Fig. 4(a) workload processes T timesteps; each
timestep needs every input row of the weight matrix that carries a
spike.  Two standard schedules are modelled:

- ``weight-stationary``: weights resident on-chip are reused across
  all timesteps; only tensors larger than the buffer are re-streamed
  once per timestep *group*;
- ``output-stationary``: neuron partitions are processed one at a
  time; the weight columns of a partition stream once per inference
  regardless of buffer size (but partial sums never leave the chip).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.trace.generator import InferenceTraceSpec

SCHEDULES = ("weight-stationary", "output-stationary")


@dataclass(frozen=True)
class TiledInferencePlan:
    """How one inference streams its weights from DRAM."""

    n_weights: int
    bits_per_weight: int
    buffer_bits: int
    schedule: str
    timestep_groups: int
    refetch_passes: int

    @property
    def tensor_bits(self) -> int:
        return self.n_weights * self.bits_per_weight

    @property
    def fits_on_chip(self) -> bool:
        return self.tensor_bits <= self.buffer_bits

    @property
    def total_traffic_bits(self) -> int:
        """DRAM read traffic of one inference."""
        return self.tensor_bits * self.refetch_passes

    def to_trace_spec(self) -> InferenceTraceSpec:
        return InferenceTraceSpec(
            n_weights=self.n_weights,
            bits_per_weight=self.bits_per_weight,
            refetch_passes=self.refetch_passes,
        )


def refetch_passes_for_buffer(
    n_weights: int,
    bits_per_weight: int,
    buffer_bits: int,
    n_timesteps: int,
    schedule: str = "weight-stationary",
) -> TiledInferencePlan:
    """Derive the streaming plan of one inference.

    ``weight-stationary``: if the tensor fits, everything is fetched
    exactly once.  Otherwise the tensor is split into
    ``ceil(tensor/buffer)`` tiles; each timestep needs all tiles, but
    consecutive timesteps can share the resident tile by processing
    timesteps in groups — the standard tiling gives each weight
    ``ceil(tensor/buffer)``... inverted: the whole tensor streams once
    per timestep group, and the number of groups equals the tile count
    (every tile is resident for ``T / tiles`` timesteps).  Net effect:
    the tensor streams ``min(tiles, T)`` times.

    ``output-stationary``: each neuron partition's columns stream once;
    the whole tensor streams exactly once per inference, independent of
    buffer size (partial membrane sums stay on-chip instead).
    """
    if n_weights <= 0 or bits_per_weight <= 0:
        raise ValueError("n_weights and bits_per_weight must be > 0")
    if buffer_bits <= 0:
        raise ValueError("buffer_bits must be > 0")
    if n_timesteps <= 0:
        raise ValueError("n_timesteps must be > 0")
    if schedule not in SCHEDULES:
        raise ValueError(f"schedule must be one of {SCHEDULES}, got {schedule!r}")

    tensor_bits = n_weights * bits_per_weight
    tiles = max(1, math.ceil(tensor_bits / buffer_bits))
    if schedule == "weight-stationary":
        passes = min(tiles, n_timesteps)
        groups = passes
    else:  # output-stationary
        passes = 1
        groups = 1
    return TiledInferencePlan(
        n_weights=n_weights,
        bits_per_weight=bits_per_weight,
        buffer_bits=buffer_bits,
        schedule=schedule,
        timestep_groups=groups,
        refetch_passes=passes,
    )


def buffer_sweep(
    n_weights: int,
    bits_per_weight: int,
    buffer_sizes_bits: tuple,
    n_timesteps: int,
    schedule: str = "weight-stationary",
) -> tuple:
    """Plans across a range of on-chip buffer sizes (Fig. 1 motivation)."""
    return tuple(
        refetch_passes_for_buffer(
            n_weights, bits_per_weight, size, n_timesteps, schedule
        )
        for size in buffer_sizes_bits
    )

"""Aggregate statistics of executed traces (the 'DRAM access traces &
statistics' box of the paper's Fig. 10)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.controller import TraceExecutionResult


@dataclass(frozen=True)
class TraceSummary:
    """Compact, comparable view of one trace execution."""

    v_supply: float
    accesses: int
    hit_rate: float
    miss_rate: float
    conflict_rate: float
    total_time_us: float
    total_energy_mj: float
    energy_per_access_nj: float

    def __str__(self) -> str:
        return (
            f"{self.v_supply:.3f}V: {self.accesses} accesses, "
            f"hit {self.hit_rate:.1%}, {self.total_time_us:.1f}us, "
            f"{self.total_energy_mj:.4f}mJ "
            f"({self.energy_per_access_nj:.2f}nJ/access)"
        )


def summarize_trace(result: TraceExecutionResult) -> TraceSummary:
    """Reduce a :class:`TraceExecutionResult` to headline numbers."""
    stats = result.stats
    n = max(stats.accesses, 1)
    return TraceSummary(
        v_supply=result.v_supply,
        accesses=stats.accesses,
        hit_rate=stats.hits / n,
        miss_rate=stats.misses / n,
        conflict_rate=stats.conflicts / n,
        total_time_us=stats.total_time_ns * 1e-3,
        total_energy_mj=result.energy.total_nj * 1e-6,
        energy_per_access_nj=result.energy.total_nj / n,
    )

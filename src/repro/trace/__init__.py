"""SNN inference → DRAM access trace generation and statistics."""

from repro.trace.generator import (
    InferenceTraceSpec,
    chunks_for_weights,
    inference_read_trace,
)
from repro.trace.stats import TraceSummary, summarize_trace
from repro.trace.tiling import (
    TiledInferencePlan,
    buffer_sweep,
    refetch_passes_for_buffer,
)

__all__ = [
    "TiledInferencePlan",
    "buffer_sweep",
    "refetch_passes_for_buffer",
    "InferenceTraceSpec",
    "chunks_for_weights",
    "inference_read_trace",
    "TraceSummary",
    "summarize_trace",
]

"""Checker framework: parsed source modules and the checker base class.

Everything is pure ``ast`` — the linted code is **never imported**, so
checkers run against broken branches, fixture files with deliberate
violations, and trees whose dependencies are absent.
"""

from __future__ import annotations

import abc
import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Union

from repro.lint.findings import Finding, parse_suppressions


@dataclass
class SourceModule:
    """One parsed python file under the linted root."""

    path: Path  # absolute
    relpath: str  # posix form, relative to the linted root
    text: str
    tree: ast.Module
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    @property
    def name(self) -> str:
        """Dotted module name relative to the root (best effort)."""
        parts = Path(self.relpath).with_suffix("").parts
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)


class ParseFailure(ValueError):
    """A file under the root is not valid python."""

    def __init__(self, relpath: str, error: SyntaxError):
        super().__init__(f"{relpath}: {error}")
        self.relpath = relpath
        self.lineno = int(error.lineno or 1)


def load_source_module(path: Union[str, Path], root: Union[str, Path]) -> SourceModule:
    path, root = Path(path), Path(root)
    text = path.read_text(encoding="utf-8")
    relpath = path.relative_to(root).as_posix() if path.is_relative_to(root) else path.name
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as error:
        raise ParseFailure(relpath, error) from error
    return SourceModule(
        path=path,
        relpath=relpath,
        text=text,
        tree=tree,
        suppressions=parse_suppressions(text),
    )


def iter_python_files(root: Union[str, Path]) -> Iterator[Path]:
    """Every ``*.py`` under ``root`` in stable (sorted) order."""
    root = Path(root)
    if root.is_file():
        yield root
        return
    yield from sorted(root.rglob("*.py"))


def load_project(
    root: Union[str, Path], paths: Optional[Iterable[Union[str, Path]]] = None
) -> List[SourceModule]:
    """Parse every python file under ``root`` (or just ``paths``)."""
    root = Path(root)
    files = [Path(p) for p in paths] if paths is not None else iter_python_files(root)
    return [load_source_module(path, root) for path in files]


class Checker(abc.ABC):
    """One project invariant, expressed as an AST pass.

    Subclasses set :attr:`rule` (the stable rule id used in reports and
    ``# lint: disable=`` comments) and implement either
    :meth:`check_module` (per-file rules) or :meth:`check_project`
    (cross-file rules — the protocol checker needs both sides of the
    wire at once).
    """

    #: Stable rule identifier (kebab-case).
    rule: str = ""
    #: One-line description of the invariant the rule protects.
    description: str = ""

    def check_project(self, modules: Sequence[SourceModule]) -> Iterator[Finding]:
        for module in modules:
            yield from self.check_module(module)

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        return iter(())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.rule!r})"


# ----------------------------------------------------------------------
# Shared AST helpers.


def attribute_chain(node: ast.AST) -> Optional[str]:
    """Dotted form of a ``Name``/``Attribute`` chain, else ``None``.

    ``np.random.default_rng`` → ``"np.random.default_rng"``; anything
    rooted in a call or subscript is not a plain chain.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def enclosing_symbols(tree: ast.Module) -> Dict[ast.AST, str]:
    """Map every node to its ``Class.method`` style qualified scope."""
    symbols: Dict[ast.AST, str] = {}

    def visit(node: ast.AST, scope: str) -> None:
        for child in ast.iter_child_nodes(node):
            child_scope = scope
            if isinstance(
                child, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                child_scope = f"{scope}.{child.name}" if scope else child.name
            symbols[child] = child_scope
            visit(child, child_scope)

    symbols[tree] = ""
    visit(tree, "")
    return symbols


def const_str(node: ast.AST) -> Optional[str]:
    """The string value of a constant node, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


__all__ = [
    "Checker",
    "ParseFailure",
    "SourceModule",
    "attribute_chain",
    "const_str",
    "enclosing_symbols",
    "iter_python_files",
    "load_project",
    "load_source_module",
]

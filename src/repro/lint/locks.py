"""lock-discipline: attributes guarded by ``self._lock`` stay guarded.

The ``ThreadingTCPServer`` coordinator made several classes' internal
locks load-bearing: every request handler thread mutates plan/store
state through them.  The convention this rule enforces:

- a class that creates a ``threading.Lock``/``RLock`` attribute owns a
  *guarded set* — every ``self.<attr>`` touched (read or written)
  inside one of its ``with self.<lock>:`` blocks;
- any method that **mutates** a guarded attribute outside such a block
  is flagged (reads are not: lock-free reads are sometimes deliberate
  and carry their own comments);
- construction-time methods are exempt — ``__init__`` and friends run
  before the object is shared, as do helpers reachable *only* from
  them;
- methods whose name ends in ``_locked`` declare "caller holds the
  lock" and are treated as lock-held throughout — the flip side is
  that a shared-state helper *without* the suffix claims to be safe to
  call from anywhere, which is exactly the latent hazard this rule
  surfaces.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.base import Checker, SourceModule, attribute_chain
from repro.lint.findings import Finding

#: Methods that run before (or while) the instance is private to one
#: thread: construction, copy/pickle protocol, finalisation.
_CONSTRUCTION_METHODS = {
    "__init__",
    "__new__",
    "__del__",
    "__getstate__",
    "__setstate__",
    "__init_subclass__",
}

_LOCK_FACTORIES = {"Lock", "RLock", "Condition"}


class LockDisciplineChecker(Checker):
    rule = "lock-discipline"
    description = (
        "attributes touched under `with self._lock` must only be mutated "
        "under it (or in construction / `_locked`-suffixed methods)"
    )

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    # ------------------------------------------------------------------
    def _check_class(self, module: SourceModule, cls: ast.ClassDef) -> Iterator[Finding]:
        methods = [
            child
            for child in cls.body
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        lock_attrs = _lock_attributes(methods)
        if not lock_attrs:
            return
        exempt = _exempt_methods(methods)
        # Pass 1: the guarded set — every self attribute touched under a
        # lock anywhere in the class (including _locked helpers, whose
        # whole body is lock-held by convention).
        guarded: Set[str] = set()
        accesses: Dict[str, List[Tuple[str, int, bool, bool]]] = {}
        for method in methods:
            held = method.name.endswith("_locked")
            touches = _self_attribute_touches(method, lock_attrs, held)
            accesses[method.name] = touches
            for attr, _line, under_lock, _mutation in touches:
                if under_lock:
                    guarded.add(attr)
        guarded -= lock_attrs
        if not guarded:
            return
        # Pass 2: mutations of guarded attributes outside any lock.
        for method in methods:
            if method.name in exempt:
                continue
            for attr, line, under_lock, mutation in accesses[method.name]:
                if mutation and not under_lock and attr in guarded:
                    yield Finding(
                        rule=self.rule,
                        severity="error",
                        path=module.relpath,
                        line=line,
                        symbol=f"{cls.name}.{method.name}",
                        message=(
                            f"{cls.name}.{method.name} mutates self.{attr} "
                            f"outside `with self.{sorted(lock_attrs)[0]}` but "
                            "other methods access it under the lock; hold the "
                            "lock here, or rename the method with a `_locked` "
                            "suffix if every caller already holds it"
                        ),
                    )


# ----------------------------------------------------------------------


def _lock_attributes(methods) -> Set[str]:
    """Names of self attributes assigned a Lock/RLock/Condition."""
    locks: Set[str] = set()
    for method in methods:
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
                continue
            chain = attribute_chain(node.value.func) or ""
            if chain.split(".")[-1] not in _LOCK_FACTORIES:
                continue
            for target in node.targets:
                attr = _self_attr(target, first_arg(method))
                if attr is not None:
                    locks.add(attr)
    return locks


def _exempt_methods(methods) -> Set[str]:
    """Construction methods plus helpers reachable only from them."""
    calls: Dict[str, Set[str]] = {m.name: set() for m in methods}
    self_names = {m.name: first_arg(m) for m in methods}
    for method in methods:
        for node in ast.walk(method):
            if isinstance(node, ast.Call):
                chain = attribute_chain(node.func)
                if chain is None:
                    continue
                parts = chain.split(".")
                if len(parts) == 2 and parts[0] == self_names[method.name]:
                    calls[method.name].add(parts[1])
    exempt = {name for name in calls if name in _CONSTRUCTION_METHODS}
    # A helper is exempt iff it is called somewhere in the class and
    # every in-class call site sits in an exempt method.
    changed = True
    while changed:
        changed = False
        for method in methods:
            name = method.name
            if name in exempt:
                continue
            callers = {m for m, callees in calls.items() if name in callees}
            if callers and callers <= exempt:
                exempt.add(name)
                changed = True
    return exempt


def first_arg(method) -> Optional[str]:
    args = method.args.posonlyargs + method.args.args
    return args[0].arg if args else None


def _self_attr(node: ast.AST, self_name: Optional[str]) -> Optional[str]:
    """``attr`` when ``node`` is exactly ``<self>.attr``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == self_name
    ):
        return node.attr
    return None


def _root_self_attr(node: ast.AST, self_name: Optional[str]) -> Optional[str]:
    """The self attribute at the root of an attribute/subscript chain.

    ``self.jobs[id]`` → ``jobs``; ``self.stats.hits`` → ``stats``;
    plain locals → ``None``.
    """
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        attr = _self_attr(node, self_name)
        if attr is not None:
            return attr
        node = node.value
    return None


def _self_attribute_touches(
    method, lock_attrs: Set[str], lock_held: bool
) -> List[Tuple[str, int, bool, bool]]:
    """Every ``(attr, line, under_lock, is_mutation)`` touch in ``method``."""
    self_name = first_arg(method)
    touches: List[Tuple[str, int, bool, bool]] = []
    if self_name is None:
        return touches

    def is_lock_context(item: ast.withitem) -> bool:
        attr = _self_attr(item.context_expr, self_name)
        return attr is not None and attr in lock_attrs

    def mutated_roots(node: ast.AST) -> List[Tuple[str, int]]:
        roots: List[Tuple[str, int]] = []
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        for target in targets:
            for element in _flatten_targets(target):
                attr = _root_self_attr(element, self_name)
                if attr is not None:
                    roots.append((attr, element.lineno))
        return roots

    def visit(node: ast.AST, under: bool) -> None:
        if isinstance(node, ast.With):
            inner = under or any(is_lock_context(item) for item in node.items)
            for item in node.items:
                visit(item, under)
            for child in node.body:
                visit(child, inner)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not method:
            return  # nested defs get their own analysis if ever needed
        for attr, line in mutated_roots(node):
            touches.append((attr, line, under, True))
        if isinstance(node, ast.Attribute):
            attr = _self_attr(node, self_name)
            if attr is not None:
                touches.append((attr, node.lineno, under, False))
        for child in ast.iter_child_nodes(node):
            visit(child, under)

    for statement in method.body:
        visit(statement, lock_held)
    return touches


def _flatten_targets(node: ast.AST):
    if isinstance(node, (ast.Tuple, ast.List)):
        for element in node.elts:
            yield from _flatten_targets(element)
    elif isinstance(node, ast.Starred):
        yield from _flatten_targets(node.value)
    else:
        yield node

"""workspace-discipline: fused loops must not allocate per step.

The fused training kernels (:mod:`repro.snn.kernels`,
``DiehlCookNetwork._run_batch_stdp_fused`` / ``_run_batch_frozen``)
exist to run the per-timestep simulation loop allocation-free: every
intermediate lives in a preallocated
:class:`~repro.snn.kernels.FusedWorkspace` (or equivalent local
buffer) reused across steps and minibatches.  A numpy allocation
sneaking back into the ``for t in range(n_steps)`` body silently
reintroduces per-step garbage pressure — the regression this rule
catches at review time instead of in the benchmark history.

The rule inspects functions whose name contains ``fused`` or
``frozen`` and flags, inside any ``for ... in range(...)`` body:

- calls to numpy allocators (``np.zeros``, ``np.empty_like``,
  ``np.array``, ``np.concatenate``, ``np.flatnonzero``, …);
- calls to allocating ufuncs/reductions (``np.add``, ``np.multiply``,
  ``np.sum``, ``np.clip``, …) **without** an ``out=`` argument;
- ``.copy()`` / ``.astype(...)`` / ``.sum()`` / ``.any()`` /
  ``.all()`` method calls (each returns a fresh array) without
  ``out=``.

Findings are warnings; a deliberate per-step allocation (e.g. a ragged
tail path) can be annotated ``# lint: disable=workspace-discipline``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set

from repro.lint.base import Checker, SourceModule, attribute_chain, enclosing_symbols
from repro.lint.findings import Finding

#: Function-name markers of the allocation-free loop discipline.
_FUSED_MARKERS = ("fused", "frozen")

#: numpy calls that always allocate a fresh array.
_NUMPY_ALLOCATORS = {
    "zeros",
    "empty",
    "ones",
    "full",
    "zeros_like",
    "empty_like",
    "ones_like",
    "full_like",
    "array",
    "asarray",
    "ascontiguousarray",
    "arange",
    "linspace",
    "concatenate",
    "stack",
    "vstack",
    "hstack",
    "copy",
    "flatnonzero",
    "nonzero",
    "where",
    "repeat",
    "tile",
    "broadcast_to",
}

#: numpy ufuncs/reductions that allocate *unless* given ``out=``.
_NUMPY_OUT_CAPABLE = {
    "add",
    "subtract",
    "multiply",
    "divide",
    "true_divide",
    "power",
    "exp",
    "maximum",
    "minimum",
    "clip",
    "greater",
    "greater_equal",
    "less",
    "less_equal",
    "equal",
    "not_equal",
    "logical_and",
    "logical_or",
    "sum",
    "prod",
    "matmul",
    "dot",
}

#: Array methods returning fresh arrays unless redirected with ``out=``.
_ALLOCATING_METHODS = {"copy", "astype", "sum", "any", "all", "dot"}


def _has_out_keyword(call: ast.Call) -> bool:
    return any(kw.arg == "out" for kw in call.keywords)


def _numpy_aliases(tree: ast.Module) -> Set[str]:
    """Local names bound to the numpy module (``np``, ``numpy``, …)."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == "numpy":
                    aliases.add(item.asname or "numpy")
    return aliases


def _is_range_loop(node: ast.For) -> bool:
    call = node.iter
    return (
        isinstance(call, ast.Call)
        and isinstance(call.func, ast.Name)
        and call.func.id == "range"
    )


class WorkspaceDisciplineChecker(Checker):
    rule = "workspace-discipline"
    description = (
        "fused/frozen simulation loops must reuse workspace buffers — "
        "no numpy allocations inside their per-step range loops"
    )

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        aliases = _numpy_aliases(module.tree)
        symbols = enclosing_symbols(module.tree)
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            name = func.name.lower()
            if not any(marker in name for marker in _FUSED_MARKERS):
                continue
            for loop in ast.walk(func):
                if isinstance(loop, ast.For) and _is_range_loop(loop):
                    yield from self._check_loop_body(
                        loop, module, aliases, symbols
                    )

    # ------------------------------------------------------------------
    def _check_loop_body(
        self,
        loop: ast.For,
        module: SourceModule,
        aliases: Set[str],
        symbols: Dict[ast.AST, str],
    ) -> Iterator[Finding]:
        for stmt in loop.body + loop.orelse:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                reason = self._classify(node, aliases)
                if reason is not None:
                    yield Finding(
                        rule=self.rule,
                        severity="warning",
                        path=module.relpath,
                        line=node.lineno,
                        symbol=symbols.get(node, ""),
                        message=reason,
                    )

    def _classify(self, call: ast.Call, aliases: Set[str]):
        chain = attribute_chain(call.func)
        if chain is not None:
            head, _, member = chain.partition(".")
            if head in aliases and member:
                member = member.split(".")[0]
                if member in _NUMPY_ALLOCATORS:
                    return (
                        f"np.{member}() allocates a fresh array every loop "
                        "step; hoist it into a reused workspace buffer"
                    )
                if member in _NUMPY_OUT_CAPABLE and not _has_out_keyword(call):
                    return (
                        f"np.{member}() without out= allocates its result "
                        "every loop step; write into a workspace buffer "
                        "with out="
                    )
                return None
        # Method calls: obj.copy() / obj.astype(...) / reductions.
        if isinstance(call.func, ast.Attribute):
            method = call.func.attr
            if method in _ALLOCATING_METHODS and not _has_out_keyword(call):
                return (
                    f".{method}() returns a fresh array every loop step; "
                    "hoist it out of the loop or reuse a workspace buffer"
                )
        return None


__all__ = ["WorkspaceDisciplineChecker"]

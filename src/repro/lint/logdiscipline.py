"""log-discipline: diagnostics flow through structured telemetry loggers.

Library code reports through ``repro.telemetry.get_logger(__name__)``
so every diagnostic is a structured JSON line on stderr, carries its
trace id, and obeys one ``--log-level`` switch.  A bare ``print(...)``
sidesteps all of that — and worse, lands on stdout, which the CLI
reserves for user-facing output and ``--json`` payloads that must stay
machine-parseable.  This rule flags:

- ``print(...)`` calls anywhere except the user-facing surfaces: CLI
  modules (``cli.py`` / ``__main__.py``) and ``benchmarks``/
  ``examples`` trees, whose stdout *is* the product;
- ``logging.getLogger()`` (or an imported ``getLogger()``) with **no
  arguments** — the anonymous root logger escapes the ``repro``
  hierarchy that :func:`repro.telemetry.configure_telemetry` manages;
  pass the module name (``get_logger(__name__)``).

A deliberate print (e.g. a ``__main__`` smoke block) can be annotated
``# lint: disable=log-discipline``.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Iterator, Set

from repro.lint.base import Checker, SourceModule, attribute_chain, enclosing_symbols
from repro.lint.findings import Finding

#: Module basenames whose stdout is the user interface.
_EXEMPT_BASENAMES = {"cli.py", "__main__.py"}

#: Directory names whose whole trees print by design.
_EXEMPT_DIRS = {"benchmarks", "examples"}


def _is_exempt(relpath: str) -> bool:
    parts = PurePosixPath(relpath).parts
    if parts and parts[-1] in _EXEMPT_BASENAMES:
        return True
    return any(part in _EXEMPT_DIRS for part in parts[:-1])


def _getlogger_aliases(tree: ast.Module) -> Set[str]:
    """Local names bound to ``logging.getLogger`` via from-imports."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.ImportFrom)
            and node.level == 0
            and node.module == "logging"
        ):
            for item in node.names:
                if item.name == "getLogger":
                    aliases.add(item.asname or item.name)
    return aliases


class LogDisciplineChecker(Checker):
    rule = "log-discipline"
    description = (
        "diagnostics go through repro.telemetry loggers — no print() "
        "outside CLI/benchmark surfaces, no anonymous getLogger()"
    )

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        if _is_exempt(module.relpath):
            return
        aliases = _getlogger_aliases(module.tree)
        symbols = enclosing_symbols(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            message = self._classify(node, aliases)
            if message is not None:
                yield Finding(
                    rule=self.rule,
                    severity="warning",
                    path=module.relpath,
                    line=node.lineno,
                    symbol=symbols.get(node, ""),
                    message=message,
                )

    # ------------------------------------------------------------------
    def _classify(self, call: ast.Call, aliases: Set[str]):
        if isinstance(call.func, ast.Name) and call.func.id == "print":
            return (
                "print() bypasses structured logging (and stdout belongs "
                "to the CLI); use repro.telemetry.get_logger(__name__)"
            )
        chain = attribute_chain(call.func)
        is_naked_getlogger = chain == "logging.getLogger" or (
            isinstance(call.func, ast.Name) and call.func.id in aliases
        )
        if is_naked_getlogger and not call.args and not call.keywords:
            return (
                "getLogger() without a name returns the anonymous root "
                "logger, outside the 'repro' hierarchy configure_telemetry "
                "manages; pass the module name (get_logger(__name__))"
            )
        return None


__all__ = ["LogDisciplineChecker"]

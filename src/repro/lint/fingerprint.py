"""fingerprint-completeness: stages declare every config field they read.

The artifact cache (`repro.pipeline.store`) is sound only if a stage's
``fields`` tuple names **every** config attribute its computation
depends on — a read outside the tuple means two configs differing on
that attribute alias onto one cached artifact, silently serving the
wrong result (the same bug class as PR 5's prefix collision, but on the
config side).

For each class that declares a ``fields`` tuple and a ``run`` method,
the checker traces attribute reads of the config object:

- directly (``context.config.attr`` and local aliases like
  ``cfg = context.config``);
- through context properties (``context.dataset`` → whatever the
  context class's ``dataset`` property reads from ``self.config``,
  transitively through sibling properties);
- through same-module helper functions that receive the config as an
  argument (``helper(cfg)`` → the helper's reads of that parameter,
  recursively).

Reads the tracer can see but the ``fields`` tuple omits are **errors**.
Declared fields never read *and not inherited from an upstream stage's
declaration* are **info** (they may feed cross-package helpers the
tracer cannot see).  Passing the whole config to a function defined
outside the module marks the stage *escaped*: unused-field analysis is
skipped for it, since any field might be read on the far side.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.base import Checker, SourceModule, attribute_chain
from repro.lint.findings import Finding

#: Attribute names that are access machinery, never config fields.
_NON_FIELD_ATTRS = {"with_overrides", "to_wire", "from_wire"}


class FingerprintCompletenessChecker(Checker):
    rule = "fingerprint-completeness"
    description = (
        "every config attribute a stage (or its helpers) reads must "
        "appear in the stage's `fields` fingerprint tuple"
    )

    def __init__(
        self,
        config_fields: Optional[Set[str]] = None,
        config_module_suffix: str = "core/config.py",
        config_class: str = "SparkXDConfig",
    ):
        #: Known config dataclass fields.  Reads of other attribute
        #: names (helper methods, derived properties) are ignored.  When
        #: ``None``, the set is parsed from ``config_module_suffix`` /
        #: ``config_class`` in the scanned tree.
        self.config_fields = config_fields
        self.config_module_suffix = config_module_suffix
        self.config_class = config_class

    # ------------------------------------------------------------------
    def check_project(self, modules: Sequence[SourceModule]) -> Iterator[Finding]:
        fields = self.config_fields or self._discover_config_fields(modules)
        for module in modules:
            yield from self._check_module(module, fields)

    def _discover_config_fields(self, modules) -> Optional[Set[str]]:
        for module in modules:
            if not module.relpath.endswith(self.config_module_suffix):
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef) and node.name == self.config_class:
                    return {
                        child.target.id
                        for child in node.body
                        if isinstance(child, ast.AnnAssign)
                        and isinstance(child.target, ast.Name)
                    }
        return None

    # ------------------------------------------------------------------
    def _check_module(
        self, module: SourceModule, config_fields: Optional[Set[str]]
    ) -> Iterator[Finding]:
        stages = [
            node
            for node in module.tree.body
            if isinstance(node, ast.ClassDef) and _declared_fields_node(node) is not None
        ]
        if not stages:
            return
        constants = _module_tuple_constants(module.tree)
        helpers = {
            node.name: node
            for node in module.tree.body
            if isinstance(node, ast.FunctionDef)
        }
        contexts = _context_property_reads(module.tree, helpers)
        provides: Dict[str, Tuple[str, ...]] = {}
        declared_by_class: Dict[str, Tuple[str, ...]] = {}
        for cls in stages:
            declared = _resolve_fields(_declared_fields_node(cls), constants)
            declared_by_class[cls.name] = declared
            provided = _class_const(cls, "provides")
            if isinstance(provided, str):
                provides[provided] = declared

        for cls in stages:
            declared = declared_by_class[cls.name]
            run = next(
                (
                    child
                    for child in cls.body
                    if isinstance(child, ast.FunctionDef) and child.name == "run"
                ),
                None,
            )
            if run is None or declared is None:
                continue
            reads, escaped = _trace_run(run, contexts, helpers)
            if config_fields is not None:
                reads = {
                    (attr, line) for attr, line in reads if attr in config_fields
                }
            declared_set = set(declared)
            for attr, line in sorted(reads, key=lambda item: (item[1], item[0])):
                if attr in declared_set or attr in _NON_FIELD_ATTRS:
                    continue
                yield Finding(
                    rule=self.rule,
                    severity="error",
                    path=module.relpath,
                    line=line,
                    symbol=f"{cls.name}.run",
                    message=(
                        f"{cls.name} reads config.{attr} but its `fields` "
                        "tuple does not declare it: two configs differing "
                        f"only on {attr!r} would share one cached artifact; "
                        "add it to the stage's field group (or suppress if "
                        "the read is deliberately fingerprint-neutral)"
                    ),
                )
            if escaped:
                continue  # config handed to cross-module code: any field may be read
            inherited: Set[str] = set()
            requires = _class_const(cls, "requires") or ()
            for requirement in requires:
                inherited.update(provides.get(requirement, ()))
            read_names = {attr for attr, _line in reads}
            fields_node = _declared_fields_node(cls)
            for attr in sorted(set(declared) - read_names - inherited):
                yield Finding(
                    rule=self.rule,
                    severity="info",
                    path=module.relpath,
                    line=fields_node.lineno,
                    symbol=f"{cls.name}.fields",
                    message=(
                        f"{cls.name} declares {attr!r} in `fields` but no "
                        "traceable read uses it; a spurious field splits the "
                        "cache without changing results (it may feed a "
                        "cross-package helper the tracer cannot see)"
                    ),
                )


# ----------------------------------------------------------------------
# Declared-field resolution.


def _declared_fields_node(cls: ast.ClassDef):
    for child in cls.body:
        if isinstance(child, ast.Assign):
            for target in child.targets:
                if isinstance(target, ast.Name) and target.id == "fields":
                    return child
        elif isinstance(child, ast.AnnAssign):
            if (
                isinstance(child.target, ast.Name)
                and child.target.id == "fields"
                and child.value is not None
            ):
                return child
    return None


def _class_const(cls: ast.ClassDef, name: str):
    for child in cls.body:
        value = None
        if isinstance(child, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == name for t in child.targets
            ):
                value = child.value
        elif isinstance(child, ast.AnnAssign):
            if isinstance(child.target, ast.Name) and child.target.id == name:
                value = child.value
        if value is None:
            continue
        try:
            return ast.literal_eval(value)
        except ValueError:
            return None
    return None


def _module_tuple_constants(tree: ast.Module) -> Dict[str, Tuple[str, ...]]:
    """Module-level ``NAME = ("a", ...)`` / ``NAME = OTHER + (...)`` tuples."""
    constants: Dict[str, Tuple[str, ...]] = {}
    for node in tree.body:
        targets: List[ast.Name] = []
        value = None
        if isinstance(node, ast.Assign):
            targets = [t for t in node.targets if isinstance(t, ast.Name)]
            value = node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            targets, value = [node.target], node.value
        if not targets or value is None:
            continue
        resolved = _eval_tuple(value, constants)
        if resolved is not None:
            for target in targets:
                constants[target.id] = resolved
    return constants


def _eval_tuple(node: ast.AST, constants) -> Optional[Tuple[str, ...]]:
    if isinstance(node, (ast.Tuple, ast.List)):
        items: List[str] = []
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                items.append(element.value)
            else:
                return None
        return tuple(items)
    if isinstance(node, ast.Name):
        return constants.get(node.id)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = _eval_tuple(node.left, constants)
        right = _eval_tuple(node.right, constants)
        if left is not None and right is not None:
            return left + right
    return None


def _resolve_fields(node, constants) -> Optional[Tuple[str, ...]]:
    if node is None:
        return None
    return _eval_tuple(node.value, constants)


# ----------------------------------------------------------------------
# Read tracing.

Reads = Set[Tuple[str, int]]  # (config attribute, line of the read)


def _context_property_reads(
    tree: ast.Module, helpers: Dict[str, ast.FunctionDef]
) -> Dict[str, Dict[str, Set[str]]]:
    """Per context class: property name → config attributes it reads.

    A *context class* stores its config as ``self.config`` in
    ``__init__``.  Properties may read each other (``self.other_prop``);
    the closure is taken so a stage touching one property inherits the
    whole dependency set.
    """
    result: Dict[str, Dict[str, Set[str]]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not _stores_config(node):
            continue
        direct: Dict[str, Set[str]] = {}
        references: Dict[str, Set[str]] = {}
        for method in node.body:
            if not isinstance(method, ast.FunctionDef):
                continue
            self_name = _first_arg(method)
            if self_name is None:
                continue
            reads, refs = _method_config_reads(method, self_name, helpers)
            direct[method.name] = {attr for attr, _line in reads}
            references[method.name] = refs
        # Transitive closure over sibling-property references.
        changed = True
        while changed:
            changed = False
            for name, refs in references.items():
                for ref in refs:
                    extra = direct.get(ref, set()) - direct[name]
                    if extra:
                        direct[name] |= extra
                        changed = True
        result[node.name] = direct
    return result


def _stores_config(cls: ast.ClassDef) -> bool:
    for method in cls.body:
        if isinstance(method, ast.FunctionDef) and method.name == "__init__":
            for node in ast.walk(method):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and target.attr == "config"
                            and isinstance(target.value, ast.Name)
                        ):
                            return True
    return False


def _first_arg(fn: ast.FunctionDef) -> Optional[str]:
    args = fn.args.posonlyargs + fn.args.args
    return args[0].arg if args else None


def _method_config_reads(
    method: ast.FunctionDef, self_name: str, helpers, _depth: int = 0
) -> Tuple[Reads, Set[str]]:
    """Config reads inside a context method + sibling attrs it touches."""
    config_exprs = {f"{self_name}.config"}
    # Local aliases: cfg = self.config
    for node in ast.walk(method):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if (
                isinstance(target, ast.Name)
                and attribute_chain(node.value) in config_exprs
            ):
                config_exprs.add(target.id)
    reads: Reads = set()
    refs: Set[str] = set()
    for node in ast.walk(method):
        if isinstance(node, ast.Attribute):
            base = attribute_chain(node.value)
            if base in config_exprs:
                reads.add((node.attr, node.lineno))
            elif base == self_name and node.attr != "config":
                refs.add(node.attr)
        elif isinstance(node, ast.Call):
            reads |= _helper_call_reads(node, config_exprs, helpers, _depth)
    return reads, refs


def _helper_call_reads(
    call: ast.Call, config_exprs: Set[str], helpers, depth: int, seen=None
) -> Reads:
    """Reads caused by passing a config expression into a module helper."""
    if depth > 4:
        return set()
    seen = seen if seen is not None else set()
    if not isinstance(call.func, ast.Name) or call.func.id not in helpers:
        return set()
    helper = helpers[call.func.id]
    if helper.name in seen:
        return set()
    reads: Reads = set()
    params = [a.arg for a in helper.args.posonlyargs + helper.args.args]
    bound: List[str] = []
    for index, arg in enumerate(call.args):
        if attribute_chain(arg) in config_exprs and index < len(params):
            bound.append(params[index])
    for keyword in call.keywords:
        if keyword.arg is not None and attribute_chain(keyword.value) in config_exprs:
            bound.append(keyword.arg)
    for param in bound:
        reads |= _function_param_reads(
            helper, param, helpers, depth + 1, seen | {helper.name}
        )
    # Reads are attributed to the call site: the fingerprint belongs to
    # the stage whose run triggered them.
    return {(attr, call.lineno) for attr, _line in reads}


def _function_param_reads(
    fn: ast.FunctionDef, param: str, helpers, depth: int, seen
) -> Reads:
    config_exprs = {param}
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if (
                isinstance(target, ast.Name)
                and attribute_chain(node.value) in config_exprs
            ):
                config_exprs.add(target.id)
    reads: Reads = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Attribute):
            if attribute_chain(node.value) in config_exprs:
                reads.add((node.attr, node.lineno))
        elif isinstance(node, ast.Call):
            reads |= _helper_call_reads(node, config_exprs, helpers, depth, seen)
    return reads


def _trace_run(
    run: ast.FunctionDef,
    contexts: Dict[str, Dict[str, Set[str]]],
    helpers: Dict[str, ast.FunctionDef],
) -> Tuple[Reads, bool]:
    """All config reads reachable from one stage ``run`` + escape flag."""
    args = [a.arg for a in run.args.posonlyargs + run.args.args]
    if len(args) < 2:
        return set(), False
    context_name = args[1]
    config_exprs = {f"{context_name}.config"}
    for node in ast.walk(run):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if (
                isinstance(target, ast.Name)
                and attribute_chain(node.value) in config_exprs
            ):
                config_exprs.add(target.id)
    # Merge the property maps of every context class in the module: the
    # run signature is untyped, so the class cannot be pinned down —
    # unioning is conservative in the right direction (more reads seen).
    properties: Dict[str, Set[str]] = {}
    for mapping in contexts.values():
        for prop, attrs in mapping.items():
            properties.setdefault(prop, set()).update(attrs)

    reads: Reads = set()
    escaped = False
    for node in ast.walk(run):
        if isinstance(node, ast.Attribute):
            base = attribute_chain(node.value)
            if base in config_exprs and node.attr != "config":
                reads.add((node.attr, node.lineno))
            elif base == context_name and node.attr != "config":
                for attr in properties.get(node.attr, ()):
                    reads.add((attr, node.lineno))
        elif isinstance(node, ast.Call):
            reads |= _helper_call_reads(node, config_exprs, helpers, 0)
            if not isinstance(node.func, ast.Name) or node.func.id not in helpers:
                # Config object passed whole into code the tracer cannot
                # follow (imported function, method call)?
                for arg in list(node.args) + [k.value for k in node.keywords]:
                    if attribute_chain(arg) in config_exprs:
                        escaped = True
    return reads, escaped


__all__ = ["FingerprintCompletenessChecker"]

"""rng-discipline: all randomness flows through seeded generators.

The reproduction's bit-exactness claims (cache fingerprints that cover
"everything that influenced the artifact, including its recorded RNG
state" — see ``repro.pipeline.stages``) hold only if no code path draws
from process-global or OS-entropy-seeded randomness.  This rule flags:

- ``np.random.<anything>(...)`` global-state calls (``seed``, ``rand``,
  ``shuffle``, …) and the legacy ``RandomState`` constructor;
- ``np.random.default_rng()`` with **no arguments** — OS-entropy
  seeding, unreproducible by definition (pass a seed, restore a
  recorded state, or route through :func:`repro.rng.ensure_rng`);
- the stdlib ``random`` module (bare ``random.random()`` or
  ``from random import shuffle`` style usage).

Type references (``np.random.Generator`` annotations) are never calls
and are not flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator

from repro.lint.base import Checker, SourceModule, attribute_chain, enclosing_symbols
from repro.lint.findings import Finding

#: ``numpy.random`` attributes that are legitimate when *called* —
#: everything else on the module is global-state or legacy API.
_SANCTIONED_NUMPY_CALLS = {"default_rng", "Generator", "SeedSequence"}

#: Generator-producing calls that are only reproducible when given a
#: seed (or wrapped state).
_SEED_REQUIRED = {"default_rng", "SeedSequence"}


class RngDisciplineChecker(Checker):
    rule = "rng-discipline"
    description = (
        "randomness must flow through seeded numpy Generators, never "
        "global state, legacy RandomState, or the stdlib random module"
    )

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        aliases = _import_aliases(module.tree)
        symbols = enclosing_symbols(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attribute_chain(node.func)
            if chain is None:
                continue
            resolved = _resolve(chain, aliases)
            finding = self._classify(resolved, node, module, symbols.get(node, ""))
            if finding is not None:
                yield finding

    # ------------------------------------------------------------------
    def _classify(self, resolved, call, module, symbol):
        if resolved is None:
            return None
        if resolved.startswith("numpy.random."):
            member = resolved[len("numpy.random.") :]
            head = member.split(".", 1)[0]
            if head not in _SANCTIONED_NUMPY_CALLS:
                return self._finding(
                    module,
                    call,
                    symbol,
                    f"numpy.random.{member}() uses numpy's global/legacy RNG "
                    "state; draw from a seeded np.random.default_rng(...) "
                    "Generator instead",
                )
            if head in _SEED_REQUIRED and not call.args and not call.keywords:
                return self._finding(
                    module,
                    call,
                    symbol,
                    f"numpy.random.{head}() without a seed draws OS entropy; "
                    "pass a seed (or use repro.rng.ensure_rng) so runs are "
                    "reproducible",
                )
            return None
        if resolved == "random" or resolved.startswith("random."):
            member = resolved.partition(".")[2] or "<module>"
            return self._finding(
                module,
                call,
                symbol,
                f"stdlib random.{member}() is process-global and unseeded "
                "here; use a seeded np.random.default_rng(...) Generator",
            )
        return None

    def _finding(self, module, node, symbol, message) -> Finding:
        return Finding(
            rule=self.rule,
            severity="error",
            path=module.relpath,
            line=node.lineno,
            symbol=symbol,
            message=message,
        )


# ----------------------------------------------------------------------


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name → canonical dotted module/member for RNG-relevant imports."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name in ("numpy", "numpy.random", "random"):
                    aliases[(item.asname or item.name).split(".")[0]] = (
                        item.name if item.asname else item.name.split(".")[0]
                    )
                    if item.asname:
                        aliases[item.asname] = item.name
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module == "numpy":
                for item in node.names:
                    if item.name == "random":
                        aliases[item.asname or "random"] = "numpy.random"
            elif node.module == "numpy.random":
                for item in node.names:
                    aliases[item.asname or item.name] = f"numpy.random.{item.name}"
            elif node.module == "random":
                for item in node.names:
                    aliases[item.asname or item.name] = f"random.{item.name}"
    return aliases


def _resolve(chain: str, aliases: Dict[str, str]):
    """Canonicalise a dotted call chain through the import aliases."""
    head, _, rest = chain.partition(".")
    target = aliases.get(head)
    if target is None:
        return None
    return f"{target}.{rest}" if rest else target


__all__ = ["RngDisciplineChecker"]

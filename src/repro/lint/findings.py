"""Finding records, suppression comments and the committed baseline.

A :class:`Finding` is one rule violation anchored to a file and line.
Its :attr:`~Finding.identity` deliberately excludes the line number, so
a baseline entry survives unrelated edits that shift code around; two
findings with the same identity on one file are disambiguated by an
occurrence counter, never by position.

Suppression is per line: a violation whose line carries a
``# lint: disable=RULE`` (or ``disable=RULE1,RULE2``, or
``disable=all``) comment is dropped before reporting.  The baseline
file is the *bulk* form of the same idea — a committed JSON list of
finding identities that are accepted for now; ``repro lint --check``
fails only on findings *not* in it.
"""

from __future__ import annotations

import json
import re
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Set, Tuple, Union

#: Severity ladder, most severe first.  ``error`` and ``warning``
#: findings gate ``--check``; ``info`` findings are advisory only.
SEVERITIES = ("error", "warning", "info")

#: Severities that fail a ``--check`` run when not baselined.
GATING_SEVERITIES = frozenset({"error", "warning"})

BASELINE_VERSION = 1

_SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\- ]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at ``path:line``."""

    rule: str
    severity: str
    path: str  # posix path relative to the linted root
    line: int
    message: str
    #: Stable anchor within the file (``Class.method``, op name, …) —
    #: part of the identity so baselines survive line-number churn.
    symbol: str = ""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r}; choose from {SEVERITIES}"
            )

    @property
    def identity(self) -> str:
        """Line-free identity used by suppression baselines."""
        return f"{self.path}::{self.rule}::{self.symbol}::{self.message}"

    @property
    def gating(self) -> bool:
        return self.severity in GATING_SEVERITIES

    def sort_key(self) -> Tuple:
        return (
            SEVERITIES.index(self.severity),
            self.path,
            self.line,
            self.rule,
            self.message,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
            "identity": self.identity,
        }

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.severity}: [{self.rule}] {self.message}"


# ----------------------------------------------------------------------
# Suppression comments.


def parse_suppressions(text: str) -> Dict[int, Set[str]]:
    """``line number -> suppressed rule names`` from ``# lint:`` comments.

    Regex-over-lines is deliberate: it sees comments inside decorators
    and multi-line calls where ``ast`` has no node per physical line.
    A rule list of ``all`` suppresses every rule on that line.
    """
    suppressed: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
        if rules:
            suppressed[lineno] = rules
    return suppressed


def is_suppressed(finding: Finding, suppressions: Dict[int, Set[str]]) -> bool:
    rules = suppressions.get(finding.line)
    if not rules:
        return False
    return finding.rule in rules or "all" in rules


# ----------------------------------------------------------------------
# Baseline file.


@dataclass
class Baseline:
    """Accepted finding identities (a multiset: duplicates count)."""

    identities: Counter = field(default_factory=Counter)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(payload, dict) or "findings" not in payload:
            raise ValueError(
                f"baseline {path} is not a lint baseline "
                "(expected a JSON object with a 'findings' list)"
            )
        return cls(identities=Counter(str(i) for i in payload["findings"]))

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(identities=Counter(f.identity for f in findings))

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        payload = {
            "version": BASELINE_VERSION,
            "findings": sorted(self.identities.elements()),
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return path

    def new_findings(self, findings: Sequence[Finding]) -> List[Finding]:
        """The findings not covered by this baseline (multiset diff)."""
        budget = Counter(self.identities)
        fresh: List[Finding] = []
        for finding in sorted(findings, key=Finding.sort_key):
            if budget[finding.identity] > 0:
                budget[finding.identity] -= 1
            else:
                fresh.append(finding)
        return fresh


__all__ = [
    "Baseline",
    "Finding",
    "GATING_SEVERITIES",
    "SEVERITIES",
    "is_suppressed",
    "parse_suppressions",
]

"""``repro.lint`` — AST-based invariant checks for this codebase.

The repo's correctness rests on conventions no general-purpose tool
knows about: stage ``fields`` tuples must cover every config read
(cache soundness), randomness must flow through seeded generators
(bit-exact reproduction), ``self._lock``-guarded state must stay
guarded (the threaded coordinator), both ends of the cluster wire
protocol must agree on the ``op`` vocabulary, fused simulation loops
must stay allocation-free, and diagnostics must flow through the
structured telemetry loggers rather than ``print``.  Each is a
project-specific static pass here — run them all with ``repro lint``
(see ``docs/lint.md``).

The linted code is parsed, never imported, so the checkers work on
broken branches and deliberate-violation fixtures alike.
"""

from repro.lint.base import (
    Checker,
    ParseFailure,
    SourceModule,
    load_project,
    load_source_module,
)
from repro.lint.findings import (
    Baseline,
    Finding,
    GATING_SEVERITIES,
    SEVERITIES,
    is_suppressed,
    parse_suppressions,
)
from repro.lint.fingerprint import FingerprintCompletenessChecker
from repro.lint.locks import LockDisciplineChecker
from repro.lint.logdiscipline import LogDisciplineChecker
from repro.lint.rng import RngDisciplineChecker
from repro.lint.runner import LintReport, REPORT_VERSION, default_checkers, run_lint
from repro.lint.wire import ProtocolConsistencyChecker
from repro.lint.workspace import WorkspaceDisciplineChecker

__all__ = [
    "Baseline",
    "Checker",
    "Finding",
    "FingerprintCompletenessChecker",
    "GATING_SEVERITIES",
    "LintReport",
    "LockDisciplineChecker",
    "LogDisciplineChecker",
    "ParseFailure",
    "ProtocolConsistencyChecker",
    "REPORT_VERSION",
    "RngDisciplineChecker",
    "SEVERITIES",
    "SourceModule",
    "WorkspaceDisciplineChecker",
    "default_checkers",
    "is_suppressed",
    "load_project",
    "load_source_module",
    "parse_suppressions",
    "run_lint",
]

"""protocol-consistency: every wire ``op`` has both ends implemented.

The cluster line protocol is stringly typed: clients emit
``{"op": "lease", ...}`` dicts and servers dispatch on ``op ==
"lease"`` comparisons.  Nothing but this rule connects the two — a
typo'd or half-added op surfaces only at runtime as an ``unknown op``
error reply (or as a handler no client can ever reach).

There are now two dispatch tables: the coordinator's
(``cluster/coordinator.py``) and the worker's peer artifact server
(``cluster/worker.py`` — ``peer_get``/``peer_has``), and a handler
module can itself emit ops (the worker both serves peers and leases
jobs).  Both directions are checked across all of them:

- an op **emitted** anywhere under ``cluster/`` with no dispatch
  handling it is an *error* (the request can never succeed);
- a **handler** whose op no *other* module emits is a *warning* (it
  may serve out-of-tree tooling, but more often it is dead or drifted
  protocol; a module "emitting" only to its own dispatch proves
  nothing about the wire).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Sequence, Set, Tuple

from repro.lint.base import (
    Checker,
    SourceModule,
    attribute_chain,
    const_str,
    enclosing_symbols,
)
from repro.lint.findings import Finding


class ProtocolConsistencyChecker(Checker):
    rule = "protocol-consistency"
    description = (
        "ops emitted under cluster/ must have a dispatch handler "
        "(coordinator or worker peer server), and handlers must have an "
        "in-tree emitter outside their own module"
    )

    def __init__(
        self,
        handler_suffixes: Sequence[str] = (
            "cluster/coordinator.py",
            "cluster/worker.py",
        ),
        emitter_dir: str = "cluster/",
        op_key: str = "op",
    ):
        self.handler_suffixes = tuple(handler_suffixes)
        self.emitter_dir = emitter_dir
        self.op_key = op_key

    def _is_handler(self, module: SourceModule) -> bool:
        return any(module.relpath.endswith(s) for s in self.handler_suffixes)

    def _is_emitter(self, module: SourceModule) -> bool:
        # Handler modules emit too: the worker serves peer ops while
        # emitting lease/heartbeat/... requests of its own.
        return self.emitter_dir in module.relpath

    # ------------------------------------------------------------------
    def check_project(self, modules: Sequence[SourceModule]) -> Iterator[Finding]:
        handlers = [m for m in modules if self._is_handler(m)]
        emitters = [m for m in modules if self._is_emitter(m)]
        if not handlers:
            return  # nothing to cross-check against (fixture trees, subsets)
        emitted: Dict[str, List[Tuple[SourceModule, int, str]]] = {}
        for module in emitters:
            for op, line, symbol in _emitted_ops(module, self.op_key):
                emitted.setdefault(op, []).append((module, line, symbol))
        handled: Dict[str, List[Tuple[SourceModule, int, str]]] = {}
        for module in handlers:
            for op, line, symbol in _handled_ops(module, self.op_key):
                handled.setdefault(op, []).append((module, line, symbol))

        for op in sorted(set(emitted) - set(handled)):
            for module, line, symbol in emitted[op]:
                yield Finding(
                    rule=self.rule,
                    severity="error",
                    path=module.relpath,
                    line=line,
                    symbol=symbol or op,
                    message=(
                        f"op {op!r} is emitted here but no coordinator or "
                        "worker dispatch handles it; the request can only "
                        "produce an 'unknown op' error reply"
                    ),
                )
        for op in sorted(handled):
            for module, line, symbol in handled[op]:
                # An emitter inside the handler's own module proves
                # nothing (it never crosses the wire to this dispatch);
                # require one anywhere else in the tree.
                external = [
                    entry for entry in emitted.get(op, ())
                    if entry[0] is not module
                ]
                if external:
                    continue
                yield Finding(
                    rule=self.rule,
                    severity="warning",
                    path=module.relpath,
                    line=line,
                    symbol=symbol or op,
                    message=(
                        f"dispatch handles op {op!r} but no in-tree "
                        "client emits it; dead protocol surface drifts "
                        "silently (add an emitter, or suppress if it serves "
                        "external tooling)"
                    ),
                )


# ----------------------------------------------------------------------


def _emitted_ops(module: SourceModule, op_key: str):
    """``(op, line, scope)`` for every ``{"op": "<const>"}`` dict literal."""
    symbols = enclosing_symbols(module.tree)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Dict):
            continue
        for key, value in zip(node.keys, node.values):
            if key is not None and const_str(key) == op_key:
                op = const_str(value)
                if op is not None:
                    yield op, node.lineno, symbols.get(node, "")


def _handled_ops(module: SourceModule, op_key: str):
    """``(op, line, scope)`` for every ``op == "<const>"`` comparison.

    The dispatch variable is recognised either by its name being the op
    key itself (``op == "lease"``) or by being assigned from
    ``<payload>.get("op")`` earlier in the module.
    """
    symbols = enclosing_symbols(module.tree)
    op_names: Set[str] = {op_key}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = node.value
            if (
                isinstance(value, ast.Call)
                and (attribute_chain(value.func) or "").endswith(".get")
                and value.args
                and const_str(value.args[0]) == op_key
            ):
                op_names.add(target.id)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Compare) or len(node.ops) != 1:
            continue
        if not isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
            continue
        sides = [node.left, node.comparators[0]]
        names = [s for s in sides if isinstance(s, ast.Name) and s.id in op_names]
        consts = [s for s in sides if const_str(s) is not None]
        if names and consts:
            yield const_str(consts[0]), node.lineno, symbols.get(node, "")
    # `payload.get("op") == "x"` inline form.
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Compare) or len(node.ops) != 1:
            continue
        if not isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
            continue
        sides = [node.left, node.comparators[0]]
        calls = [
            s
            for s in sides
            if isinstance(s, ast.Call)
            and (attribute_chain(s.func) or "").endswith(".get")
            and s.args
            and const_str(s.args[0]) == op_key
        ]
        consts = [s for s in sides if const_str(s) is not None]
        if calls and consts:
            yield const_str(consts[0]), node.lineno, symbols.get(node, "")


__all__ = ["ProtocolConsistencyChecker"]

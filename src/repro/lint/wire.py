"""protocol-consistency: every wire ``op`` has both ends implemented.

The cluster line protocol is stringly typed: clients emit
``{"op": "lease", ...}`` dicts and servers dispatch on ``op ==
"lease"`` comparisons.  Nothing but this rule connects the two — a
typo'd or half-added op surfaces only at runtime as an ``unknown op``
error reply (or as a handler no client can ever reach).

There are now two dispatch tables: the coordinator's
(``cluster/coordinator.py``) and the worker's peer artifact server
(``cluster/worker.py`` — ``peer_get``/``peer_has``), and a handler
module can itself emit ops (the worker both serves peers and leases
jobs).  Both directions are checked across all of them:

- an op **emitted** anywhere under ``cluster/`` with no dispatch
  handling it is an *error* (the request can never succeed);
- a **handler** whose op no *other* module emits is a *warning* (it
  may serve out-of-tree tooling, but more often it is dead or drifted
  protocol; a module "emitting" only to its own dispatch proves
  nothing about the wire).

The HTTP control plane (``cluster/http_api.py``) is the same trap in a
different syntax: ``ServiceClient`` emits ``http_request("GET",
f"/sweeps/{id}")`` strings while the server dispatches on a ``ROUTES``
table of ``(method, path_template, handler_name)`` rows.  The rule
cross-checks that table too:

- a client path **emitted** (``.http_request(METHOD, PATH)``, constant
  or f-string — placeholders match template parameters) with no
  ``ROUTES`` row is an *error* (guaranteed 404);
- a ``ROUTES`` row no client emits is a *warning* (unlike ops, the
  client lives in the same module as the table, so same-module
  emission counts);
- a ``ROUTES`` row naming a handler with no ``_route_<name>`` function
  in the module is an *error* (dispatch would die at request time).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.base import (
    Checker,
    SourceModule,
    attribute_chain,
    const_str,
    enclosing_symbols,
)
from repro.lint.findings import Finding


class ProtocolConsistencyChecker(Checker):
    rule = "protocol-consistency"
    description = (
        "ops emitted under cluster/ must have a dispatch handler "
        "(coordinator or worker peer server), and handlers must have an "
        "in-tree emitter outside their own module"
    )

    def __init__(
        self,
        handler_suffixes: Sequence[str] = (
            "cluster/coordinator.py",
            "cluster/worker.py",
        ),
        emitter_dir: str = "cluster/",
        op_key: str = "op",
        http_suffix: str = "cluster/http_api.py",
    ):
        self.handler_suffixes = tuple(handler_suffixes)
        self.emitter_dir = emitter_dir
        self.op_key = op_key
        self.http_suffix = http_suffix

    def _is_handler(self, module: SourceModule) -> bool:
        return any(module.relpath.endswith(s) for s in self.handler_suffixes)

    def _is_emitter(self, module: SourceModule) -> bool:
        # Handler modules emit too: the worker serves peer ops while
        # emitting lease/heartbeat/... requests of its own.
        return self.emitter_dir in module.relpath

    # ------------------------------------------------------------------
    def check_project(self, modules: Sequence[SourceModule]) -> Iterator[Finding]:
        yield from self._check_ops(modules)
        yield from self._check_http_routes(modules)

    def _check_ops(self, modules: Sequence[SourceModule]) -> Iterator[Finding]:
        handlers = [m for m in modules if self._is_handler(m)]
        emitters = [m for m in modules if self._is_emitter(m)]
        if not handlers:
            return  # nothing to cross-check against (fixture trees, subsets)
        emitted: Dict[str, List[Tuple[SourceModule, int, str]]] = {}
        for module in emitters:
            for op, line, symbol in _emitted_ops(module, self.op_key):
                emitted.setdefault(op, []).append((module, line, symbol))
        handled: Dict[str, List[Tuple[SourceModule, int, str]]] = {}
        for module in handlers:
            for op, line, symbol in _handled_ops(module, self.op_key):
                handled.setdefault(op, []).append((module, line, symbol))

        for op in sorted(set(emitted) - set(handled)):
            for module, line, symbol in emitted[op]:
                yield Finding(
                    rule=self.rule,
                    severity="error",
                    path=module.relpath,
                    line=line,
                    symbol=symbol or op,
                    message=(
                        f"op {op!r} is emitted here but no coordinator or "
                        "worker dispatch handles it; the request can only "
                        "produce an 'unknown op' error reply"
                    ),
                )
        for op in sorted(handled):
            for module, line, symbol in handled[op]:
                # An emitter inside the handler's own module proves
                # nothing (it never crosses the wire to this dispatch);
                # require one anywhere else in the tree.
                external = [
                    entry for entry in emitted.get(op, ())
                    if entry[0] is not module
                ]
                if external:
                    continue
                yield Finding(
                    rule=self.rule,
                    severity="warning",
                    path=module.relpath,
                    line=line,
                    symbol=symbol or op,
                    message=(
                        f"dispatch handles op {op!r} but no in-tree "
                        "client emits it; dead protocol surface drifts "
                        "silently (add an emitter, or suppress if it serves "
                        "external tooling)"
                    ),
                )

    def _check_http_routes(
        self, modules: Sequence[SourceModule]
    ) -> Iterator[Finding]:
        route_modules = [
            m for m in modules if m.relpath.endswith(self.http_suffix)
        ]
        if not route_modules:
            return
        routes: Dict[Tuple[str, str], List[Tuple[SourceModule, int, str]]] = {}
        for module in route_modules:
            for method, path, handler, line in _http_routes(module.tree):
                key = (method.upper(), _normalize_http_path(path))
                routes.setdefault(key, []).append((module, line, handler))
        emitted: Dict[Tuple[str, str], List[Tuple[SourceModule, int, str]]] = {}
        for module in modules:
            if self.emitter_dir not in module.relpath:
                continue
            for method, path, line, symbol in _emitted_http_requests(module.tree):
                key = (method.upper(), _normalize_http_path(path))
                emitted.setdefault(key, []).append((module, line, symbol))

        for key in sorted(set(emitted) - set(routes)):
            method, path = key
            for module, line, symbol in emitted[key]:
                yield Finding(
                    rule=self.rule,
                    severity="error",
                    path=module.relpath,
                    line=line,
                    symbol=symbol or path,
                    message=(
                        f"HTTP request {method} {path!r} is emitted here "
                        "but matches no row of the control-plane ROUTES "
                        "table; the call can only produce a 404"
                    ),
                )
        for key in sorted(routes):
            method, path = key
            for module, line, handler in routes[key]:
                # Unlike line-protocol ops, the route table and the
                # client live in the same module by design — any
                # in-tree emission (same module included) matches.
                if key not in emitted:
                    yield Finding(
                        rule=self.rule,
                        severity="warning",
                        path=module.relpath,
                        line=line,
                        symbol=handler or path,
                        message=(
                            f"ROUTES row {method} {path!r} has no in-tree "
                            "client emitting it; dead control-plane surface "
                            "drifts silently (add a ServiceClient helper, or "
                            "suppress if it serves external tooling)"
                        ),
                    )
                function_name = f"_route_{handler}"
                if function_name not in _defined_functions(module.tree):
                    yield Finding(
                        rule=self.rule,
                        severity="error",
                        path=module.relpath,
                        line=line,
                        symbol=handler or path,
                        message=(
                            f"ROUTES row {method} {path!r} names handler "
                            f"{handler!r} but the module defines no "
                            f"{function_name}(); dispatch would fail at "
                            "request time"
                        ),
                    )


# ----------------------------------------------------------------------


def _emitted_ops(module: SourceModule, op_key: str):
    """``(op, line, scope)`` for every ``{"op": "<const>"}`` dict literal."""
    symbols = enclosing_symbols(module.tree)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Dict):
            continue
        for key, value in zip(node.keys, node.values):
            if key is not None and const_str(key) == op_key:
                op = const_str(value)
                if op is not None:
                    yield op, node.lineno, symbols.get(node, "")


def _handled_ops(module: SourceModule, op_key: str):
    """``(op, line, scope)`` for every ``op == "<const>"`` comparison.

    The dispatch variable is recognised either by its name being the op
    key itself (``op == "lease"``) or by being assigned from
    ``<payload>.get("op")`` earlier in the module.
    """
    symbols = enclosing_symbols(module.tree)
    op_names: Set[str] = {op_key}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = node.value
            if (
                isinstance(value, ast.Call)
                and (attribute_chain(value.func) or "").endswith(".get")
                and value.args
                and const_str(value.args[0]) == op_key
            ):
                op_names.add(target.id)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Compare) or len(node.ops) != 1:
            continue
        if not isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
            continue
        sides = [node.left, node.comparators[0]]
        names = [s for s in sides if isinstance(s, ast.Name) and s.id in op_names]
        consts = [s for s in sides if const_str(s) is not None]
        if names and consts:
            yield const_str(consts[0]), node.lineno, symbols.get(node, "")
    # `payload.get("op") == "x"` inline form.
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Compare) or len(node.ops) != 1:
            continue
        if not isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
            continue
        sides = [node.left, node.comparators[0]]
        calls = [
            s
            for s in sides
            if isinstance(s, ast.Call)
            and (attribute_chain(s.func) or "").endswith(".get")
            and s.args
            and const_str(s.args[0]) == op_key
        ]
        consts = [s for s in sides if const_str(s) is not None]
        if calls and consts:
            yield const_str(consts[0]), node.lineno, symbols.get(node, "")


# ----------------------------------------------------------------------
# HTTP control-plane extraction.


def _normalize_http_path(path: str) -> str:
    """Collapse template parameters and f-string holes to ``{}``.

    ``/sweeps/{sweep_id}/cancel`` (route template) and the client's
    ``f"/sweeps/{sweep_id}/cancel"`` (already hole-collapsed by
    :func:`_fstring_path`) both normalise to ``/sweeps/{}/cancel``.
    """
    return re.sub(r"\{[^{}/]*\}", "{}", path)


def _fstring_path(node: ast.JoinedStr) -> Optional[str]:
    """An f-string as a path pattern: interpolations become ``{}``."""
    parts: List[str] = []
    for value in node.values:
        if isinstance(value, ast.FormattedValue):
            parts.append("{}")
            continue
        text = const_str(value)
        if text is None:
            return None
        parts.append(text)
    return "".join(parts)


def _path_pattern(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.JoinedStr):
        return _fstring_path(node)
    return const_str(node)


def _http_routes(tree: ast.AST):
    """``(method, path, handler, line)`` rows of a ``ROUTES`` table.

    Recognises plain and annotated assignments to a name ending in
    ``ROUTES`` whose value is a tuple/list of 3-tuples of string
    constants.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        else:
            continue
        if not (isinstance(target, ast.Name) and target.id.endswith("ROUTES")):
            continue
        if not isinstance(value, (ast.Tuple, ast.List)):
            continue
        for row in value.elts:
            if not isinstance(row, (ast.Tuple, ast.List)) or len(row.elts) != 3:
                continue
            method, path, handler = (const_str(e) for e in row.elts)
            if method is not None and path is not None and handler is not None:
                yield method, path, handler, row.lineno


def _emitted_http_requests(tree: ast.AST):
    """``(method, path, line, scope)`` for ``http_request(...)`` calls.

    Matches direct and attribute calls (``self.http_request`` /
    ``client.http_request``) whose first two arguments are a constant
    method string and a constant-or-f-string path.
    """
    symbols = enclosing_symbols(tree)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or len(node.args) < 2:
            continue
        if isinstance(node.func, ast.Name):
            name = node.func.id
        else:
            name = (attribute_chain(node.func) or "").rpartition(".")[2]
        if name != "http_request":
            continue
        method = const_str(node.args[0])
        path = _path_pattern(node.args[1])
        if method is not None and path is not None:
            yield method, path, node.lineno, symbols.get(node, "")


def _defined_functions(tree: ast.AST) -> Set[str]:
    """Every function/method name defined anywhere in the module."""
    return {
        node.name
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


__all__ = ["ProtocolConsistencyChecker"]

"""Run the checkers over a tree and fold in suppressions + baseline."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.lint.base import (
    Checker,
    ParseFailure,
    iter_python_files,
    load_source_module,
)
from repro.lint.findings import Baseline, Finding, is_suppressed
from repro.lint.fingerprint import FingerprintCompletenessChecker
from repro.lint.locks import LockDisciplineChecker
from repro.lint.logdiscipline import LogDisciplineChecker
from repro.lint.rng import RngDisciplineChecker
from repro.lint.wire import ProtocolConsistencyChecker
from repro.lint.workspace import WorkspaceDisciplineChecker

#: JSON report schema version (bump on breaking shape changes).
REPORT_VERSION = 1


def default_checkers() -> Tuple[Checker, ...]:
    """The six project invariant checkers, in reporting order."""
    return (
        FingerprintCompletenessChecker(),
        RngDisciplineChecker(),
        LockDisciplineChecker(),
        ProtocolConsistencyChecker(),
        WorkspaceDisciplineChecker(),
        LogDisciplineChecker(),
    )


@dataclass
class LintReport:
    """Everything one lint pass produced."""

    root: str
    files_scanned: int
    rules: Tuple[str, ...]
    #: Findings that survived suppression comments, sorted by severity.
    findings: List[Finding] = field(default_factory=list)
    #: Subset of :attr:`findings` not covered by the baseline.
    new_findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    baseline_path: Optional[str] = None

    @property
    def gating(self) -> List[Finding]:
        """The new error/warning findings that fail a ``--check`` run."""
        return [f for f in self.new_findings if f.gating]

    @property
    def ok(self) -> bool:
        return not self.gating

    def counts_by_rule(self) -> Dict[str, int]:
        counts = {rule: 0 for rule in self.rules}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def counts_by_severity(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.severity] = counts.get(finding.severity, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": REPORT_VERSION,
            "root": self.root,
            "files_scanned": self.files_scanned,
            "rules": list(self.rules),
            "counts_by_rule": self.counts_by_rule(),
            "counts_by_severity": self.counts_by_severity(),
            "total": len(self.findings),
            "new": len(self.new_findings),
            "gating": len(self.gating),
            "suppressed": self.suppressed,
            "baseline": self.baseline_path,
            "ok": self.ok,
            "findings": [f.to_dict() for f in self.findings],
            "new_findings": [f.identity for f in self.new_findings],
        }


def run_lint(
    root: Union[str, Path],
    checkers: Optional[Sequence[Checker]] = None,
    baseline: Optional[Union[str, Path, Baseline]] = None,
    paths: Optional[Sequence[Union[str, Path]]] = None,
) -> LintReport:
    """Lint every python file under ``root`` (or just ``paths``).

    Suppression comments are applied first (those findings vanish into
    the ``suppressed`` count), then the baseline splits what remains
    into known and new.  Parse failures become findings themselves
    (rule ``parse-error``) rather than aborting the pass.
    """
    root = Path(root)
    checkers = tuple(checkers) if checkers is not None else default_checkers()
    modules = []
    findings: List[Finding] = []
    files = (
        [Path(p) for p in paths] if paths is not None else iter_python_files(root)
    )
    for file_path in files:
        try:
            modules.append(load_source_module(file_path, root))
        except ParseFailure as failure:
            findings.append(
                Finding(
                    rule="parse-error",
                    severity="error",
                    path=failure.relpath,
                    line=failure.lineno,
                    message=str(failure),
                )
            )
    for checker in checkers:
        findings.extend(checker.check_project(modules))

    kept: List[Finding] = []
    suppressed = 0
    suppressions_by_path = {m.relpath: m.suppressions for m in modules}
    for finding in findings:
        if is_suppressed(finding, suppressions_by_path.get(finding.path, {})):
            suppressed += 1
        else:
            kept.append(finding)
    kept.sort(key=Finding.sort_key)

    baseline_path: Optional[str] = None
    if isinstance(baseline, Baseline):
        resolved = baseline
    elif baseline is not None:
        baseline_path = str(baseline)
        resolved = Baseline.load(baseline)
    else:
        resolved = Baseline()
    new = resolved.new_findings(kept)

    return LintReport(
        root=str(root),
        files_scanned=len(modules),
        rules=tuple(c.rule for c in checkers),
        findings=kept,
        new_findings=new,
        suppressed=suppressed,
        baseline_path=baseline_path,
    )


__all__ = ["LintReport", "REPORT_VERSION", "default_checkers", "run_lint"]

"""DRAM refresh modelling.

DRAM cells leak and must be refreshed every ``tREFW`` (64 ms for
LPDDR3).  Refresh is a background energy component that the paper's
access-energy comparison does not isolate, but any system-level user of
this library will ask about it, and reduced-voltage operation interacts
with it twice:

- refresh *energy per operation* scales like any other array charge
  (~V²);
- cells leak relatively faster at reduced voltage (less stored charge
  for the same leakage current), so conservative operation shortens the
  refresh window — modelled by the same derating factor the timing
  model uses.

The model follows the standard all-bank auto-refresh scheme: every
``t_refi`` (refresh interval = tREFW / 8192 rows-per-command batch) the
device spends ``t_rfc`` refreshing, drawing an elevated refresh current.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.specs import DramSpec
from repro.dram.voltage import ArrayVoltageModel


@dataclass(frozen=True)
class RefreshParameters:
    """Refresh timing/current constants (LPDDR3-class defaults)."""

    t_refw_ms: float = 64.0  # refresh window: every cell within this
    commands_per_window: int = 8192  # auto-refresh commands per window
    t_rfc_ns: float = 130.0  # refresh cycle time per command
    idd5_ma: float = 30.0  # refresh burst current

    def validate(self) -> None:
        if self.t_refw_ms <= 0 or self.commands_per_window <= 0:
            raise ValueError("refresh window and command count must be > 0")
        if self.t_rfc_ns <= 0 or self.idd5_ma <= 0:
            raise ValueError("t_rfc and idd5 must be > 0")

    @property
    def t_refi_ns(self) -> float:
        """Average interval between auto-refresh commands."""
        return self.t_refw_ms * 1e6 / self.commands_per_window


class RefreshModel:
    """Refresh energy and bandwidth overhead at a given supply voltage."""

    def __init__(
        self,
        spec: DramSpec,
        parameters: RefreshParameters | None = None,
        voltage_model: ArrayVoltageModel | None = None,
    ):
        spec.validate()
        self.spec = spec
        self.parameters = parameters or RefreshParameters()
        self.parameters.validate()
        self.voltage_model = voltage_model or ArrayVoltageModel(
            v_nominal=spec.electrical.v_nominal_volts
        )
        self._v_nom = spec.electrical.v_nominal_volts

    def refresh_window_ms(self, v_supply: float) -> float:
        """Retention-safe refresh window, shortened at reduced voltage."""
        derate = self.voltage_model.derating_factor(v_supply)
        return self.parameters.t_refw_ms / derate

    def refresh_interval_ns(self, v_supply: float) -> float:
        return (
            self.refresh_window_ms(v_supply)
            * 1e6
            / self.parameters.commands_per_window
        )

    def energy_per_command_nj(self, v_supply: float) -> float:
        """One auto-refresh command's energy (array charge, ~V²)."""
        p = self.parameters
        nominal_nj = p.idd5_ma * self._v_nom * p.t_rfc_ns * 1e-3
        return nominal_nj * (v_supply / self._v_nom) ** 2

    def refresh_power_mw(self, v_supply: float) -> float:
        """Average refresh power: per-command energy over the interval."""
        return (
            self.energy_per_command_nj(v_supply)
            / self.refresh_interval_ns(v_supply)
            * 1e3
        )

    def refresh_energy_nj(self, duration_ns: float, v_supply: float) -> float:
        """Refresh energy accrued over ``duration_ns`` of operation."""
        if duration_ns < 0:
            raise ValueError(f"duration must be >= 0, got {duration_ns}")
        return self.refresh_power_mw(v_supply) * duration_ns * 1e-3

    def bandwidth_overhead(self, v_supply: float) -> float:
        """Fraction of time the device is busy refreshing (tRFC/tREFI)."""
        return self.parameters.t_rfc_ns / self.refresh_interval_ns(v_supply)

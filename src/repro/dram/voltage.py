"""DRAM array-voltage dynamics under reduced supply voltage.

This module substitutes for the SPICE + DRAM circuit model of Chang et
al. that the paper uses to characterise the array voltage ``Varray`` and
the voltage-dependent timing parameters (Section II-B2, Figs. 2d and 6).

The model is a first-order RC abstraction of a DRAM activate/precharge
cycle:

- **Activate (sense + restore)**: the bitline starts at the precharge
  level ``Vsupply/2`` and is driven by the sense amplifier toward
  ``Vsupply`` along an exponential: ``V(t) = Vs - (Vs/2) * exp(-t/tau)``.
- **Precharge**: the bitline is equalised back toward ``Vsupply/2``:
  ``V(t) = Vs/2 + (V0 - Vs/2) * exp(-t/tau_p)``.

The sense amplifier's drive strength degrades at reduced supply voltage,
so the time constants grow as the supply shrinks:
``tau(Vs) = tau0 * (Vnom / Vs) ** alpha``.

The paper consumes three threshold crossings of these curves
(Section II-B2):

1. *ready-to-access* — ``Varray`` reaches **75%** of ``Vsupply``; this is
   the minimum reliable ``tRCD``;
2. *ready-to-precharge* — ``Varray`` reaches **98%** of ``Vsupply``; the
   minimum reliable ``tRAS``;
3. *ready-to-activate* — ``Varray`` is within **2%** of ``Vsupply/2``
   after precharge; the minimum reliable ``tRP``.

All three crossings have closed forms for an exponential, implemented
below; :mod:`repro.dram.timing` turns them into derating factors applied
to the JEDEC nominal timings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

#: Fraction of Vsupply that defines the ready-to-access voltage (tRCD).
READY_TO_ACCESS_FRACTION = 0.75
#: Fraction of Vsupply that defines the ready-to-precharge voltage (tRAS).
READY_TO_PRECHARGE_FRACTION = 0.98
#: Precharge is complete when Varray is within this fraction of Vsupply
#: around Vsupply/2 (tRP).
READY_TO_ACTIVATE_TOLERANCE = 0.02


@dataclass(frozen=True)
class VoltageTransient:
    """A sampled activate→precharge waveform (one point per time sample)."""

    time_ns: np.ndarray
    varray_volts: np.ndarray
    v_supply: float
    t_activate_start_ns: float
    t_precharge_start_ns: float


class ArrayVoltageModel:
    """First-order RC model of the DRAM cell/bitline voltage.

    Parameters
    ----------
    v_nominal:
        The nominal (accurate-DRAM) supply voltage, 1.35 V for LPDDR3.
    tau_activate_ns:
        Restore time constant at nominal voltage.  The default is
        calibrated so the ready-to-access crossing at nominal voltage
        lands near the JEDEC tRCD of LPDDR3-1600.
    tau_precharge_ns:
        Equalisation time constant at nominal voltage.
    drive_exponent:
        ``alpha`` in ``tau(Vs) = tau0 * (Vnom/Vs)**alpha``; models the
        sense amplifier slowing down at reduced voltage.
    """

    def __init__(
        self,
        v_nominal: float = 1.35,
        tau_activate_ns: float = 12.0,
        tau_precharge_ns: float = 5.5,
        drive_exponent: float = 2.0,
    ):
        if v_nominal <= 0:
            raise ValueError(f"v_nominal must be > 0, got {v_nominal}")
        if tau_activate_ns <= 0 or tau_precharge_ns <= 0:
            raise ValueError("time constants must be > 0")
        self.v_nominal = v_nominal
        self.tau_activate_ns = tau_activate_ns
        self.tau_precharge_ns = tau_precharge_ns
        self.drive_exponent = drive_exponent

    # ------------------------------------------------------------------
    # time constants
    # ------------------------------------------------------------------
    def _check_supply(self, v_supply: float) -> None:
        if v_supply <= 0:
            raise ValueError(f"v_supply must be > 0, got {v_supply}")
        if v_supply > self.v_nominal * 1.5:
            raise ValueError(
                f"v_supply {v_supply} V is implausibly above nominal {self.v_nominal} V"
            )

    def tau_activate(self, v_supply: float) -> float:
        """Restore time constant at the given supply voltage (ns)."""
        self._check_supply(v_supply)
        return self.tau_activate_ns * (self.v_nominal / v_supply) ** self.drive_exponent

    def tau_precharge(self, v_supply: float) -> float:
        """Equalisation time constant at the given supply voltage (ns)."""
        self._check_supply(v_supply)
        return self.tau_precharge_ns * (self.v_nominal / v_supply) ** self.drive_exponent

    # ------------------------------------------------------------------
    # waveforms
    # ------------------------------------------------------------------
    def varray_during_activate(self, t_ns: np.ndarray, v_supply: float) -> np.ndarray:
        """Array voltage ``t_ns`` after an ACT command (vectorised)."""
        self._check_supply(v_supply)
        t = np.asarray(t_ns, dtype=float)
        tau = self.tau_activate(v_supply)
        return v_supply - (v_supply / 2.0) * np.exp(-t / tau)

    def varray_during_precharge(
        self, t_ns: np.ndarray, v_supply: float, v_start: float
    ) -> np.ndarray:
        """Array voltage ``t_ns`` after a PRE command, starting at ``v_start``."""
        self._check_supply(v_supply)
        t = np.asarray(t_ns, dtype=float)
        tau = self.tau_precharge(v_supply)
        target = v_supply / 2.0
        return target + (v_start - target) * np.exp(-t / tau)

    # ------------------------------------------------------------------
    # threshold crossings (closed form)
    # ------------------------------------------------------------------
    def ready_to_access_time(self, v_supply: float) -> float:
        """Minimum reliable tRCD: time to reach 75% of Vsupply (ns).

        Solving ``Vs - (Vs/2) e^{-t/tau} = f Vs`` gives
        ``t = tau * ln(0.5 / (1 - f))``.
        """
        tau = self.tau_activate(v_supply)
        return tau * math.log(0.5 / (1.0 - READY_TO_ACCESS_FRACTION))

    def ready_to_precharge_time(self, v_supply: float) -> float:
        """Minimum reliable tRAS: time to reach 98% of Vsupply (ns)."""
        tau = self.tau_activate(v_supply)
        return tau * math.log(0.5 / (1.0 - READY_TO_PRECHARGE_FRACTION))

    def ready_to_activate_time(self, v_supply: float) -> float:
        """Minimum reliable tRP: time to settle within 2% of Vsupply/2 (ns).

        Precharge starts from the fully restored level ``Vsupply``.
        """
        tau = self.tau_precharge(v_supply)
        # |V - Vs/2| = (Vs/2) e^{-t/tau} <= tol * Vs
        return tau * math.log(0.5 / READY_TO_ACTIVATE_TOLERANCE)

    def derating_factor(self, v_supply: float) -> float:
        """How much slower the array is than at nominal voltage (>= 1).

        All three crossing times scale by the same ``(Vnom/Vs)**alpha``
        factor, so a single derating factor captures the timing impact.
        """
        return (self.v_nominal / v_supply) ** self.drive_exponent

    # ------------------------------------------------------------------
    # full transient for Figs. 2(d) and 6
    # ------------------------------------------------------------------
    def transient(
        self,
        v_supply: float,
        total_time_ns: float = 80.0,
        samples: int = 801,
        activate_at_ns: float = 0.0,
        precharge_at_ns: float | None = None,
    ) -> VoltageTransient:
        """Sample a full activate→precharge waveform.

        If ``precharge_at_ns`` is None the precharge is issued at the
        ready-to-precharge time (minimum reliable tRAS), which is what the
        paper's Fig. 6 depicts.
        """
        self._check_supply(v_supply)
        if total_time_ns <= 0 or samples < 2:
            raise ValueError("need total_time_ns > 0 and samples >= 2")
        if precharge_at_ns is None:
            precharge_at_ns = activate_at_ns + self.ready_to_precharge_time(v_supply)
        if precharge_at_ns < activate_at_ns:
            raise ValueError("precharge cannot precede activate")

        time_ns = np.linspace(0.0, total_time_ns, samples)
        varray = np.full(samples, v_supply / 2.0)

        active = (time_ns >= activate_at_ns) & (time_ns < precharge_at_ns)
        varray[active] = self.varray_during_activate(
            time_ns[active] - activate_at_ns, v_supply
        )

        v_at_pre = float(
            self.varray_during_activate(
                np.array([precharge_at_ns - activate_at_ns]), v_supply
            )[0]
        )
        precharging = time_ns >= precharge_at_ns
        varray[precharging] = self.varray_during_precharge(
            time_ns[precharging] - precharge_at_ns, v_supply, v_at_pre
        )

        return VoltageTransient(
            time_ns=time_ns,
            varray_volts=varray,
            v_supply=v_supply,
            t_activate_start_ns=activate_at_ns,
            t_precharge_start_ns=precharge_at_ns,
        )

    def transient_family(
        self, v_supplies: Sequence[float], **kwargs
    ) -> list[VoltageTransient]:
        """Waveforms for a family of supply voltages (Fig. 6)."""
        return [self.transient(v, **kwargs) for v in v_supplies]

"""DRAM substrate: organization, voltage dynamics, timing, energy, controller.

This package substitutes for the two hardware-facing tools of the paper's
evaluation flow (Fig. 10): the SPICE DRAM circuit model of Chang et al.
(used for array-voltage dynamics and voltage-dependent timing parameters)
and DRAMPower (used for command-level access energy).  See DESIGN.md for
the substitution rationale.
"""

from repro.dram.specs import DramSpec, LPDDR3_1600_4GB
from repro.dram.organization import DramOrganization, DramCoordinate
from repro.dram.voltage import ArrayVoltageModel
from repro.dram.timing import TimingParameters, timing_for_voltage
from repro.dram.commands import DramCommand, CommandKind, AccessCondition
from repro.dram.row_buffer import RowBufferSimulator, BankState
from repro.dram.energy import DramEnergyModel, AccessEnergyBreakdown
from repro.dram.controller import DramController, TraceExecutionResult
from repro.dram.refresh import RefreshModel, RefreshParameters

__all__ = [
    "RefreshModel",
    "RefreshParameters",
    "DramSpec",
    "LPDDR3_1600_4GB",
    "DramOrganization",
    "DramCoordinate",
    "ArrayVoltageModel",
    "TimingParameters",
    "timing_for_voltage",
    "DramCommand",
    "CommandKind",
    "AccessCondition",
    "RowBufferSimulator",
    "BankState",
    "DramEnergyModel",
    "AccessEnergyBreakdown",
    "DramController",
    "TraceExecutionResult",
]

"""DRAM organisation: coordinates and address mapping.

A :class:`DramCoordinate` names one column-sized slot in the hierarchy of
Fig. 5(a): ``channel / rank / chip / bank / subarray / row / column``.
:class:`DramOrganization` converts between flat *slot indices* (the order
in which the baseline mapping fills the device: column-major within a row,
rows within a subarray, subarrays within a bank, banks within a chip, …)
and coordinates, and exposes subarray bookkeeping used by the error models
and the SparkXD mapping policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.dram.specs import DramGeometry, DramSpec


@dataclass(frozen=True, order=True)
class DramCoordinate:
    """One column slot inside a DRAM module."""

    channel: int
    rank: int
    chip: int
    bank: int
    subarray: int
    row: int
    column: int

    def as_tuple(self) -> Tuple[int, int, int, int, int, int, int]:
        return (
            self.channel,
            self.rank,
            self.chip,
            self.bank,
            self.subarray,
            self.row,
            self.column,
        )

    def same_row(self, other: "DramCoordinate") -> bool:
        """True when ``other`` lies in the same (open-able) DRAM row."""
        return self.as_tuple()[:6] == other.as_tuple()[:6]

    def same_bank(self, other: "DramCoordinate") -> bool:
        return (
            self.channel == other.channel
            and self.rank == other.rank
            and self.chip == other.chip
            and self.bank == other.bank
        )


@dataclass(frozen=True, order=True)
class SubarrayId:
    """Identifies one subarray: the granularity of the SparkXD mapping."""

    channel: int
    rank: int
    chip: int
    bank: int
    subarray: int


class DramOrganization:
    """Address arithmetic over a :class:`~repro.dram.specs.DramGeometry`."""

    def __init__(self, spec: DramSpec):
        spec.validate()
        self.spec = spec
        self.geometry: DramGeometry = spec.geometry

    # ------------------------------------------------------------------
    # capacity
    # ------------------------------------------------------------------
    @property
    def total_slots(self) -> int:
        """Number of column-sized slots in the whole module."""
        g = self.geometry
        return (
            g.channels
            * g.ranks_per_channel
            * g.chips_per_rank
            * g.banks_per_chip
            * g.subarrays_per_bank
            * g.rows_per_subarray
            * g.columns_per_row
        )

    @property
    def slot_bits(self) -> int:
        return self.geometry.column_width_bits

    def slots_needed(self, n_bits: int) -> int:
        """Number of column slots needed to hold ``n_bits`` of data."""
        if n_bits < 0:
            raise ValueError(f"n_bits must be >= 0, got {n_bits}")
        return -(-n_bits // self.slot_bits)  # ceil division

    # ------------------------------------------------------------------
    # flat index <-> coordinate (baseline fill order)
    # ------------------------------------------------------------------
    def coordinate_of(self, slot: int) -> DramCoordinate:
        """Map a flat slot index to a coordinate.

        The flat order is the *baseline mapping* of the paper's Section
        IV-B Step-2: consecutive data goes to consecutive columns of the
        same row (exploiting the burst feature), then the next row of the
        same subarray, then the next subarray, the next bank, chip, rank,
        and channel.
        """
        g = self.geometry
        if not 0 <= slot < self.total_slots:
            raise IndexError(f"slot {slot} out of range [0, {self.total_slots})")
        slot, column = divmod(slot, g.columns_per_row)
        slot, row = divmod(slot, g.rows_per_subarray)
        slot, subarray = divmod(slot, g.subarrays_per_bank)
        slot, bank = divmod(slot, g.banks_per_chip)
        slot, chip = divmod(slot, g.chips_per_rank)
        channel, rank = divmod(slot, g.ranks_per_channel)
        return DramCoordinate(channel, rank, chip, bank, subarray, row, column)

    def slot_of(self, coord: DramCoordinate) -> int:
        """Inverse of :meth:`coordinate_of`."""
        g = self.geometry
        self._check_coordinate(coord)
        slot = coord.channel
        slot = slot * g.ranks_per_channel + coord.rank
        slot = slot * g.chips_per_rank + coord.chip
        slot = slot * g.banks_per_chip + coord.bank
        slot = slot * g.subarrays_per_bank + coord.subarray
        slot = slot * g.rows_per_subarray + coord.row
        slot = slot * g.columns_per_row + coord.column
        return slot

    def _check_coordinate(self, coord: DramCoordinate) -> None:
        g = self.geometry
        bounds = (
            ("channel", coord.channel, g.channels),
            ("rank", coord.rank, g.ranks_per_channel),
            ("chip", coord.chip, g.chips_per_rank),
            ("bank", coord.bank, g.banks_per_chip),
            ("subarray", coord.subarray, g.subarrays_per_bank),
            ("row", coord.row, g.rows_per_subarray),
            ("column", coord.column, g.columns_per_row),
        )
        for name, value, limit in bounds:
            if not 0 <= value < limit:
                raise IndexError(f"{name}={value} out of range [0, {limit})")

    # ------------------------------------------------------------------
    # subarray bookkeeping
    # ------------------------------------------------------------------
    @property
    def total_subarrays(self) -> int:
        return self.geometry.total_subarrays

    def subarray_of(self, coord: DramCoordinate) -> SubarrayId:
        return SubarrayId(coord.channel, coord.rank, coord.chip, coord.bank, coord.subarray)

    def subarray_index(self, subarray: SubarrayId) -> int:
        """Flat index of a subarray, matching :meth:`iter_subarrays` order."""
        g = self.geometry
        idx = subarray.channel
        idx = idx * g.ranks_per_channel + subarray.rank
        idx = idx * g.chips_per_rank + subarray.chip
        idx = idx * g.banks_per_chip + subarray.bank
        idx = idx * g.subarrays_per_bank + subarray.subarray
        return idx

    def subarray_from_index(self, index: int) -> SubarrayId:
        g = self.geometry
        if not 0 <= index < self.total_subarrays:
            raise IndexError(f"subarray index {index} out of range [0, {self.total_subarrays})")
        index, subarray = divmod(index, g.subarrays_per_bank)
        index, bank = divmod(index, g.banks_per_chip)
        index, chip = divmod(index, g.chips_per_rank)
        channel, rank = divmod(index, g.ranks_per_channel)
        return SubarrayId(channel, rank, chip, bank, subarray)

    def iter_subarrays(self) -> Iterator[SubarrayId]:
        for index in range(self.total_subarrays):
            yield self.subarray_from_index(index)

    def slots_per_subarray(self) -> int:
        g = self.geometry
        return g.rows_per_subarray * g.columns_per_row

    def bank_key(self, coord: DramCoordinate) -> Tuple[int, int, int, int]:
        """Hashable identity of the bank holding ``coord``."""
        return (coord.channel, coord.rank, coord.chip, coord.bank)

    def global_row_key(self, coord: DramCoordinate) -> Tuple[int, int, int, int, int, int]:
        """Hashable identity of the DRAM row holding ``coord``."""
        return (
            coord.channel,
            coord.rank,
            coord.chip,
            coord.bank,
            coord.subarray,
            coord.row,
        )

"""Row-buffer state machine and cycle accounting.

Processes a sequence of column-granular read accesses (a *trace*),
classifies each as row-buffer **hit**, **miss** or **conflict**
(Section II-B1), expands it into DRAM commands, and tracks a simple but
faithful latency model:

- each bank has its own row buffer and its own timing state
  (``tRP``-after-PRE, ``tRCD``-after-ACT, ``tRAS`` minimum open time);
- all banks share one data bus; each RD burst occupies it for
  ``burst_time_ns``;
- commands to *different* banks overlap freely (the multi-bank burst
  feature of Fig. 9b) — while bank 0 streams data, bank 1 can activate.

This is an open-page policy controller: rows stay open until a conflict
forces a precharge, which matches both the baseline mapping (sequential
fill, Section IV-B Step-2) and the SparkXD mapping (row-hit maximising,
Section IV-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.dram.commands import AccessCondition, CommandKind
from repro.dram.organization import DramCoordinate, DramOrganization
from repro.dram.timing import TimingParameters

BankKey = Tuple[int, int, int, int]
RowKey = Tuple[int, int, int, int, int, int]


@dataclass
class BankState:
    """Mutable per-bank controller state."""

    open_row: Optional[RowKey] = None
    #: earliest time the next ACT may issue (after tRP of a PRE).
    ready_for_activate_ns: float = 0.0
    #: earliest time a RD may issue to the open row (after tRCD).
    ready_for_read_ns: float = 0.0
    #: earliest time a PRE may issue (tRAS after the last ACT).
    ready_for_precharge_ns: float = 0.0
    #: cumulative time this bank has had a row open (for standby energy).
    active_time_ns: float = 0.0
    _last_activate_ns: float = 0.0


@dataclass
class TraceStatistics:
    """Counters produced by one trace execution."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    conflicts: int = 0
    command_counts: Dict[CommandKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in CommandKind}
    )
    total_time_ns: float = 0.0
    bus_busy_time_ns: float = 0.0
    bank_active_time_ns: float = 0.0
    banks_touched: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def conditions(self) -> Dict[AccessCondition, int]:
        return {
            AccessCondition.HIT: self.hits,
            AccessCondition.MISS: self.misses,
            AccessCondition.CONFLICT: self.conflicts,
        }

    @property
    def idle_time_ns(self) -> float:
        """Aggregate bank-idle time across touched banks."""
        if self.banks_touched == 0:
            return 0.0
        return max(0.0, self.banks_touched * self.total_time_ns - self.bank_active_time_ns)


class RowBufferSimulator:
    """Executes a read trace against per-bank row buffers.

    Parameters
    ----------
    organization:
        Address arithmetic for the device being simulated.
    timing:
        Resolved (possibly voltage-derated) timing parameters.
    """

    def __init__(
        self,
        organization: DramOrganization,
        timing: TimingParameters,
        open_ahead: bool = True,
    ):
        self.organization = organization
        self.timing = timing
        #: model the multi-bank burst feature (Fig. 9b): PRE/ACT to a
        #: bank *other than the one currently streaming* are issued as
        #: early as that bank's own timing allows, hiding their latency
        #: behind the data transfer.  Same-bank row transitions can
        #: never be hidden (the bank must close its own row first).
        self.open_ahead = open_ahead
        self.banks: Dict[BankKey, BankState] = {}
        self._bus_free_ns: float = 0.0
        self._now_ns: float = 0.0
        self._last_bank: BankKey | None = None
        self.stats = TraceStatistics()

    # ------------------------------------------------------------------
    def _bank(self, key: BankKey) -> BankState:
        if key not in self.banks:
            self.banks[key] = BankState()
        return self.banks[key]

    def classify(self, coord: DramCoordinate) -> AccessCondition:
        """Row-buffer outcome the next access to ``coord`` would see."""
        bank = self._bank(self.organization.bank_key(coord))
        row = self.organization.global_row_key(coord)
        if bank.open_row is None:
            return AccessCondition.MISS
        if bank.open_row == row:
            return AccessCondition.HIT
        return AccessCondition.CONFLICT

    # ------------------------------------------------------------------
    def access(self, coord: DramCoordinate, write: bool = False) -> AccessCondition:
        """Execute one column access; returns its row-buffer condition.

        ``write=True`` issues WR instead of RD (same row-buffer and bus
        behaviour; the energy model prices the commands differently).
        """
        timing = self.timing
        bank_key = self.organization.bank_key(coord)
        bank = self._bank(bank_key)
        row = self.organization.global_row_key(coord)
        condition = self.classify(coord)

        # With open-ahead, PRE/ACT to a bank that is not the one
        # currently driving the bus may be issued before "now" (the
        # controller saw the stream coming); same-bank transitions
        # always pay their latency in-line.
        hidden = self.open_ahead and self._last_bank is not None and bank_key != self._last_bank

        t = self._now_ns
        if condition is AccessCondition.CONFLICT:
            # PRE may only issue tRAS after the row was opened.
            t = bank.ready_for_precharge_ns if hidden else max(t, bank.ready_for_precharge_ns)
            self._close_row(bank, t)
            self.stats.command_counts[CommandKind.PRE] += 1
            bank.ready_for_activate_ns = t + timing.t_rp_ns

        if condition in (AccessCondition.MISS, AccessCondition.CONFLICT):
            t = bank.ready_for_activate_ns if hidden else max(t, bank.ready_for_activate_ns)
            bank.open_row = row
            bank._last_activate_ns = t
            bank.ready_for_read_ns = t + timing.t_rcd_ns
            bank.ready_for_precharge_ns = t + timing.t_ras_ns
            self.stats.command_counts[CommandKind.ACT] += 1

        # RD: wait for the bank's tRCD and for the shared data bus.
        start = max(t, bank.ready_for_read_ns, self._bus_free_ns)
        finish = start + timing.burst_time_ns
        self._bus_free_ns = finish
        self._now_ns = start  # the controller can issue to other banks meanwhile
        self.stats.command_counts[CommandKind.WR if write else CommandKind.RD] += 1
        self.stats.bus_busy_time_ns += timing.burst_time_ns
        self._last_bank = bank_key

        self.stats.accesses += 1
        if condition is AccessCondition.HIT:
            self.stats.hits += 1
        elif condition is AccessCondition.MISS:
            self.stats.misses += 1
        else:
            self.stats.conflicts += 1
        self.stats.total_time_ns = max(self.stats.total_time_ns, finish)
        return condition

    def _close_row(self, bank: BankState, when_ns: float) -> None:
        if bank.open_row is not None:
            bank.active_time_ns += max(0.0, when_ns - bank._last_activate_ns)
            bank.open_row = None

    def run(
        self, trace: Iterable[DramCoordinate], write: bool = False
    ) -> TraceStatistics:
        """Execute a whole trace and return the final statistics."""
        conditions: List[AccessCondition] = []
        for coord in trace:
            conditions.append(self.access(coord, write=write))
        return self.finish()

    def finish(self) -> TraceStatistics:
        """Close all rows and finalise aggregate counters."""
        end = self.stats.total_time_ns
        for bank in self.banks.values():
            self._close_row(bank, end)
        self.stats.bank_active_time_ns = sum(b.active_time_ns for b in self.banks.values())
        self.stats.banks_touched = len(self.banks)
        return self.stats

"""DRAMPower-substitute: command-level DRAM access energy.

Energy is split into three physically distinct components:

1. **Array charge energy** — swinging the bitlines and moving data
   through the array.  Charging a capacitance ``C`` to voltage ``V``
   costs ``C V²`` however long it takes, so this component scales with
   the *square* of the supply voltage.  The paper's Table I per-access
   savings (3.92/14.29/24.33/33.59/42.40 % at 1.325…1.025 V) match
   ``1 - (V/1.35)²`` within a third of a percentage point — Table I is
   the pure-array (row-buffer-hit) access.
2. **Peripheral charge energy** — the command's share spent in domains
   that do *not* follow the scaled array rail: the boosted wordline
   supply (VPP) during ACT, the equalisation drivers during PRE, the
   I/O path during RD/WR.  This fraction is fixed per command
   (``PERIPHERAL_FRACTION``), which is why the per-*condition* savings
   of Fig. 2(b) span ~31–42 %: a hit is nearly all array energy
   (~42 % saving), a conflict carries the ACT+PRE peripheral overhead
   (~31 %).
3. **Standby (background) energy** — bias power integrated over time.
   Standby power scales ~V² (current ∝ V), but the windows (tRAS, tRP,
   total runtime) *stretch* by the array derating factor at reduced
   voltage, partially cancelling the saving.  This is why whole-
   inference savings (Fig. 12a, ~39.5 % at 1.025 V) land slightly below
   the hit-access 42.4 %.

Absolute scales are calibrated to the nJ range of Fig. 2(b): ~3 nJ
row-buffer hit, ~5.8 nJ miss, ~7.3 nJ conflict at 1.35 V.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.dram.commands import (
    COMMANDS_FOR_CONDITION,
    AccessCondition,
    CommandKind,
)
from repro.dram.row_buffer import TraceStatistics
from repro.dram.specs import DramSpec
from repro.dram.timing import TimingParameters, timing_for_voltage
from repro.dram.voltage import ArrayVoltageModel

#: Fraction of each command's charge energy spent in fixed-voltage
#: peripheral domains (VPP wordline boost, equalisation drivers, I/O).
PERIPHERAL_FRACTION: Dict[CommandKind, float] = {
    CommandKind.ACT: 0.29,
    CommandKind.PRE: 0.68,
    CommandKind.RD: 0.0,
    CommandKind.WR: 0.0,
}

#: PRE moves less charge than ACT but drives the equalisation network;
#: its nominal energy is idd0 * V * tRP scaled by this factor.
_PRECHARGE_ENERGY_FACTOR = 1.25


@dataclass(frozen=True)
class AccessEnergyBreakdown:
    """Energy of one access, split by physical origin (nanojoules)."""

    condition: AccessCondition
    v_supply: float
    array_nj: float
    peripheral_nj: float
    standby_nj: float
    per_command_nj: Mapping[CommandKind, float]

    @property
    def charge_nj(self) -> float:
        return self.array_nj + self.peripheral_nj

    @property
    def total_nj(self) -> float:
        return self.array_nj + self.peripheral_nj + self.standby_nj


@dataclass(frozen=True)
class TraceEnergyBreakdown:
    """Energy of a whole trace execution (nanojoules)."""

    v_supply: float
    array_nj: float
    peripheral_nj: float
    active_standby_nj: float
    idle_standby_nj: float

    @property
    def command_nj(self) -> float:
        return self.array_nj + self.peripheral_nj

    @property
    def total_nj(self) -> float:
        return (
            self.array_nj
            + self.peripheral_nj
            + self.active_standby_nj
            + self.idle_standby_nj
        )

    @property
    def total_mj(self) -> float:
        return self.total_nj * 1e-6  # nJ -> mJ


class DramEnergyModel:
    """Command-level energy model for one device spec."""

    def __init__(
        self,
        spec: DramSpec,
        voltage_model: ArrayVoltageModel | None = None,
        peripheral_fraction: Mapping[CommandKind, float] | None = None,
    ):
        spec.validate()
        self.spec = spec
        self.voltage_model = voltage_model or ArrayVoltageModel(
            v_nominal=spec.electrical.v_nominal_volts
        )
        fractions = dict(PERIPHERAL_FRACTION)
        if peripheral_fraction:
            fractions.update(peripheral_fraction)
        for kind, fraction in fractions.items():
            if not 0.0 <= fraction < 1.0:
                raise ValueError(
                    f"peripheral fraction of {kind} must be in [0,1), got {fraction}"
                )
        self.peripheral_fraction = fractions
        self._v_nom = spec.electrical.v_nominal_volts
        elec = spec.electrical
        nominal = spec.timings
        # Nominal charge energies, nJ: I[mA] * V[V] * t[ns] * 1e-3 -> nJ.
        self._charge_nominal_nj: Dict[CommandKind, float] = {
            CommandKind.ACT: elec.idd0_ma * self._v_nom * nominal.t_ras_ns * 1e-3,
            CommandKind.PRE: elec.idd0_ma
            * self._v_nom
            * nominal.t_rp_ns
            * _PRECHARGE_ENERGY_FACTOR
            * 1e-3,
            CommandKind.RD: elec.idd4r_ma
            * self._v_nom
            * nominal.burst_length
            * nominal.clock_ns
            / 2.0
            * 1e-3,
            CommandKind.WR: elec.idd4w_ma
            * self._v_nom
            * nominal.burst_length
            * nominal.clock_ns
            / 2.0
            * 1e-3,
        }

    # ------------------------------------------------------------------
    # scaling laws
    # ------------------------------------------------------------------
    def _check_voltage(self, v_supply: float) -> None:
        elec = self.spec.electrical
        if not 0.5 * elec.v_min_volts <= v_supply <= 1.1 * elec.v_nominal_volts:
            raise ValueError(
                f"v_supply {v_supply} V outside plausible range for {self.spec.name}"
            )

    def charge_scale(self, v_supply: float) -> float:
        """Dynamic (CV²) scaling of array energy versus nominal."""
        self._check_voltage(v_supply)
        return (v_supply / self._v_nom) ** 2

    def standby_power_mw(self, v_supply: float, active: bool) -> float:
        """Standby power in mW; current ∝ V so power ∝ V²."""
        self._check_voltage(v_supply)
        elec = self.spec.electrical
        idd = elec.idd3n_ma if active else elec.idd2n_ma
        return idd * v_supply * (v_supply / self._v_nom)

    # ------------------------------------------------------------------
    # per-command / per-access energy
    # ------------------------------------------------------------------
    def command_energy_split(
        self, kind: CommandKind, v_supply: float
    ) -> tuple[float, float]:
        """(array_nj, peripheral_nj) of one command at ``v_supply``."""
        nominal = self._charge_nominal_nj[kind]
        fraction = self.peripheral_fraction[kind]
        array_nj = nominal * (1.0 - fraction) * self.charge_scale(v_supply)
        peripheral_nj = nominal * fraction
        return array_nj, peripheral_nj

    def command_energy_nj(self, kind: CommandKind, v_supply: float) -> float:
        """Total charge energy of one command at ``v_supply``."""
        array_nj, peripheral_nj = self.command_energy_split(kind, v_supply)
        return array_nj + peripheral_nj

    def access_energy(
        self,
        condition: AccessCondition,
        v_supply: float,
        timing: TimingParameters | None = None,
    ) -> AccessEnergyBreakdown:
        """Energy of one access under the given row-buffer condition.

        Standby windows use the *voltage-derated* timings: an ACT at
        reduced voltage keeps the array biased for a longer tRAS, a PRE
        for a longer tRP.
        """
        if timing is None:
            timing = timing_for_voltage(self.spec, v_supply, self.voltage_model)
        per_command: Dict[CommandKind, float] = {}
        array_nj = peripheral_nj = standby_nj = 0.0
        for kind in COMMANDS_FOR_CONDITION[condition]:
            a, p = self.command_energy_split(kind, v_supply)
            per_command[kind] = a + p
            array_nj += a
            peripheral_nj += p
            if kind is CommandKind.ACT:
                window = timing.t_ras_ns
                active = True
            elif kind is CommandKind.PRE:
                window = timing.t_rp_ns
                active = False
            else:
                window = timing.burst_time_ns
                active = True
            standby_nj += self.standby_power_mw(v_supply, active) * window * 1e-3
        return AccessEnergyBreakdown(
            condition=condition,
            v_supply=v_supply,
            array_nj=array_nj,
            peripheral_nj=peripheral_nj,
            standby_nj=standby_nj,
            per_command_nj=per_command,
        )

    def energy_per_access_nj(self, v_supply: float) -> float:
        """The paper's Table-I per-access metric: a row-buffer-hit read.

        A hit is a pure array access (one RD burst), so its savings
        follow the CV² law — exactly the 3.92…42.40 % column of Table I.
        """
        array_nj, peripheral_nj = self.command_energy_split(CommandKind.RD, v_supply)
        return array_nj + peripheral_nj

    def energy_per_access_saving(self, v_supply: float) -> float:
        """Fractional Table-I saving at ``v_supply`` versus nominal."""
        nominal = self.energy_per_access_nj(self._v_nom)
        return 1.0 - self.energy_per_access_nj(v_supply) / nominal

    # ------------------------------------------------------------------
    # whole-trace energy
    # ------------------------------------------------------------------
    def trace_energy(
        self,
        stats: TraceStatistics,
        v_supply: float,
    ) -> TraceEnergyBreakdown:
        """Energy of a whole trace execution from its statistics."""
        self._check_voltage(v_supply)
        array_nj = peripheral_nj = 0.0
        for kind, count in stats.command_counts.items():
            if count == 0:
                continue
            a, p = self.command_energy_split(kind, v_supply)
            array_nj += a * count
            peripheral_nj += p * count
        active_nj = (
            self.standby_power_mw(v_supply, active=True) * stats.bank_active_time_ns * 1e-3
        )
        idle_nj = (
            self.standby_power_mw(v_supply, active=False) * stats.idle_time_ns * 1e-3
        )
        return TraceEnergyBreakdown(
            v_supply=v_supply,
            array_nj=array_nj,
            peripheral_nj=peripheral_nj,
            active_standby_nj=active_nj,
            idle_standby_nj=idle_nj,
        )

"""DRAM command and access-condition datatypes (Fig. 5b of the paper)."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.dram.organization import DramCoordinate


class CommandKind(enum.Enum):
    """The DRAM commands the paper's energy model accounts for."""

    ACT = "activate"
    RD = "read"
    WR = "write"
    PRE = "precharge"


class AccessCondition(enum.Enum):
    """Row-buffer outcome of one access (Section II-B1).

    - *HIT*: the requested row is already in the row buffer — RD only.
    - *MISS*: the row buffer is empty — ACT then RD.
    - *CONFLICT*: another row occupies the buffer — PRE, ACT, then RD.
    """

    HIT = "hit"
    MISS = "miss"
    CONFLICT = "conflict"


@dataclass(frozen=True)
class DramCommand:
    """One command issued to a specific location, stamped with time."""

    kind: CommandKind
    coordinate: DramCoordinate
    issue_time_ns: float

    def __post_init__(self):
        if self.issue_time_ns < 0:
            raise ValueError(f"issue_time_ns must be >= 0, got {self.issue_time_ns}")


#: Commands each access condition expands to, in issue order.
COMMANDS_FOR_CONDITION = {
    AccessCondition.HIT: (CommandKind.RD,),
    AccessCondition.MISS: (CommandKind.ACT, CommandKind.RD),
    AccessCondition.CONFLICT: (CommandKind.PRE, CommandKind.ACT, CommandKind.RD),
}

"""DRAM controller: ties organization, row buffer, timing and energy.

The controller is the entry point other packages use: give it a trace of
column-slot accesses (flat slot indices or coordinates) and a supply
voltage, and it returns a :class:`TraceExecutionResult` with row-buffer
statistics, execution time and the full energy breakdown.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterable, Sequence, Union

import numpy as np

from repro.dram.energy import DramEnergyModel, TraceEnergyBreakdown
from repro.dram.organization import DramCoordinate, DramOrganization
from repro.dram.row_buffer import RowBufferSimulator, TraceStatistics
from repro.dram.specs import DramSpec
from repro.dram.timing import TimingParameters, timing_for_voltage
from repro.dram.voltage import ArrayVoltageModel

TraceLike = Union[Sequence[int], np.ndarray, Iterable[DramCoordinate]]


@dataclass(frozen=True)
class TraceExecutionResult:
    """Everything one trace execution produced."""

    v_supply: float
    timing: TimingParameters
    stats: TraceStatistics
    energy: TraceEnergyBreakdown

    @property
    def total_energy_nj(self) -> float:
        return self.energy.total_nj

    @property
    def total_time_ns(self) -> float:
        return self.stats.total_time_ns

    @property
    def throughput_accesses_per_us(self) -> float:
        if self.stats.total_time_ns == 0:
            return 0.0
        return self.stats.accesses / (self.stats.total_time_ns * 1e-3)

    def summary(self) -> str:
        s = self.stats
        return (
            f"V={self.v_supply:.3f}V accesses={s.accesses} "
            f"hit/miss/conflict={s.hits}/{s.misses}/{s.conflicts} "
            f"time={s.total_time_ns / 1e3:.2f}us "
            f"energy={self.energy.total_nj / 1e6:.4f}mJ"
        )


class DramController:
    """Executes access traces against one DRAM device at one voltage."""

    def __init__(
        self,
        spec: DramSpec,
        voltage_model: ArrayVoltageModel | None = None,
        energy_model: DramEnergyModel | None = None,
    ):
        spec.validate()
        self.spec = spec
        self.organization = DramOrganization(spec)
        self.voltage_model = voltage_model or ArrayVoltageModel(
            v_nominal=spec.electrical.v_nominal_volts
        )
        self.energy_model = energy_model or DramEnergyModel(spec, self.voltage_model)

    def _coordinates(self, trace: TraceLike) -> Iterable[DramCoordinate]:
        for item in trace:
            if isinstance(item, DramCoordinate):
                yield item
            else:
                yield self.organization.coordinate_of(int(item))

    def execute(
        self,
        trace: TraceLike,
        v_supply: float,
        write: bool = False,
        include_refresh: bool = False,
    ) -> TraceExecutionResult:
        """Run ``trace`` at ``v_supply`` and return statistics + energy.

        ``trace`` may contain flat slot indices (ints) or
        :class:`DramCoordinate` objects, in access order.  ``write=True``
        models write traffic (e.g. training weight write-back);
        ``include_refresh`` adds the background refresh energy accrued
        over the execution window (see :mod:`repro.dram.refresh`).
        """
        timing = timing_for_voltage(self.spec, v_supply, self.voltage_model)
        simulator = RowBufferSimulator(self.organization, timing)
        stats = simulator.run(self._coordinates(trace), write=write)
        energy = self.energy_model.trace_energy(stats, v_supply)
        if include_refresh:
            from repro.dram.refresh import RefreshModel

            refresh_nj = RefreshModel(self.spec, voltage_model=self.voltage_model).refresh_energy_nj(
                stats.total_time_ns, v_supply
            )
            energy = dataclasses.replace(
                energy, idle_standby_nj=energy.idle_standby_nj + refresh_nj
            )
        return TraceExecutionResult(
            v_supply=v_supply, timing=timing, stats=stats, energy=energy
        )

    def execute_at_voltages(
        self, trace: TraceLike, v_supplies: Sequence[float]
    ) -> list[TraceExecutionResult]:
        """Run the same trace at several supply voltages (Fig. 12a sweep)."""
        materialised = [
            c for c in self._coordinates(trace)
        ]  # traces may be generators; reuse across voltages
        return [self.execute(materialised, v) for v in v_supplies]

"""DRAM device specifications.

The paper evaluates a **LPDDR3-1600 4Gb** device ("representative for the
main memory of energy-constrained embedded systems", Section V).  A spec
bundles the three ingredient groups every other DRAM module consumes:

- *geometry* — channels / ranks / chips / banks / subarrays / rows /
  columns, and the data width of one column access;
- *nominal timings* — clock period and the JEDEC timing parameters at the
  nominal supply voltage;
- *electrical parameters* — supply voltage and the IDD-style current
  values used by the DRAMPower-like energy model
  (:mod:`repro.dram.energy`).

Current values follow the structure of LPDDR3 datasheets (IDD0 activate/
precharge cycling current, IDD2N precharge-standby, IDD3N active-standby,
IDD4R burst-read, IDD4W burst-write).  Absolute values are representative,
not datasheet-exact; the paper's results are reported as *relative*
savings, which depend on the V² dynamic-energy scaling and the command
mix, not on the absolute current scale.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.registry import Registry


@dataclass(frozen=True)
class DramGeometry:
    """Physical organisation of one DRAM module (Fig. 5a of the paper)."""

    channels: int = 1
    ranks_per_channel: int = 1
    chips_per_rank: int = 1
    banks_per_chip: int = 8
    subarrays_per_bank: int = 8
    rows_per_subarray: int = 512
    columns_per_row: int = 1024
    #: bits transferred by a single column access (one burst beat group).
    column_width_bits: int = 64

    @property
    def rows_per_bank(self) -> int:
        return self.subarrays_per_bank * self.rows_per_subarray

    @property
    def row_size_bits(self) -> int:
        return self.columns_per_row * self.column_width_bits

    @property
    def subarray_size_bits(self) -> int:
        return self.rows_per_subarray * self.row_size_bits

    @property
    def bank_size_bits(self) -> int:
        return self.subarrays_per_bank * self.subarray_size_bits

    @property
    def chip_size_bits(self) -> int:
        return self.banks_per_chip * self.bank_size_bits

    @property
    def total_size_bits(self) -> int:
        return (
            self.channels
            * self.ranks_per_channel
            * self.chips_per_rank
            * self.chip_size_bits
        )

    @property
    def total_subarrays(self) -> int:
        return (
            self.channels
            * self.ranks_per_channel
            * self.chips_per_rank
            * self.banks_per_chip
            * self.subarrays_per_bank
        )

    def validate(self) -> None:
        """Raise :class:`ValueError` if any dimension is non-positive."""
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if value <= 0:
                raise ValueError(f"geometry field {field.name!r} must be > 0, got {value}")


@dataclass(frozen=True)
class NominalTimings:
    """JEDEC-style timing parameters at nominal voltage, in nanoseconds."""

    clock_ns: float = 1.25  # LPDDR3-1600: 800 MHz DDR -> 1.25 ns cycle
    t_rcd_ns: float = 18.0  # row-address-to-column-address delay
    t_ras_ns: float = 42.0  # row active time
    t_rp_ns: float = 18.0  # row precharge time
    t_cl_ns: float = 15.0  # CAS latency
    burst_length: int = 8  # beats per RD/WR burst

    @property
    def t_rc_ns(self) -> float:
        """Row cycle time: full activate-precharge turnaround."""
        return self.t_ras_ns + self.t_rp_ns


@dataclass(frozen=True)
class ElectricalParameters:
    """Supply voltage and IDD currents used for energy estimation.

    ``v_nominal_volts`` is the accurate-DRAM supply (1.35 V for LPDDR3);
    ``v_min_volts`` is the lowest approximate-DRAM supply studied by the
    paper (1.025 V).
    """

    v_nominal_volts: float = 1.35
    v_min_volts: float = 1.025
    idd0_ma: float = 48.0  # ACT/PRE cycling
    idd2n_ma: float = 0.8  # precharge standby
    idd3n_ma: float = 2.0  # active standby
    idd4r_ma: float = 444.0  # burst read
    idd4w_ma: float = 470.0  # burst write

    def validate(self) -> None:
        if not 0.0 < self.v_min_volts <= self.v_nominal_volts:
            raise ValueError(
                "require 0 < v_min <= v_nominal, got "
                f"{self.v_min_volts} and {self.v_nominal_volts}"
            )


@dataclass(frozen=True)
class DramSpec:
    """A complete DRAM device description."""

    name: str
    geometry: DramGeometry
    timings: NominalTimings
    electrical: ElectricalParameters

    def validate(self) -> None:
        self.geometry.validate()
        self.electrical.validate()

    def scaled(self, **geometry_overrides: int) -> "DramSpec":
        """Return a copy with some geometry dimensions overridden.

        Useful for tests and examples that want a tiny device, e.g.
        ``spec.scaled(rows_per_subarray=4, columns_per_row=8)``.
        """
        new_geometry = dataclasses.replace(self.geometry, **geometry_overrides)
        return dataclasses.replace(self, geometry=new_geometry)


#: The device configuration used throughout the paper's evaluation.
LPDDR3_1600_4GB = DramSpec(
    name="LPDDR3-1600 4Gb",
    geometry=DramGeometry(
        channels=1,
        ranks_per_channel=1,
        chips_per_rank=1,
        banks_per_chip=8,
        subarrays_per_bank=8,
        rows_per_subarray=2048,  # 8 banks x 8 subarrays x 2048 rows x 4KB row = 4Gb
        columns_per_row=512,
        column_width_bits=64,
    ),
    timings=NominalTimings(),
    electrical=ElectricalParameters(),
)


#: A DDR5-4800 8Gb x8 device, the mainstream successor generation.
#: DDR5 runs at a 1.1 V nominal supply (vs LPDDR3's 1.35 V), doubles
#: the burst length to 16, and splits the die into more, smaller banks.
#: Geometry: 32 banks x 8 subarrays x 2048 rows x (512 cols x 32 bit)
#: = 8 Gb.  Timing/current values are representative, not
#: datasheet-exact (the framework reports *relative* savings).  Note
#: the reduced-voltage sweep for this device must stay at or below
#: 1.1 V — the paper's LPDDR3 voltage set does not apply.
DDR5_4800_8GB = DramSpec(
    name="DDR5-4800 8Gb",
    geometry=DramGeometry(
        channels=1,
        ranks_per_channel=1,
        chips_per_rank=1,
        banks_per_chip=32,
        subarrays_per_bank=8,
        rows_per_subarray=2048,
        columns_per_row=512,
        column_width_bits=32,
    ),
    timings=NominalTimings(
        clock_ns=0.417,  # DDR5-4800: 2400 MHz DDR -> 0.417 ns cycle
        t_rcd_ns=16.0,
        t_ras_ns=32.0,
        t_rp_ns=16.0,
        t_cl_ns=13.75,
        burst_length=16,
    ),
    electrical=ElectricalParameters(
        v_nominal_volts=1.1,
        v_min_volts=0.85,
        idd0_ma=62.0,
        idd2n_ma=1.2,
        idd3n_ma=2.6,
        idd4r_ma=520.0,
        idd4w_ma=545.0,
    ),
)


def tiny_spec(name: str = "tiny-test-dram") -> DramSpec:
    """A miniature device for fast unit tests (a few KiB total)."""
    return DramSpec(
        name=name,
        geometry=DramGeometry(
            channels=1,
            ranks_per_channel=1,
            chips_per_rank=1,
            banks_per_chip=2,
            subarrays_per_bank=2,
            rows_per_subarray=4,
            columns_per_row=8,
            column_width_bits=32,
        ),
        timings=NominalTimings(),
        electrical=ElectricalParameters(),
    )


#: Registry of DRAM devices selectable by name (CLI ``--spec``, sweep
#: axes).  Entries are zero-argument factories so registration stays
#: cheap and mutable specs are never shared.
DRAM_SPECS = Registry("dram spec")
DRAM_SPECS.register(
    "lpddr3-1600-4gb",
    lambda: LPDDR3_1600_4GB,
    aliases=("lpddr3",),
)
DRAM_SPECS.register(
    "ddr5-4800-8gb",
    lambda: DDR5_4800_8GB,
    aliases=("ddr5",),
)
DRAM_SPECS.register("tiny", tiny_spec, aliases=("tiny-test-dram",))


def get_dram_spec(name: str) -> DramSpec:
    """Look up a device spec by registered name."""
    return DRAM_SPECS.get(name)()


# ----------------------------------------------------------------------
# Wire form.  The cluster protocol ships full configs between hosts as
# JSON; a spec travels as its complete nested field dict (not just a
# registry name) so custom devices — e.g. ``tiny_spec().scaled(...)`` in
# tests — survive the trip to a worker that never registered them.


def spec_to_dict(spec: DramSpec) -> dict:
    """JSON-safe nested dict of every field of ``spec``."""
    return dataclasses.asdict(spec)


def spec_from_dict(data: dict) -> DramSpec:
    """Rebuild a :class:`DramSpec` from :func:`spec_to_dict` output."""
    return DramSpec(
        name=str(data["name"]),
        geometry=DramGeometry(**data["geometry"]),
        timings=NominalTimings(**data["timings"]),
        electrical=ElectricalParameters(**data["electrical"]),
    )

"""Voltage-dependent DRAM timing parameters.

The paper extracts ``tRCD``, ``tRAS`` and ``tRP`` from its SPICE study for
each supply voltage and feeds them to DRAMPower (Section V).  Here the
:class:`~repro.dram.voltage.ArrayVoltageModel` provides the *relative*
slowdown of the array at reduced voltage, which we apply to the JEDEC
nominal timings of the device spec.  At nominal voltage the returned
parameters equal the spec's nominal ones exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.specs import DramSpec
from repro.dram.voltage import ArrayVoltageModel


@dataclass(frozen=True)
class TimingParameters:
    """Resolved timing parameters at one supply voltage (nanoseconds)."""

    v_supply: float
    clock_ns: float
    t_rcd_ns: float
    t_ras_ns: float
    t_rp_ns: float
    t_cl_ns: float
    burst_length: int

    @property
    def t_rc_ns(self) -> float:
        """Row cycle time (activate-to-activate in the same bank)."""
        return self.t_ras_ns + self.t_rp_ns

    @property
    def burst_time_ns(self) -> float:
        """Data-bus occupancy of one RD/WR burst (DDR: 2 beats/cycle)."""
        return self.burst_length * self.clock_ns / 2.0

    def cycles(self, time_ns: float) -> int:
        """Round a duration up to whole clock cycles."""
        if time_ns < 0:
            raise ValueError(f"time must be >= 0, got {time_ns}")
        return -(-int(round(time_ns * 1e6)) // int(round(self.clock_ns * 1e6)))


def timing_for_voltage(
    spec: DramSpec,
    v_supply: float,
    voltage_model: ArrayVoltageModel | None = None,
) -> TimingParameters:
    """Timing parameters of ``spec`` operated at ``v_supply``.

    The row-related parameters (tRCD, tRAS, tRP) are derated by the array
    voltage model's slowdown factor; the interface clock and CAS latency
    are unchanged (the I/O path runs from a separate regulated rail, as in
    the reduced-voltage study the paper builds on).
    """
    if voltage_model is None:
        voltage_model = ArrayVoltageModel(v_nominal=spec.electrical.v_nominal_volts)
    derate = voltage_model.derating_factor(v_supply)
    nominal = spec.timings
    return TimingParameters(
        v_supply=v_supply,
        clock_ns=nominal.clock_ns,
        t_rcd_ns=nominal.t_rcd_ns * derate,
        t_ras_ns=nominal.t_ras_ns * derate,
        t_rp_ns=nominal.t_rp_ns * derate,
        t_cl_ns=nominal.t_cl_ns,
        burst_length=nominal.burst_length,
    )

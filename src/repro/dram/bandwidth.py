"""DRAM bandwidth accounting.

The speed-up claim of Fig. 12(b) is fundamentally a bandwidth claim:
SparkXD's mapping keeps the data bus saturated (row hits + multi-bank
bursts hide ACT/PRE latency), so throughput at reduced voltage matches
the accurate-DRAM baseline.  This module provides the peak-bandwidth
reference those results are measured against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.row_buffer import TraceStatistics
from repro.dram.specs import DramSpec
from repro.dram.timing import TimingParameters


@dataclass(frozen=True)
class BandwidthReport:
    """Achieved vs peak bandwidth of one trace execution."""

    peak_gbps: float
    achieved_gbps: float
    bus_utilization: float

    @property
    def efficiency(self) -> float:
        return self.achieved_gbps / self.peak_gbps if self.peak_gbps else 0.0


def peak_bandwidth_gbps(spec: DramSpec) -> float:
    """Peak sustained column-access bandwidth in GB/s.

    One column access moves ``column_width_bits`` and occupies the data
    bus for one burst window (``burst_length`` beats at DDR); the peak
    is the back-to-back rate of such accesses.  LPDDR3-1600 with 64-bit
    columns and BL8: 64 bit / 5 ns = 1.6 GB/s.
    """
    burst_time_ns = spec.timings.burst_length * spec.timings.clock_ns / 2.0
    bits_per_second = spec.geometry.column_width_bits / (burst_time_ns * 1e-9)
    return bits_per_second / 8e9


def bandwidth_report(
    spec: DramSpec, stats: TraceStatistics, timing: TimingParameters
) -> BandwidthReport:
    """Achieved bandwidth of an executed trace."""
    peak = peak_bandwidth_gbps(spec)
    if stats.total_time_ns <= 0:
        return BandwidthReport(peak_gbps=peak, achieved_gbps=0.0, bus_utilization=0.0)
    bits_moved = stats.accesses * spec.geometry.column_width_bits
    achieved = bits_moved / (stats.total_time_ns * 1e-9) / 8e9
    utilization = stats.bus_busy_time_ns / stats.total_time_ns
    return BandwidthReport(
        peak_gbps=peak, achieved_gbps=achieved, bus_utilization=min(1.0, utilization)
    )

"""``python -m repro`` entry point.

The ``__main__`` guard matters: the sweep runner's worker pool can use
the ``spawn`` start method (see ``repro.pipeline.runner``), which
re-imports this module in every worker — without the guard each worker
would re-run the CLI.  It is also the entry point ``repro cluster
sweep`` launches for each localhost worker subprocess
(``python -m repro cluster worker``, see ``repro.cluster.executor``).
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())

"""Saving and loading trained models.

A :class:`~repro.snn.training.TrainedModel` is a handful of numpy
arrays plus scalar metadata; the on-disk format is a single ``.npz``
archive so models survive across sessions without pickle (no arbitrary
code execution on load).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.snn.training import TrainedModel

_FORMAT_VERSION = 1


def save_model(model: TrainedModel, path: Union[str, Path]) -> Path:
    """Write a trained model to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    payload = {
        "format_version": np.array(_FORMAT_VERSION),
        "weights": model.weights,
        "theta": model.theta,
        "assignments": model.assignments,
        "n_input": np.array(model.n_input),
        "n_neurons": np.array(model.n_neurons),
        "accuracy": np.array(model.accuracy),
        "metadata_json": np.array(json.dumps(model.metadata, default=str)),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **payload)
    return path


def load_model(path: Union[str, Path]) -> TrainedModel:
    """Read a trained model written by :func:`save_model`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    with np.load(path, allow_pickle=False) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported model format version {version} "
                f"(this build reads version {_FORMAT_VERSION})"
            )
        metadata = json.loads(str(archive["metadata_json"]))
        model = TrainedModel(
            weights=archive["weights"].astype(np.float64),
            theta=archive["theta"].astype(np.float64),
            assignments=archive["assignments"].astype(np.int64),
            n_input=int(archive["n_input"]),
            n_neurons=int(archive["n_neurons"]),
            accuracy=float(archive["accuracy"]),
            metadata=metadata,
        )
    _validate(model)
    return model


def _validate(model: TrainedModel) -> None:
    if model.weights.shape != (model.n_input, model.n_neurons):
        raise ValueError(
            f"weights shape {model.weights.shape} does not match "
            f"({model.n_input}, {model.n_neurons})"
        )
    for name in ("theta", "assignments"):
        arr = getattr(model, name)
        if arr.shape != (model.n_neurons,):
            raise ValueError(f"{name} must have shape ({model.n_neurons},)")

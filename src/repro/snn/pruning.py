"""Magnitude-based weight pruning.

The paper's Fig. 2(a) shows that the approximate-DRAM savings *compose*
with existing techniques such as weight pruning: pruning removes
synaptic connections (fewer weights → fewer DRAM accesses), voltage
scaling then cuts the energy of each remaining access.  This module
provides the pruning half of that combination.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def connectivity(weights: np.ndarray, threshold: float = 0.0) -> float:
    """Fraction of synapses with |w| above ``threshold`` (0 = present)."""
    arr = np.asarray(weights)
    if arr.size == 0:
        raise ValueError("weights must not be empty")
    return float((np.abs(arr) > threshold).mean())


def prune_by_magnitude(
    weights: np.ndarray, target_connectivity: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Zero the smallest-magnitude weights down to a connectivity target.

    Returns ``(pruned_weights, keep_mask)``; the input is untouched.
    ``target_connectivity`` is the fraction of synapses to *keep*
    (e.g. 0.7 keeps the strongest 70%), matching the "network
    connectivity" axis of Fig. 2(a).
    """
    if not 0.0 < target_connectivity <= 1.0:
        raise ValueError(
            f"target_connectivity must be in (0, 1], got {target_connectivity}"
        )
    arr = np.asarray(weights, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("weights must not be empty")
    keep = int(np.ceil(target_connectivity * arr.size))
    flat = np.abs(arr).ravel()
    if keep >= arr.size:
        mask = np.ones_like(arr, dtype=bool)
    else:
        cutoff = np.partition(flat, arr.size - keep)[arr.size - keep]
        mask = np.abs(arr) >= cutoff
        # Ties at the cutoff can keep too many; trim deterministically.
        excess = int(mask.sum()) - keep
        if excess > 0:
            tied = np.flatnonzero((np.abs(arr) == cutoff).ravel())
            drop = tied[:excess]
            flat_mask = mask.ravel()
            flat_mask[drop] = False
            mask = flat_mask.reshape(arr.shape)
    return arr * mask, mask


def pruned_weight_count(n_weights: int, target_connectivity: float) -> int:
    """Number of weights remaining after pruning to a connectivity level."""
    if n_weights < 0:
        raise ValueError(f"n_weights must be >= 0, got {n_weights}")
    if not 0.0 < target_connectivity <= 1.0:
        raise ValueError(
            f"target_connectivity must be in (0, 1], got {target_connectivity}"
        )
    return int(np.ceil(target_connectivity * n_weights))

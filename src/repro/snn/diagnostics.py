"""Training-health diagnostics for the unsupervised SNN.

Unsupervised STDP training fails in recognisable ways: the network goes
silent (thresholds too high / drive too low), fires in lockstep
(symmetry not broken — all adaptive thresholds rise together and no
neuron specialises), or a few neurons dominate every sample.  These
failure modes were observed while scaling this reproduction (see
``NetworkParameters.theta_init_max``); the diagnostics here make them
measurable so users catch them before wasting a training run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.rng import ensure_rng
from repro.snn.network import DiehlCookNetwork
from repro.snn.training import Encoder, _default_encoder, run_spike_counts


@dataclass(frozen=True)
class TrainingHealth:
    """Aggregate health indicators of a (partially) trained network."""

    #: mean spikes per sample across the excitatory layer.
    mean_spikes_per_sample: float
    #: fraction of neurons that fired at least once.
    active_neuron_fraction: float
    #: Gini-style concentration of spikes across neurons (0 = perfectly
    #: even, -> 1 = a single neuron produces all spikes).
    spike_concentration: float
    #: coefficient of variation of adaptive thresholds; ~0 means the
    #: population is moving in lockstep (the collapse signature).
    theta_dispersion: float
    #: mean pairwise cosine similarity of receptive fields (columns of
    #: the weight matrix); -> 1 means every neuron learned the same thing.
    receptive_field_similarity: float

    @property
    def is_silent(self) -> bool:
        return self.mean_spikes_per_sample < 1.0

    @property
    def is_lockstep(self) -> bool:
        return self.theta_dispersion < 0.05 and self.receptive_field_similarity > 0.95

    @property
    def is_degenerate(self) -> bool:
        return self.spike_concentration > 0.9

    def warnings(self) -> tuple:
        """Human-readable warnings for each triggered failure mode."""
        out = []
        if self.is_silent:
            out.append(
                "network is nearly silent: raise excitation_gain or lower "
                "the firing threshold"
            )
        if self.is_lockstep:
            out.append(
                "population fires in lockstep: increase theta_init_max to "
                "break the symmetry, or add training samples"
            )
        if self.is_degenerate:
            out.append(
                "a few neurons dominate all responses: increase "
                "inhibition_strength or theta_plus"
            )
        return tuple(out)


def _gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative vector (0 even, 1 concentrated)."""
    v = np.sort(np.asarray(values, dtype=np.float64))
    total = v.sum()
    if total <= 0:
        return 0.0
    n = v.size
    ranks = np.arange(1, n + 1)
    return float((2 * (ranks * v).sum() / (n * total)) - (n + 1) / n)


def check_training_health(
    network: DiehlCookNetwork,
    probe_images: np.ndarray,
    n_steps: int = 60,
    rng: Optional[np.random.Generator] = None,
    encoder: Encoder = _default_encoder,
) -> TrainingHealth:
    """Probe a network with a handful of samples and score its health.

    ``probe_images`` should be a small (10-30 sample) slice of the
    training set; the probe is inference-only and leaves the network's
    long-term state untouched.
    """
    if len(probe_images) == 0:
        raise ValueError("need at least one probe image")
    rng = ensure_rng(rng)
    theta_before = network.neurons.theta.copy()
    counts = run_spike_counts(network, probe_images, n_steps, rng, encoder)
    network.neurons.theta = theta_before  # inference keeps theta, but be safe

    per_neuron = counts.sum(axis=0).astype(np.float64)
    mean_spikes = float(counts.sum(axis=1).mean())
    active_fraction = float((per_neuron > 0).mean())
    concentration = _gini(per_neuron)

    theta = network.neurons.theta
    theta_mean = float(theta.mean())
    dispersion = float(theta.std() / theta_mean) if theta_mean > 0 else 1.0

    similarity = _mean_pairwise_cosine(network.weights, rng)
    return TrainingHealth(
        mean_spikes_per_sample=mean_spikes,
        active_neuron_fraction=active_fraction,
        spike_concentration=concentration,
        theta_dispersion=dispersion,
        receptive_field_similarity=similarity,
    )


def _mean_pairwise_cosine(
    weights: np.ndarray, rng: np.random.Generator, max_pairs: int = 200
) -> float:
    n = weights.shape[1]
    if n < 2:
        return 0.0
    norms = np.linalg.norm(weights, axis=0)
    safe = np.maximum(norms, 1e-12)
    normalised = weights / safe[None, :]
    pairs = min(max_pairs, n * (n - 1) // 2)
    i = rng.integers(0, n, size=pairs)
    j = rng.integers(0, n, size=pairs)
    distinct = i != j
    if not distinct.any():
        return 0.0
    sims = (normalised[:, i[distinct]] * normalised[:, j[distinct]]).sum(axis=0)
    return float(sims.mean())

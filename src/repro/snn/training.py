"""Unsupervised STDP training, label assignment and evaluation.

The Diehl & Cook pipeline the paper builds on is unsupervised: STDP
shapes the receptive fields, then each excitatory neuron is *assigned*
the class it responds to most strongly on labelled data, and inference
predicts the class whose assigned neurons spike most.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.rng import ensure_rng
from repro.snn.encoding import poisson_rate_code
from repro.snn.network import DiehlCookNetwork
from repro.snn.stdp import STDPParameters, normalize_columns


@dataclass
class TrainedModel:
    """Everything needed to run (and corrupt) a trained SNN.

    ``weights`` is the DRAM-resident tensor; ``theta`` and
    ``assignments`` are small per-neuron metadata assumed to live
    on-chip (they are not subject to DRAM errors in the paper's model).
    """

    weights: np.ndarray
    theta: np.ndarray
    assignments: np.ndarray
    n_input: int
    n_neurons: int
    accuracy: float = 0.0
    metadata: dict = field(default_factory=dict)

    def copy(self) -> "TrainedModel":
        return TrainedModel(
            weights=self.weights.copy(),
            theta=self.theta.copy(),
            assignments=self.assignments.copy(),
            n_input=self.n_input,
            n_neurons=self.n_neurons,
            accuracy=self.accuracy,
            metadata=dict(self.metadata),
        )

    def install_into(self, network: DiehlCookNetwork) -> None:
        network.set_weights(self.weights)
        network.neurons.theta = np.asarray(self.theta, dtype=network.dtype).copy()


Encoder = Callable[[np.ndarray, int, np.random.Generator], np.ndarray]


def _default_encoder(
    image: np.ndarray, n_steps: int, rng: np.random.Generator
) -> np.ndarray:
    return poisson_rate_code(image, n_steps, rng=rng)


def run_spike_counts(
    network: DiehlCookNetwork,
    images: np.ndarray,
    n_steps: int,
    rng: np.random.Generator,
    encoder: Encoder = _default_encoder,
    engine: str = "batched",
) -> np.ndarray:
    """Spike-count responses (n_samples, n_neurons) without learning.

    Routed through :class:`repro.engine.BatchedEvaluator`:
    ``engine="batched"`` (default) simulates the whole set in chunked
    vectorized passes, ``engine="sequential"`` runs the reference
    per-sample loop.  Both produce identical counts at the same ``rng``
    state; neither mutates ``network``.
    """
    from repro.engine import BatchedEvaluator

    evaluator = BatchedEvaluator.for_network(network, engine=engine)
    return evaluator.spike_counts(
        np.asarray(images, dtype=np.float64),
        n_steps,
        rng,
        weights=network.weights,
        encoder=None if encoder is _default_encoder else encoder,
    )


def assign_labels(
    spike_counts: np.ndarray, labels: np.ndarray, n_classes: int = 10
) -> np.ndarray:
    """Assign each neuron the class it fires for most, on average.

    Neurons that never fire get assignment ``-1`` and never vote.
    """
    labels = np.asarray(labels)
    if spike_counts.shape[0] != labels.shape[0]:
        raise ValueError("one label per response row required")
    n_neurons = spike_counts.shape[1]
    mean_rates = np.zeros((n_classes, n_neurons))
    for cls in range(n_classes):
        rows = spike_counts[labels == cls]
        if len(rows):
            mean_rates[cls] = rows.mean(axis=0)
    assignments = mean_rates.argmax(axis=0).astype(np.int64)
    silent = mean_rates.max(axis=0) <= 0
    assignments[silent] = -1
    return assignments


def predict(
    spike_counts: np.ndarray, assignments: np.ndarray, n_classes: int = 10
) -> np.ndarray:
    """Predict the class whose assigned neurons spiked most per sample.

    Votes are normalised by the number of neurons assigned to each class
    so that over-represented classes do not dominate.
    """
    votes = np.zeros((spike_counts.shape[0], n_classes))
    for cls in range(n_classes):
        members = assignments == cls
        n = int(members.sum())
        if n:
            votes[:, cls] = spike_counts[:, members].sum(axis=1) / n
    return votes.argmax(axis=1)


def evaluate_accuracy(
    network: DiehlCookNetwork,
    images: np.ndarray,
    labels: np.ndarray,
    assignments: np.ndarray,
    n_steps: int,
    rng: np.random.Generator,
    encoder: Encoder = _default_encoder,
    n_classes: int = 10,
    engine: str = "batched",
) -> float:
    """Classification accuracy of ``network`` on a labelled set.

    ``engine`` selects the evaluation path (see
    :func:`run_spike_counts`); both engines return the same accuracy.
    """
    counts = run_spike_counts(network, images, n_steps, rng, encoder, engine=engine)
    predictions = predict(counts, assignments, n_classes)
    return float((predictions == np.asarray(labels)).mean())


def apply_post_sample_update(
    network: DiehlCookNetwork,
    delta: Optional[np.ndarray] = None,
    base: Optional[np.ndarray] = None,
) -> None:
    """The post-presentation weight update shared by every training path.

    With ``delta``/``base`` given (the fault-aware and minibatch paths),
    the accumulated STDP delta is credited back onto the stored ``base``
    tensor — what the training write-back updates — and clipped to the
    physical range.  Either way the columns are then re-normalized to
    the configured L1 mass, so the clean sequential, fault-aware and
    minibatch paths all finish a presentation through one code path.
    """
    if delta is not None:
        if base is None:
            raise ValueError("delta requires the base tensor it applies to")
        network.weights = np.clip(base + delta, 0.0, network.w_max)
    if network.parameters.weight_norm > 0:
        normalize_columns(network.weights, network.parameters.weight_norm)


def train_unsupervised(
    network: DiehlCookNetwork,
    images: np.ndarray,
    labels: np.ndarray,
    n_steps: int = 100,
    epochs: int = 1,
    stdp_parameters: Optional[STDPParameters] = None,
    rng: Optional[np.random.Generator] = None,
    encoder: Encoder = _default_encoder,
    corrupt_weights: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    n_classes: int = 10,
    engine: str = "batched",
    batch_size: int = 1,
    kernel: str = "auto",
    encoding_cache=None,
) -> TrainedModel:
    """Train ``network`` with STDP and return the packaged model.

    ``corrupt_weights``, when given, is applied to the weight tensor
    before every presentation — this is the hook SparkXD's fault-aware
    training (Algorithm 1) uses to expose the network to DRAM bit
    errors *during* learning: the network computes with the corrupted
    weights, and STDP updates are applied to the stored (clean) tensor,
    exactly as a DRAM-backed accelerator would behave (errors corrupt
    reads; the training update writes back).

    The loop is executed by :class:`repro.engine.trainer.BatchedTrainer`:
    ``batch_size=1`` (default) presents one sample at a time and is
    bit-identical to the historical sequential loop at the same RNG
    state; ``batch_size>1`` presents minibatches in vectorized passes —
    a documented approximation that changes the trained weights (see
    ``docs/training.md``) while consuming the same random stream.
    ``kernel`` selects the (result-identical) minibatch time-loop
    backend; ``encoding_cache`` records/replays the encoded sample
    stream across repeated calls (see
    :class:`repro.engine.trainer.StageEncodingCache`).
    """
    from repro.engine.trainer import BatchedTrainer

    rng = ensure_rng(rng)
    images = np.asarray(images)
    labels = np.asarray(labels)
    if len(images) != len(labels):
        raise ValueError("images and labels must align")

    trainer = BatchedTrainer(
        network,
        stdp_parameters=stdp_parameters,
        batch_size=batch_size,
        encoder=None if encoder is _default_encoder else encoder,
        corrupt_weights=corrupt_weights,
        kernel=kernel,
    )
    trainer.train(
        images,
        n_steps=n_steps,
        epochs=epochs,
        rng=rng,
        encoding_cache=encoding_cache,
    )

    counts = run_spike_counts(network, images, n_steps, rng, encoder, engine=engine)
    assignments = assign_labels(counts, labels, n_classes)
    accuracy = evaluate_accuracy(
        network, images, labels, assignments, n_steps, rng, encoder, n_classes,
        engine=engine,
    )
    return TrainedModel(
        weights=network.weights.copy(),
        theta=network.neurons.theta.copy(),
        assignments=assignments,
        n_input=network.n_input,
        n_neurons=network.n_neurons,
        accuracy=accuracy,
        metadata={
            "epochs": epochs,
            "n_steps": n_steps,
            "train_batch_size": int(batch_size),
        },
    )

"""Weight storage representations: how synaptic weights live in DRAM.

The paper's accuracy evaluation uses FP32 weights (Section V); bit
errors flip bits of the stored IEEE-754 words, so a most-significant-
bit (exponent) flip can change a weight by orders of magnitude — the
effect called out at label-2 of Fig. 11.  A fixed-point representation
bounds the damage of any single flip to a known magnitude, which is why
the quantization ablation compares the two.

Every representation maps a float weight tensor to an integer *word*
array (``encode``), back (``decode``), and knows how to flip stored
bits (``flip_bits``).  ``decode(encode(w))`` is exact for FP32 and a
quantisation of ``w`` for fixed point.
"""

from __future__ import annotations

import abc
from typing import Tuple

import numpy as np

from repro.errors.bitops import flip_bits_uint


class WeightRepresentation(abc.ABC):
    """How a weight tensor is stored bit-for-bit in DRAM."""

    #: storage cost of one weight.
    bits_per_weight: int
    #: numpy dtype of the stored words.
    word_dtype: np.dtype
    name: str

    @abc.abstractmethod
    def encode(self, weights: np.ndarray) -> np.ndarray:
        """Float weights -> stored integer words (same shape)."""

    @abc.abstractmethod
    def decode(self, words: np.ndarray) -> np.ndarray:
        """Stored integer words -> float weights (same shape)."""

    def flip_bits(self, words: np.ndarray, flat_bit_indices: np.ndarray) -> np.ndarray:
        """Flip flat bit indices of the stored words (out-of-place)."""
        return flip_bits_uint(words, flat_bit_indices, self.bits_per_weight)

    def storage_bits(self, n_weights: int) -> int:
        if n_weights < 0:
            raise ValueError(f"n_weights must be >= 0, got {n_weights}")
        return n_weights * self.bits_per_weight

    def roundtrip(self, weights: np.ndarray) -> np.ndarray:
        """The weights as they would read back with zero errors."""
        return self.decode(self.encode(weights))


class Float32Representation(WeightRepresentation):
    """IEEE-754 float32 storage — the paper's FP32 evaluation setting.

    ``decode`` sanitises non-finite values (NaN/Inf produced by exponent
    bit flips) to zero: a hardware accelerator reading a corrupted weight
    still feeds *some* number to the MAC array, and flushing to zero is
    the common safe choice.  Finite-but-huge values are kept — they are
    exactly the accuracy-destroying MSB flips the paper describes.
    """

    bits_per_weight = 32
    word_dtype = np.dtype(np.uint32)
    name = "float32"

    def __init__(self, sanitize: bool = True, clip_range: tuple | None = None):
        """``clip_range=(lo, hi)`` saturates decoded values into a range.

        A synaptic weight read by the accelerator drives a conductance,
        which physically saturates: it cannot be negative and cannot
        exceed the maximum synapse strength.  Passing the network's
        weight range here models that saturation — an exponent-MSB flip
        then turns a weight into 0 or w_max instead of ±1e38.  The
        SparkXD pipeline uses ``clip_range=(0, w_max)``.
        """
        if clip_range is not None and not clip_range[0] < clip_range[1]:
            raise ValueError(f"clip_range must be (lo, hi) with lo < hi, got {clip_range}")
        self.sanitize = sanitize
        self.clip_range = clip_range

    def encode(self, weights: np.ndarray) -> np.ndarray:
        arr = np.ascontiguousarray(weights, dtype=np.float32)
        return arr.view(np.uint32).copy()

    def decode(self, words: np.ndarray) -> np.ndarray:
        arr = np.ascontiguousarray(words, dtype=np.uint32)
        values = arr.view(np.float32).copy()
        if self.sanitize:
            values[~np.isfinite(values)] = 0.0
        if self.clip_range is not None:
            np.clip(values, self.clip_range[0], self.clip_range[1], out=values)
        return values


class FixedPointRepresentation(WeightRepresentation):
    """Unsigned fixed-point storage over a known weight range.

    Weights in ``[w_min, w_max]`` quantise uniformly onto
    ``2**bits - 1`` levels.  A flip of stored bit ``b`` changes the
    decoded weight by at most ``(w_max - w_min) * 2**b / (2**bits - 1)``.
    """

    name = "fixed-point"

    def __init__(self, bits: int = 8, w_min: float = 0.0, w_max: float = 1.0):
        if bits not in (8, 16, 32):
            raise ValueError(f"bits must be 8, 16 or 32, got {bits}")
        if not w_max > w_min:
            raise ValueError(f"require w_max > w_min, got [{w_min}, {w_max}]")
        self.bits_per_weight = bits
        self.word_dtype = np.dtype({8: np.uint8, 16: np.uint16, 32: np.uint32}[bits])
        self.w_min = float(w_min)
        self.w_max = float(w_max)
        self._levels = (1 << bits) - 1

    def encode(self, weights: np.ndarray) -> np.ndarray:
        arr = np.asarray(weights, dtype=np.float64)
        clipped = np.clip(arr, self.w_min, self.w_max)
        scaled = (clipped - self.w_min) / (self.w_max - self.w_min) * self._levels
        return np.round(scaled).astype(self.word_dtype)

    def decode(self, words: np.ndarray) -> np.ndarray:
        arr = np.asarray(words).astype(np.float64)
        values = arr / self._levels * (self.w_max - self.w_min) + self.w_min
        return values.astype(np.float32)

    @property
    def step(self) -> float:
        """Quantisation step between adjacent levels."""
        return (self.w_max - self.w_min) / self._levels

    def max_flip_error(self) -> float:
        """Largest possible weight change from a single bit flip (MSB)."""
        return (self.w_max - self.w_min) * (1 << (self.bits_per_weight - 1)) / self._levels


def make_representation(name: str, **kwargs) -> WeightRepresentation:
    """Factory: ``'float32'`` or ``'int8'``/``'int16'`` fixed point."""
    key = name.lower()
    if key in ("float32", "fp32"):
        return Float32Representation(**kwargs)
    if key in ("int8", "fixed8", "q8"):
        return FixedPointRepresentation(bits=8, **kwargs)
    if key in ("int16", "fixed16", "q16"):
        return FixedPointRepresentation(bits=16, **kwargs)
    raise ValueError(f"unknown representation {name!r}")


def quantization_error(
    weights: np.ndarray, representation: WeightRepresentation
) -> Tuple[float, float]:
    """(max, rms) absolute round-trip error of storing ``weights``."""
    restored = representation.roundtrip(weights)
    err = np.abs(np.asarray(weights, dtype=np.float64) - restored)
    rms = float(np.sqrt(np.mean(err**2))) if err.size else 0.0
    return float(err.max()) if err.size else 0.0, rms

"""Spike-timing-dependent plasticity (STDP).

The paper trains with STDP "since it has been widely used by previous
works" (Section II-A).  We implement the trace-based, weight-dependent
post-synaptic rule of the Diehl & Cook unsupervised pipeline:

- every input neuron keeps a presynaptic *trace* ``x_pre`` that jumps to
  1 on a spike and decays exponentially;
- when an excitatory neuron fires, each of its incoming weights moves
  by ``nu * (x_pre - x_offset) * (w_max - w)**mu``:

  * recently active inputs (``x_pre > x_offset``) are potentiated,
  * silent inputs are depressed,
  * the ``(w_max - w)**mu`` factor softly bounds growth.

Weights therefore always stay inside ``[0, w_max]`` — the property the
fixed-point storage representation and the DRAM error analysis rely on.

Like the neuron and synapse state, the presynaptic trace carries an
arbitrary leading batch shape: a rule created with ``batch_shape=(B,)``
tracks ``B`` independent trace vectors and updates ``B`` weight tensors
(shaped ``(B, n_pre, n_post)``) in one call.

Two update modes cover the two training engines:

- :meth:`STDPRule.step` — the reference in-place rule: each post spike
  immediately moves (and clips) its incoming weights, so later steps of
  the same sample see the updated tensor;
- :meth:`STDPRule.step_accumulate` — the minibatch rule: every update
  is computed against a *frozen* weight tensor (its precomputed
  :meth:`frozen_bound` factor) and summed — over timesteps and over
  batch lanes — into a delta tensor the caller applies, clips and
  normalizes once per minibatch (see :mod:`repro.engine.trainer`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class STDPParameters:
    """Constants of the trace-based post-synaptic STDP rule."""

    learning_rate: float = 0.1
    tau_trace_ms: float = 20.0
    #: traces below this offset cause depression on a post spike.
    trace_offset: float = 0.4
    w_max: float = 1.0
    #: exponent of the soft weight bound.
    mu: float = 1.0

    def validate(self) -> None:
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be > 0")
        if self.tau_trace_ms <= 0:
            raise ValueError("tau_trace_ms must be > 0")
        if self.w_max <= 0:
            raise ValueError("w_max must be > 0")
        if self.mu < 0:
            raise ValueError("mu must be >= 0")


class STDPRule:
    """Stateful STDP updater for one input→excitatory projection."""

    def __init__(
        self,
        n_pre: int,
        parameters: STDPParameters | None = None,
        dt_ms: float = 1.0,
        batch_shape: Tuple[int, ...] = (),
        dtype: np.dtype = np.float64,
    ):
        if n_pre <= 0:
            raise ValueError(f"n_pre must be > 0, got {n_pre}")
        if dt_ms <= 0:
            raise ValueError(f"dt_ms must be > 0, got {dt_ms}")
        self.n_pre = n_pre
        self.parameters = parameters or STDPParameters()
        self.parameters.validate()
        self.dt_ms = dt_ms
        self.dtype = np.dtype(dtype)
        self._trace_decay = self.dtype.type(
            np.exp(-dt_ms / self.parameters.tau_trace_ms)
        )
        self.batch_shape = tuple(int(s) for s in batch_shape)
        self.x_pre = np.zeros(self.state_shape, dtype=self.dtype)
        # Scratch of the dense accumulate branch, lazily sized to
        # (lanes, n_post) / (n_pre, n_post) and reused across steps.
        self._active_scratch = np.empty((0, 0), dtype=self.dtype)
        self._update_scratch = np.empty((0, 0), dtype=self.dtype)
        # Cached learning_rate * bound of the current frozen tensor.
        self._gain_src: np.ndarray | None = None
        self._gain: np.ndarray | None = None

    @property
    def state_shape(self) -> Tuple[int, ...]:
        return self.batch_shape + (self.n_pre,)

    def set_batch_shape(self, batch_shape: Tuple[int, ...]) -> None:
        """Reallocate the trace at zero with a new leading batch shape."""
        self.batch_shape = tuple(int(s) for s in batch_shape)
        self.x_pre = np.zeros(self.state_shape, dtype=self.dtype)

    def reset_state(self) -> None:
        self.x_pre.fill(0.0)

    def step(
        self,
        weights: np.ndarray,
        pre_spikes: np.ndarray,
        post_spikes: np.ndarray,
    ) -> np.ndarray:
        """Advance traces one step and apply the update in place.

        Scalar form (``batch_shape=()``): ``weights`` has shape
        ``(n_pre, n_post)``, ``pre_spikes`` / ``post_spikes`` are boolean
        vectors.  Batched form: ``weights`` has shape
        ``batch_shape + (n_pre, n_post)`` — one independent weight
        tensor per batch element — and the spike arrays carry the batch
        shape on their leading axes.  ``weights`` is modified in place
        and returned.
        """
        p = self.parameters
        pre = np.asarray(pre_spikes, dtype=bool)
        if pre.shape != self.state_shape:
            raise ValueError(
                f"pre_spikes must have shape {self.state_shape}, got {pre.shape}"
            )
        self.x_pre *= self._trace_decay
        self.x_pre[pre] = 1.0

        if self.batch_shape == ():
            if weights.shape[0] != self.n_pre:
                raise ValueError(
                    f"weights must have {self.n_pre} presynaptic rows, "
                    f"got {weights.shape}"
                )
            post = np.flatnonzero(post_spikes)
            if post.size:
                columns = weights[:, post]
                delta = self.x_pre[:, None] - p.trace_offset
                bound = (p.w_max - columns) ** p.mu
                updated = columns + p.learning_rate * delta * bound
                weights[:, post] = np.clip(updated, 0.0, p.w_max)
            return weights

        expected = self.batch_shape + (self.n_pre, weights.shape[-1])
        if weights.ndim != len(expected) or weights.shape != expected:
            raise ValueError(
                f"batched weights must have shape {self.batch_shape + (self.n_pre, 'n_post')}, "
                f"got {weights.shape}"
            )
        post = np.asarray(post_spikes, dtype=bool)
        if post.shape != self.batch_shape + (weights.shape[-1],):
            raise ValueError(
                f"post_spikes must have shape {self.batch_shape + (weights.shape[-1],)}, "
                f"got {post.shape}"
            )
        if post.any():
            delta = self.x_pre[..., :, None] - p.trace_offset
            bound = (p.w_max - weights) ** p.mu
            updated = np.clip(
                weights + p.learning_rate * delta * bound, 0.0, p.w_max
            )
            np.copyto(weights, updated, where=post[..., None, :])
        return weights

    # ------------------------------------------------------------------
    # Minibatch (accumulate) mode — see repro.engine.trainer.
    def frozen_bound(self, weights: np.ndarray) -> np.ndarray:
        """Soft-bound factor ``(w_max - w)**mu`` of a frozen tensor.

        In accumulate mode the bound is evaluated against the weights
        the minibatch *reads* (frozen for its whole duration), so it can
        be computed once per minibatch instead of once per post spike.
        """
        p = self.parameters
        diff = p.w_max - np.asarray(weights, dtype=self.dtype)
        # x ** 1.0 is exactly x in IEEE arithmetic; skip the pow pass
        # for the default linear bound.
        return diff if p.mu == 1.0 else diff**p.mu

    def step_accumulate(
        self,
        pre_spikes: np.ndarray,
        post_spikes: np.ndarray,
        delta: np.ndarray,
        bound: np.ndarray,
    ) -> np.ndarray:
        """Advance traces one step; *accumulate* the update into ``delta``.

        Minibatch mode: the weight movement every post spike would apply
        is computed against a frozen tensor — ``bound`` is its
        :meth:`frozen_bound` — and summed over all batch lanes into the
        single ``(n_pre, n_post)`` tensor ``delta`` (modified in place
        and returned) instead of being applied to the weights.  Unlike
        :meth:`step`, updates from concurrent lanes therefore neither
        compound through the bound factor nor clip per step; the caller
        applies + clips + normalizes the summed delta once per
        minibatch.  The per-lane trace dynamics are identical to the
        in-place rule.
        """
        p = self.parameters
        pre = np.asarray(pre_spikes, dtype=bool)
        if pre.shape != self.state_shape:
            raise ValueError(
                f"pre_spikes must have shape {self.state_shape}, got {pre.shape}"
            )
        n_post = delta.shape[-1]
        if delta.shape != (self.n_pre, n_post):
            raise ValueError(
                f"delta must have shape ({self.n_pre}, n_post), got {delta.shape}"
            )
        if bound.shape != delta.shape:
            raise ValueError(
                f"bound must match delta's shape {delta.shape}, got {bound.shape}"
            )
        self.x_pre *= self._trace_decay
        self.x_pre[pre] = 1.0
        post = np.asarray(post_spikes, dtype=bool)
        if post.shape != self.batch_shape + (n_post,):
            raise ValueError(
                f"post_spikes must have shape {self.batch_shape + (n_post,)}, "
                f"got {post.shape}"
            )
        return self.accumulate_step(post, delta, bound, np.empty_like(self.x_pre))

    def accumulate_step(
        self,
        post_spikes: np.ndarray,
        delta: np.ndarray,
        bound: np.ndarray,
        offset_out: np.ndarray,
    ) -> np.ndarray:
        """The spiking-column accumulation of one (already-traced) step.

        The second half of :meth:`step_accumulate`, split out so the
        fused training loop (whose state kernel advances the trace
        itself) and the reference path share one implementation — the
        fused == reference bit-identity holds by construction here.
        ``offset_out`` is scratch shaped like ``x_pre``; the fused loop
        passes a preallocated workspace buffer, the reference path a
        fresh array (same values either way).  No validation: callers
        have checked shapes already.
        """
        p = self.parameters
        n_post = delta.shape[-1]
        lanes = post_spikes.reshape(-1, n_post)
        # Winner-take-all dynamics keep post spikes sparse: restricting
        # the matmul to the columns that spiked anywhere this step cuts
        # the accumulate cost from O(n_post) to O(spiking neurons).
        spiking = lanes.any(axis=0)
        n_spiking = np.count_nonzero(spiking)
        if not n_spiking:
            return delta
        # Summed over lanes: delta[:, j] grows by
        # lr * bound[:, j] * sum_{lanes b with post[b, j]} (x_pre[b] - offset),
        # one (n_pre, lanes) @ (lanes, spiking) matmul per step.
        np.subtract(self.x_pre, p.trace_offset, out=offset_out)
        offset = offset_out.reshape(-1, self.n_pre)
        # ``bound`` is frozen for the whole minibatch, so the
        # learning-rate scaling folds into it once instead of costing a
        # full-matrix pass per step.  The cache holds a reference to
        # its source, so the identity test cannot alias a recycled id.
        if self._gain_src is not bound:
            self._gain_src = bound
            self._gain = p.learning_rate * bound
        gain = self._gain
        if n_spiking * 4 >= n_post:
            # Dense step (the early, pre-homeostasis part of a sample):
            # the full matmul beats the fancy-indexed gathers/scatters.
            # Non-spiking columns contribute exact-zero products, so
            # this adds 0.0 there and the identical arithmetic on the
            # spiking columns — and both kernels route through this
            # same branch, so fused == reference is untouched.
            active = self._active_scratch
            update = self._update_scratch
            if active.shape != lanes.shape or update.shape != delta.shape:
                active = self._active_scratch = np.empty(
                    lanes.shape, dtype=self.dtype
                )
                update = self._update_scratch = np.empty(
                    delta.shape, dtype=self.dtype
                )
            np.copyto(active, lanes)
            np.matmul(offset.T, active, out=update)
            np.multiply(update, gain, out=update)
            np.add(delta, update, out=delta)
        else:
            cols = np.flatnonzero(spiking)
            active = lanes[:, cols].astype(self.dtype)
            delta[:, cols] += (offset.T @ active) * gain[:, cols]
        return delta


def normalize_columns(weights: np.ndarray, target_sum: float) -> np.ndarray:
    """Scale each column (one neuron's receptive field) to a fixed L1 mass.

    Diehl & Cook apply this after every sample so no neuron can win the
    competition by sheer total weight.  Operates in place and returns
    the array.
    """
    if target_sum <= 0:
        raise ValueError(f"target_sum must be > 0, got {target_sum}")
    sums = weights.sum(axis=0)
    scale = np.where(sums > 0, target_sum / np.maximum(sums, 1e-12), 1.0)
    weights *= scale[None, :]
    return weights

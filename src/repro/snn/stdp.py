"""Spike-timing-dependent plasticity (STDP).

The paper trains with STDP "since it has been widely used by previous
works" (Section II-A).  We implement the trace-based, weight-dependent
post-synaptic rule of the Diehl & Cook unsupervised pipeline:

- every input neuron keeps a presynaptic *trace* ``x_pre`` that jumps to
  1 on a spike and decays exponentially;
- when an excitatory neuron fires, each of its incoming weights moves
  by ``nu * (x_pre - x_offset) * (w_max - w)**mu``:

  * recently active inputs (``x_pre > x_offset``) are potentiated,
  * silent inputs are depressed,
  * the ``(w_max - w)**mu`` factor softly bounds growth.

Weights therefore always stay inside ``[0, w_max]`` — the property the
fixed-point storage representation and the DRAM error analysis rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class STDPParameters:
    """Constants of the trace-based post-synaptic STDP rule."""

    learning_rate: float = 0.1
    tau_trace_ms: float = 20.0
    #: traces below this offset cause depression on a post spike.
    trace_offset: float = 0.4
    w_max: float = 1.0
    #: exponent of the soft weight bound.
    mu: float = 1.0

    def validate(self) -> None:
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be > 0")
        if self.tau_trace_ms <= 0:
            raise ValueError("tau_trace_ms must be > 0")
        if self.w_max <= 0:
            raise ValueError("w_max must be > 0")
        if self.mu < 0:
            raise ValueError("mu must be >= 0")


class STDPRule:
    """Stateful STDP updater for one input→excitatory projection."""

    def __init__(
        self,
        n_pre: int,
        parameters: STDPParameters | None = None,
        dt_ms: float = 1.0,
    ):
        if n_pre <= 0:
            raise ValueError(f"n_pre must be > 0, got {n_pre}")
        if dt_ms <= 0:
            raise ValueError(f"dt_ms must be > 0, got {dt_ms}")
        self.n_pre = n_pre
        self.parameters = parameters or STDPParameters()
        self.parameters.validate()
        self.dt_ms = dt_ms
        self._trace_decay = np.exp(-dt_ms / self.parameters.tau_trace_ms)
        self.x_pre = np.zeros(n_pre, dtype=np.float64)

    def reset_state(self) -> None:
        self.x_pre.fill(0.0)

    def step(
        self,
        weights: np.ndarray,
        pre_spikes: np.ndarray,
        post_spikes: np.ndarray,
    ) -> np.ndarray:
        """Advance traces one step and apply the update in place.

        ``weights`` has shape ``(n_pre, n_post)`` and is modified and
        returned.  ``pre_spikes`` and ``post_spikes`` are boolean vectors.
        """
        p = self.parameters
        if weights.shape[0] != self.n_pre:
            raise ValueError(
                f"weights must have {self.n_pre} presynaptic rows, got {weights.shape}"
            )
        self.x_pre *= self._trace_decay
        self.x_pre[np.asarray(pre_spikes, dtype=bool)] = 1.0

        post = np.flatnonzero(post_spikes)
        if post.size:
            columns = weights[:, post]
            delta = self.x_pre[:, None] - p.trace_offset
            bound = (p.w_max - columns) ** p.mu
            updated = columns + p.learning_rate * delta * bound
            weights[:, post] = np.clip(updated, 0.0, p.w_max)
        return weights


def normalize_columns(weights: np.ndarray, target_sum: float) -> np.ndarray:
    """Scale each column (one neuron's receptive field) to a fixed L1 mass.

    Diehl & Cook apply this after every sample so no neuron can win the
    competition by sheer total weight.  Operates in place and returns
    the array.
    """
    if target_sum <= 0:
        raise ValueError(f"target_sum must be > 0, got {target_sum}")
    sums = weights.sum(axis=0)
    scale = np.where(sums > 0, target_sum / np.maximum(sums, 1e-12), 1.0)
    weights *= scale[None, :]
    return weights

"""Numpy SNN simulator substrate.

Implements the SNN stack of the paper's Section II-A: Leaky
Integrate-and-Fire neurons with adaptive thresholds, conductance-based
synapses, Poisson rate coding (plus the other codings the paper cites),
trace-based STDP, and the fully-connected architecture with lateral
inhibition of Fig. 4(a) (Diehl & Cook style, as used by the paper's
reference [7] and by BindsNET, the paper's simulation substrate [16]).
"""

from repro.snn.neurons import LIFParameters, AdaptiveLIFLayer
from repro.snn.synapses import ConductanceParameters, SynapticConductance
from repro.snn.encoding import (
    poisson_rate_code,
    rank_order_code,
    phase_code,
    burst_code,
)
from repro.snn.stdp import STDPParameters, STDPRule
from repro.snn.network import NetworkParameters, DiehlCookNetwork
from repro.snn.training import (
    TrainedModel,
    train_unsupervised,
    assign_labels,
    evaluate_accuracy,
)
from repro.snn.quantization import (
    WeightRepresentation,
    Float32Representation,
    FixedPointRepresentation,
)
from repro.snn.pruning import prune_by_magnitude, connectivity
from repro.snn.serialization import save_model, load_model
from repro.snn.diagnostics import TrainingHealth, check_training_health
from repro.snn.inhibitory import InhibitoryParameters, TwoLayerDiehlCookNetwork

__all__ = [
    "InhibitoryParameters",
    "TwoLayerDiehlCookNetwork",
    "save_model",
    "load_model",
    "TrainingHealth",
    "check_training_health",
    "LIFParameters",
    "AdaptiveLIFLayer",
    "ConductanceParameters",
    "SynapticConductance",
    "poisson_rate_code",
    "rank_order_code",
    "phase_code",
    "burst_code",
    "STDPParameters",
    "STDPRule",
    "NetworkParameters",
    "DiehlCookNetwork",
    "TrainedModel",
    "train_unsupervised",
    "assign_labels",
    "evaluate_accuracy",
    "WeightRepresentation",
    "Float32Representation",
    "FixedPointRepresentation",
    "prune_by_magnitude",
    "connectivity",
]

"""Leaky Integrate-and-Fire neurons with adaptive thresholds.

The paper uses LIF neurons "due to their low complexity" (Section II-A,
Fig. 4b): the membrane potential integrates presynaptic input, decays
exponentially otherwise, fires a spike when it crosses the threshold,
then resets and sits out a refractory period.

For the unsupervised Diehl & Cook architecture the excitatory neurons
additionally carry an *adaptive threshold* (homeostasis): every spike
raises a per-neuron offset ``theta`` that decays very slowly, forcing
neurons to specialise on different input classes instead of a few
neurons winning every competition.

All dynamic state is *batch-shape-polymorphic*: a layer created with
``batch_shape=(E, B)`` holds state arrays of shape ``(E, B, n_neurons)``
and advances ``E x B`` independent neuron populations per ``step`` call.
Every update is elementwise, so a batched step computes exactly the same
per-neuron arithmetic as the scalar (``batch_shape=()``) step — this is
what lets :mod:`repro.engine` guarantee batched evaluation is
bit-identical to a sequential per-sample loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class LIFParameters:
    """LIF neuron constants (units: mV and ms, matching Diehl & Cook)."""

    v_rest: float = -65.0
    v_reset: float = -60.0
    v_threshold: float = -52.0
    tau_membrane_ms: float = 100.0
    refractory_ms: float = 5.0
    #: reversal potential of excitatory synapses.
    e_excitatory: float = 0.0
    #: reversal potential of inhibitory synapses.
    e_inhibitory: float = -100.0
    #: threshold increment per spike (adaptive threshold).
    theta_plus: float = 0.3
    #: adaptive threshold decay time constant; very slow.
    tau_theta_ms: float = 1.0e7

    def validate(self) -> None:
        if self.tau_membrane_ms <= 0 or self.tau_theta_ms <= 0:
            raise ValueError("time constants must be > 0")
        if self.refractory_ms < 0:
            raise ValueError("refractory period must be >= 0")
        if not self.v_reset <= self.v_threshold:
            raise ValueError("require v_reset <= v_threshold")


class AdaptiveLIFLayer:
    """A vectorised population of adaptive-threshold LIF neurons.

    State arrays (shape ``batch_shape + (n_neurons,)``):

    - ``v`` — membrane potential (mV);
    - ``theta`` — adaptive threshold offset (mV, >= 0);
    - ``refractory_left`` — remaining refractory time (ms).

    The update follows conductance-based LIF dynamics::

        dv/dt = ((v_rest - v) + g_e (E_e - v) + g_i (E_i - v)) / tau_m

    integrated with forward Euler at step ``dt``.
    """

    def __init__(
        self,
        n_neurons: int,
        parameters: LIFParameters | None = None,
        dt_ms: float = 1.0,
        batch_shape: Tuple[int, ...] = (),
        dtype: np.dtype = np.float64,
    ):
        if n_neurons <= 0:
            raise ValueError(f"n_neurons must be > 0, got {n_neurons}")
        if dt_ms <= 0:
            raise ValueError(f"dt_ms must be > 0, got {dt_ms}")
        self.n_neurons = n_neurons
        self.parameters = parameters or LIFParameters()
        self.parameters.validate()
        self.dt_ms = dt_ms
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError(f"dtype must be float32 or float64, got {dtype}")
        self._theta_decay = self.dtype.type(
            np.exp(-dt_ms / self.parameters.tau_theta_ms)
        )
        self.batch_shape = tuple(int(s) for s in batch_shape)
        self.v = np.full(self.state_shape, self.parameters.v_rest, dtype=self.dtype)
        self.theta = np.zeros(self.state_shape, dtype=self.dtype)
        self.refractory_left = np.zeros(self.state_shape, dtype=self.dtype)

    # ------------------------------------------------------------------
    @property
    def state_shape(self) -> Tuple[int, ...]:
        """Shape of every state array: ``batch_shape + (n_neurons,)``."""
        return self.batch_shape + (self.n_neurons,)

    def set_batch_shape(self, batch_shape: Tuple[int, ...]) -> None:
        """Reallocate state with a new leading batch shape.

        Dynamic state (``v``, ``refractory_left``) returns to rest.  The
        per-neuron ``theta`` vector — assumed shared across the batch,
        which holds for every inference use — is re-broadcast into the
        new shape.
        """
        theta_vec = (
            np.asarray(self.theta, dtype=self.dtype).reshape(-1, self.n_neurons)[0]
            if self.theta.size
            else np.zeros(self.n_neurons, dtype=self.dtype)
        )
        self.batch_shape = tuple(int(s) for s in batch_shape)
        self.v = np.full(self.state_shape, self.parameters.v_rest, dtype=self.dtype)
        self.theta = np.broadcast_to(theta_vec, self.state_shape).copy()
        self.refractory_left = np.zeros(self.state_shape, dtype=self.dtype)

    def reset_state(self, keep_theta: bool = True) -> None:
        """Return the layer to rest between samples.

        ``theta`` is homeostatic long-term state: it survives sample
        boundaries during training (``keep_theta=True``) and is frozen at
        inference time.
        """
        self.v.fill(self.parameters.v_rest)
        self.refractory_left.fill(0.0)
        if not keep_theta:
            self.theta.fill(0.0)

    def step(
        self,
        g_excitatory: np.ndarray,
        g_inhibitory: np.ndarray,
        adapt: bool = True,
    ) -> np.ndarray:
        """Advance one timestep; returns the boolean spike array.

        ``g_excitatory`` / ``g_inhibitory`` are dimensionless conductance
        inputs for this step (see :mod:`repro.snn.synapses`), broadcast
        against the state shape.  ``adapt=False`` freezes the adaptive
        thresholds (inference mode).
        """
        p = self.parameters
        active = self.refractory_left <= 0.0

        dv = (
            (p.v_rest - self.v)
            + g_excitatory * (p.e_excitatory - self.v)
            + g_inhibitory * (p.e_inhibitory - self.v)
        ) * (self.dt_ms / p.tau_membrane_ms)
        self.v = np.where(active, self.v + dv, self.v)

        spikes = active & (self.v >= p.v_threshold + self.theta)
        self.v[spikes] = p.v_reset
        self.refractory_left[spikes] = p.refractory_ms
        self.refractory_left[~spikes] = np.maximum(
            0.0, self.refractory_left[~spikes] - self.dt_ms
        )
        if adapt:
            self.theta *= self._theta_decay
            self.theta[spikes] += p.theta_plus
        return spikes

    # ------------------------------------------------------------------
    def state_snapshot(self) -> dict:
        """Copy of the full neuron state (for checkpointing / tests)."""
        return {
            "v": self.v.copy(),
            "theta": self.theta.copy(),
            "refractory_left": self.refractory_left.copy(),
        }

    def load_state(self, snapshot: dict) -> None:
        for name in ("v", "theta", "refractory_left"):
            value = np.asarray(snapshot[name], dtype=self.dtype)
            if value.shape != self.state_shape:
                raise ValueError(f"{name} must have shape {self.state_shape}")
            setattr(self, name, value.copy())

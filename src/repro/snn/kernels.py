"""Fused per-step state kernels for the minibatch STDP training loop.

The training time loop of
:meth:`repro.snn.network.DiehlCookNetwork.run_batch_stdp` advances, per
timestep, the full dynamic state of ``B`` network lanes — conductances,
membrane potentials, refractory clocks, adaptive thresholds and the
presynaptic STDP traces.  Written as numpy expressions that is a dozen
temporary arrays per step; this module provides the same arithmetic as

- a **numpy** kernel: the exact ufunc sequence of
  ``DiehlCookNetwork._step_from_drive`` + ``AdaptiveLIFLayer.step`` +
  the trace decay/bump of ``STDPRule.step_accumulate``, written into a
  preallocated :class:`FusedWorkspace` (the training analogue of the
  allocation-free inference loop ``_run_batch_frozen``);
- an optional **numba** kernel: one jitted elementwise pass over the
  same state arrays, compiled lazily per dtype.

Both kernels are **bit-identical** to the reference step (and therefore
to each other).  For numpy that holds because every ufunc call below
has the same operands, operand order and output dtype as the reference
expression form.  For numba it holds by construction: the kernel is
written scalar-by-scalar with every intermediate rounded at exactly the
points the numpy ufunc sequence rounds — constants are pre-cast to the
compute dtype, and the one mixed-precision chain (lateral inhibition,
which numpy evaluates in float64 before storing back to the compute
dtype) is mirrored with explicit float64 intermediates and an explicit
downcast.  The column-restricted STDP *accumulation* (a BLAS matmul)
deliberately stays in shared numpy code
(:meth:`repro.snn.stdp.STDPRule.accumulate_step`) so both backends
reduce in the same order there too.

Backend selection happens at import: ``numba`` is used when importable,
pure numpy otherwise — nothing is ever installed, and every caller can
force a backend explicitly (tests assert cross-backend identity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.telemetry import get_metrics

try:  # optional accelerator; the numpy kernel is always available.
    import numba as _numba
except ImportError:  # pragma: no cover - exercised on numba-less hosts
    _numba = None

#: Whether the optional numba backend can be used in this process.
HAVE_NUMBA = _numba is not None

#: Valid values of the training ``kernel`` switch.  ``"auto"`` resolves
#: to ``"numba"`` when available, else ``"numpy"``; ``"reference"`` is
#: the unfused `_step_from_drive` + `step_accumulate` loop kept for
#: cross-checking.
KERNEL_CHOICES = ("auto", "numba", "numpy", "reference")


def default_kernel() -> str:
    """The backend ``kernel="auto"`` resolves to in this process."""
    return "numba" if HAVE_NUMBA else "numpy"


def resolve_kernel(kernel: str) -> str:
    """Validate and resolve a ``kernel`` switch value.

    Returns one of ``"numba"``, ``"numpy"`` or ``"reference"``.  Asking
    for ``"numba"`` explicitly on a host without numba raises — silently
    falling back would let a CI leg meant to exercise the jitted kernel
    pass without running it.
    """
    if kernel not in KERNEL_CHOICES:
        raise ValueError(
            f"unknown kernel {kernel!r}; choose from {list(KERNEL_CHOICES)}"
        )
    if kernel == "auto":
        resolved = default_kernel()
    elif kernel == "numba" and not HAVE_NUMBA:
        raise RuntimeError(
            "kernel='numba' requested but numba is not installed; "
            "use kernel='auto' to fall back to the numpy kernel"
        )
    else:
        resolved = kernel
    get_metrics().counter(f"kernels.resolved.{resolved}").inc()
    return resolved


class FusedWorkspace:
    """Preallocated scratch of the fused training time loop.

    One workspace serves every step of every minibatch of a given shape
    — :class:`repro.engine.trainer.BatchedTrainer` keeps one per
    minibatch size, so steady-state training allocates nothing inside
    the time loop (the ``workspace-discipline`` lint rule guards the
    loop bodies themselves).

    Buffers (``B`` lanes × ``n`` neurons × ``n_pre`` inputs):

    - ``s1``/``s2``/``thr`` — dtype scratch for the membrane chain and
      the per-step threshold ``v_threshold + theta``;
    - ``active``/``spikes``/``last`` — boolean masks (``last`` and
      ``spikes`` swap roles every step, exactly like the inference
      loop's double buffer);
    - ``row_count``/``row_inh`` — the ``(B, 1)`` lateral-inhibition
      row reductions (int64 spike count, float64 scaled total);
    - ``pre`` — contiguous copy of the step's presynaptic spikes;
    - ``offset`` — the ``x_pre - trace_offset`` operand of the
      column-restricted STDP accumulation.
    """

    def __init__(self, n_batch: int, n_neurons: int, n_pre: int, dtype: np.dtype):
        if n_batch < 1 or n_neurons < 1 or n_pre < 1:
            raise ValueError("workspace dims must be >= 1")
        self.n_batch = int(n_batch)
        self.n_neurons = int(n_neurons)
        self.n_pre = int(n_pre)
        self.dtype = np.dtype(dtype)
        shape = (self.n_batch, self.n_neurons)
        self.s1 = np.empty(shape, dtype=self.dtype)
        self.s2 = np.empty(shape, dtype=self.dtype)
        self.thr = np.empty(shape, dtype=self.dtype)
        self.active = np.empty(shape, dtype=bool)
        self.spikes = np.empty(shape, dtype=bool)
        self.last = np.empty(shape, dtype=bool)
        self.row_count = np.empty((self.n_batch, 1), dtype=np.int64)
        self.row_inh = np.empty((self.n_batch, 1), dtype=np.float64)
        self.pre = np.empty((self.n_batch, self.n_pre), dtype=bool)
        self.offset = np.empty((self.n_batch, self.n_pre), dtype=self.dtype)

    def matches(self, n_batch: int, n_neurons: int, n_pre: int, dtype) -> bool:
        """Whether this workspace fits a minibatch of the given shape."""
        return (
            self.n_batch == n_batch
            and self.n_neurons == n_neurons
            and self.n_pre == n_pre
            and self.dtype == np.dtype(dtype)
        )


@dataclass(frozen=True)
class FusedConstants:
    """Pre-cast step constants shared by both fused kernels.

    Every constant that meets a compute-dtype array is stored as a
    numpy scalar of that dtype — under NEP 50 a weak python float
    behaves exactly as-if cast to the array's dtype, so pre-casting
    reproduces the reference expressions bit for bit while giving the
    numba kernel concrete types.  ``inhibition`` alone stays float64:
    the reference inhibition chain mixes an int64 row reduction with a
    python float, which numpy evaluates in float64 before the store
    downcasts.
    """

    decay_e: np.number
    decay_i: np.number
    inhibition: np.float64
    v_rest: np.number
    e_excitatory: np.number
    e_inhibitory: np.number
    k: np.number
    v_threshold: np.number
    v_reset: np.number
    dt_ms: np.number
    refractory_ms: np.number
    theta_decay: np.number
    theta_plus: np.number
    trace_decay: np.number
    one: np.number

    @classmethod
    def for_loop(cls, network, stdp) -> "FusedConstants":
        """Constants of one ``run_batch_stdp`` fused loop."""
        p = network.parameters
        lif = p.lif
        D = network.dtype.type
        return cls(
            decay_e=network.g_excitatory._decay,
            decay_i=network.g_inhibitory._decay,
            inhibition=np.float64(p.inhibition_strength),
            v_rest=D(lif.v_rest),
            e_excitatory=D(lif.e_excitatory),
            e_inhibitory=D(lif.e_inhibitory),
            k=D(p.dt_ms / lif.tau_membrane_ms),
            v_threshold=D(lif.v_threshold),
            v_reset=D(lif.v_reset),
            dt_ms=D(p.dt_ms),
            refractory_ms=D(lif.refractory_ms),
            theta_decay=network.neurons._theta_decay,
            theta_plus=D(lif.theta_plus),
            trace_decay=stdp._trace_decay,
            one=D(1.0),
        )

    def as_args(self) -> Tuple:
        """Positional constant block of the numba kernel signature."""
        return (
            self.decay_e,
            self.decay_i,
            self.inhibition,
            self.v_rest,
            self.e_excitatory,
            self.e_inhibitory,
            self.k,
            self.v_threshold,
            self.v_reset,
            self.dt_ms,
            self.refractory_ms,
            self.theta_decay,
            self.theta_plus,
            self.trace_decay,
            self.one,
        )


def numpy_state_step(
    c: FusedConstants,
    ws: FusedWorkspace,
    drive: np.ndarray,
    g_e: np.ndarray,
    g_i: np.ndarray,
    v: np.ndarray,
    refr: np.ndarray,
    theta: np.ndarray,
    x_pre: np.ndarray,
    last: np.ndarray,
    spikes: np.ndarray,
    counts: np.ndarray,
) -> None:
    """One fused training step (numpy backend), allocation-free.

    Performs exactly the ufunc sequence of ``_step_from_drive`` with
    ``adapt=True`` plus the trace decay/bump of ``step_accumulate`` —
    same operations, same operand order, written into ``ws``'s scratch
    buffers.  ``ws.pre`` must already hold this step's presynaptic
    spikes; ``spikes`` receives the postsynaptic result (the caller
    swaps ``last``/``spikes`` afterwards, like the inference loop).
    """
    g_e *= c.decay_e
    g_e += drive
    # Lateral inhibition: row totals in int64/float64 exactly as the
    # reference `last.sum(axis=-1, keepdims=True) * inhibition` chain.
    np.sum(last, axis=-1, keepdims=True, out=ws.row_count)
    np.multiply(ws.row_count, c.inhibition, out=ws.row_inh)
    np.multiply(last, c.inhibition, out=ws.s1)
    np.subtract(ws.row_inh, ws.s1, out=ws.s1)
    g_i *= c.decay_i
    g_i += ws.s1
    np.less_equal(refr, 0.0, out=ws.active)
    np.subtract(c.v_rest, v, out=ws.s1)
    np.subtract(c.e_excitatory, v, out=ws.s2)
    ws.s2 *= g_e
    ws.s1 += ws.s2
    np.subtract(c.e_inhibitory, v, out=ws.s2)
    ws.s2 *= g_i
    ws.s1 += ws.s2
    ws.s1 *= c.k
    # Masked write, not `v += dv * active`: a non-finite dv (float32
    # overflow from unclipped corrupted weights) must leave refractory
    # neurons untouched exactly as the reference np.where does.
    ws.s1 += v
    np.copyto(v, ws.s1, where=ws.active)
    np.add(c.v_threshold, theta, out=ws.thr)
    np.greater_equal(v, ws.thr, out=spikes)
    spikes &= ws.active
    # Masked scalar writes: same elements, same values as the
    # boolean-indexed assignments of the reference step, minus the
    # index-array extraction those perform.
    np.copyto(v, c.v_reset, where=spikes)
    refr -= c.dt_ms
    np.maximum(refr, 0.0, out=refr)
    np.copyto(refr, c.refractory_ms, where=spikes)
    theta *= c.theta_decay
    np.add(theta, c.theta_plus, out=theta, where=spikes)
    x_pre *= c.trace_decay
    np.copyto(x_pre, c.one, where=ws.pre)
    counts += spikes


# ----------------------------------------------------------------------
# Numba backend: one jitted elementwise pass per step, specialised (and
# compiled lazily) per compute dtype.

_NUMBA_STEPS: dict = {}


def _build_numba_step(castf):
    """Compile the per-step kernel with ``castf`` as the dtype downcast.

    ``castf`` (``np.float32``/``np.float64``) marks the two spots where
    the reference ufunc sequence computes in float64 and the store
    rounds to the compute dtype (the lateral-inhibition chain).  All
    other arithmetic runs directly in the compute dtype because every
    constant argument is pre-cast (:class:`FusedConstants`).
    """

    def step(
        drive,
        pre,
        g_e,
        g_i,
        v,
        refr,
        theta,
        x_pre,
        last,
        spikes,
        counts,
        decay_e,
        decay_i,
        inhibition,
        v_rest,
        e_excitatory,
        e_inhibitory,
        k,
        v_threshold,
        v_reset,
        dt_ms,
        refractory_ms,
        theta_decay,
        theta_plus,
        trace_decay,
        one,
    ):  # pragma: no cover - compiled; covered by the optional-numba CI leg
        n_batch, n_neurons = v.shape
        n_pre = x_pre.shape[1]
        for b in range(n_batch):
            fired_last = 0
            for j in range(n_neurons):
                if last[b, j]:
                    fired_last += 1
            row_inh = np.float64(fired_last) * inhibition
            for j in range(n_neurons):
                ge = g_e[b, j] * decay_e
                ge = ge + drive[b, j]
                g_e[b, j] = ge
                lateral = castf(inhibition) if last[b, j] else castf(0.0)
                lateral = castf(row_inh - np.float64(lateral))
                gi = g_i[b, j] * decay_i
                gi = gi + lateral
                g_i[b, j] = gi
                vv = v[b, j]
                is_active = refr[b, j] <= 0.0
                dv = v_rest - vv
                s2 = e_excitatory - vv
                s2 = s2 * ge
                dv = dv + s2
                s2 = e_inhibitory - vv
                s2 = s2 * gi
                dv = dv + s2
                dv = dv * k
                dv = dv + vv
                if is_active:
                    vv = dv
                thr = v_threshold + theta[b, j]
                fired = is_active and (vv >= thr)
                if fired:
                    vv = v_reset
                v[b, j] = vv
                r = refr[b, j] - dt_ms
                if r < castf(0.0):
                    r = castf(0.0)
                if fired:
                    r = refractory_ms
                refr[b, j] = r
                th = theta[b, j] * theta_decay
                if fired:
                    th = th + theta_plus
                theta[b, j] = th
                spikes[b, j] = fired
                if fired:
                    counts[b, j] += 1
            for i in range(n_pre):
                x = x_pre[b, i] * trace_decay
                if pre[b, i]:
                    x = one
                x_pre[b, i] = x

    # cache=False: the closure over ``castf`` defeats numba's on-disk
    # cache; the per-process compile (a few seconds, once per dtype)
    # amortises over the training run.
    return _numba.njit(cache=False, fastmath=False)(step)


def numba_state_step(dtype: np.dtype):
    """The compiled numba step kernel for ``dtype`` (lazily built)."""
    if _numba is None:  # pragma: no cover - guarded by resolve_kernel
        raise RuntimeError("numba is not installed")
    dtype = np.dtype(dtype)
    fn = _NUMBA_STEPS.get(dtype)
    if fn is None:
        castf = np.float32 if dtype == np.dtype(np.float32) else np.float64
        fn = _build_numba_step(castf)
        _NUMBA_STEPS[dtype] = fn
    return fn


__all__ = [
    "FusedConstants",
    "FusedWorkspace",
    "HAVE_NUMBA",
    "KERNEL_CHOICES",
    "default_kernel",
    "numba_state_step",
    "numpy_state_step",
    "resolve_kernel",
]

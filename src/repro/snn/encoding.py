"""Spike coding: converting images into spike trains.

The paper's evaluation uses **rate coding with Poisson-distributed
spikes** (Section V).  Section II-A also cites rank-order, phase and
burst coding; all four are implemented so downstream code can swap the
encoder.

Every encoder maps a float image in ``[0, 1]`` (flattened, ``n_input``
pixels) to a boolean spike train of shape ``(n_steps, n_input)``.
"""

from __future__ import annotations

import numpy as np

from repro.rng import ensure_rng


def _check_image(image: np.ndarray) -> np.ndarray:
    arr = np.asarray(image, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("image must not be empty")
    if arr.min() < 0.0 or arr.max() > 1.0:
        raise ValueError("pixel intensities must lie in [0, 1]")
    return arr


def poisson_rate_code(
    image: np.ndarray,
    n_steps: int,
    dt_ms: float = 1.0,
    max_rate_hz: float = 63.75,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Poisson rate coding (the paper's encoder).

    Pixel intensity ``x`` fires at ``x * max_rate_hz``; each timestep of
    length ``dt_ms`` emits a spike independently with probability
    ``rate * dt``.  The default 63.75 Hz maximum matches the Diehl &
    Cook setup (255/4 Hz for a full-intensity MNIST pixel).
    """
    arr = _check_image(image)
    if n_steps <= 0 or dt_ms <= 0:
        raise ValueError("n_steps and dt_ms must be > 0")
    rng = ensure_rng(rng)
    p = np.clip(arr * max_rate_hz * dt_ms * 1e-3, 0.0, 1.0)
    return rng.random((n_steps, arr.size)) < p[None, :]


def rank_order_code(image: np.ndarray, n_steps: int) -> np.ndarray:
    """Rank-order coding: each pixel spikes once; brighter fires earlier.

    Pixels are ranked by intensity; the spike time is the rank scaled
    into the window.  Zero pixels never fire.
    """
    arr = _check_image(image)
    if n_steps <= 0:
        raise ValueError("n_steps must be > 0")
    spikes = np.zeros((n_steps, arr.size), dtype=bool)
    active = np.flatnonzero(arr > 0)
    if active.size == 0:
        return spikes
    order = active[np.argsort(-arr[active], kind="stable")]
    times = np.floor(np.arange(order.size) / order.size * n_steps).astype(int)
    spikes[times, order] = True
    return spikes


def phase_code(
    image: np.ndarray,
    n_steps: int,
    period: int = 8,
) -> np.ndarray:
    """Phase coding: intensity bits gate spikes in a repeating period.

    The intensity is quantised to ``period`` bits; bit ``k`` (MSB first)
    produces a spike in phase slot ``k`` of every period, so stronger
    pixels spike in earlier, more significant phases.
    """
    arr = _check_image(image)
    if n_steps <= 0 or period <= 0:
        raise ValueError("n_steps and period must be > 0")
    levels = (arr * ((1 << period) - 1)).round().astype(np.uint32)
    bit_index = (1 << period) >> 1
    bits = np.zeros((period, arr.size), dtype=bool)
    for k in range(period):
        bits[k] = (levels & (bit_index >> k)) != 0
    spikes = np.zeros((n_steps, arr.size), dtype=bool)
    for t in range(n_steps):
        spikes[t] = bits[t % period]
    return spikes


def burst_code(
    image: np.ndarray,
    n_steps: int,
    max_burst: int = 5,
) -> np.ndarray:
    """Burst coding: intensity sets the length of an initial spike burst.

    A pixel of intensity ``x`` emits ``round(x * max_burst)`` consecutive
    spikes from t=0; stronger pixels produce longer bursts.
    """
    arr = _check_image(image)
    if n_steps <= 0 or max_burst <= 0:
        raise ValueError("n_steps and max_burst must be > 0")
    lengths = np.round(arr * max_burst).astype(int)
    spikes = np.zeros((n_steps, arr.size), dtype=bool)
    horizon = min(max_burst, n_steps)
    for t in range(horizon):
        spikes[t] = lengths > t
    return spikes


ENCODERS = {
    "rate": poisson_rate_code,
    "rank-order": rank_order_code,
    "phase": phase_code,
    "burst": burst_code,
}

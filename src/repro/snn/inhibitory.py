"""Explicit inhibitory-layer variant of the Fig. 4(a) architecture.

The original Diehl & Cook network implements lateral inhibition through
a *separate inhibitory population*: each excitatory neuron drives one
inhibitory partner, and each inhibitory neuron projects back onto every
excitatory neuron except its partner.  The default
:class:`~repro.snn.network.DiehlCookNetwork` folds that loop into a
direct one-step inhibition (cheaper, same competitive effect);
this module provides the two-population version for users who want the
literature-faithful dynamics — e.g. to study the extra inhibition
latency, which the folded model hides.

The excitatory synaptic weights (the DRAM-resident tensor SparkXD
protects) are identical in both variants; the exc→inh and inh→exc
projections are fixed, small, and assumed on-chip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.rng import ensure_rng
from repro.snn.neurons import AdaptiveLIFLayer, LIFParameters
from repro.snn.network import NetworkParameters
from repro.snn.stdp import STDPRule, normalize_columns
from repro.snn.synapses import SynapticConductance


@dataclass(frozen=True)
class InhibitoryParameters:
    """Constants of the inhibitory population and its projections."""

    #: conductance an excitatory spike injects into its inhibitory partner.
    exc_to_inh_strength: float = 20.0
    #: conductance an inhibitory spike injects into the other excitatory
    #: neurons.
    inh_to_exc_strength: float = 10.0
    #: the inhibitory neurons: fast, non-adaptive LIF.
    lif: LIFParameters = field(
        default_factory=lambda: LIFParameters(
            v_threshold=-40.0,
            tau_membrane_ms=10.0,
            refractory_ms=2.0,
            theta_plus=0.0,
        )
    )

    def validate(self) -> None:
        if self.exc_to_inh_strength < 0 or self.inh_to_exc_strength < 0:
            raise ValueError("projection strengths must be >= 0")
        self.lif.validate()


class TwoLayerDiehlCookNetwork:
    """Input → excitatory layer ⇄ inhibitory layer (one-to-one pairing).

    The public surface matches :class:`DiehlCookNetwork` where it
    matters to the SparkXD pipeline: ``weights``, ``set_weights``,
    ``reset_state``, ``step`` and ``run_sample`` (excitatory spike
    counts).
    """

    def __init__(
        self,
        parameters: NetworkParameters | None = None,
        inhibitory: InhibitoryParameters | None = None,
        rng: Optional[np.random.Generator] = None,
        w_max: float = 1.0,
    ):
        self.parameters = parameters or NetworkParameters()
        self.parameters.validate()
        self.inhibitory_parameters = inhibitory or InhibitoryParameters()
        self.inhibitory_parameters.validate()
        p = self.parameters
        rng = ensure_rng(rng)
        self.w_max = w_max
        self.weights = rng.random((p.n_input, p.n_neurons)) * 0.3 * w_max
        if p.weight_norm > 0:
            normalize_columns(self.weights, p.weight_norm)

        self.excitatory = AdaptiveLIFLayer(p.n_neurons, p.lif, p.dt_ms)
        if p.theta_init_max > 0:
            self.excitatory.theta = rng.uniform(0.0, p.theta_init_max, p.n_neurons)
        self.inhibitory = AdaptiveLIFLayer(
            p.n_neurons, self.inhibitory_parameters.lif, p.dt_ms
        )
        self.g_exc_input = SynapticConductance(
            p.n_neurons, p.conductance.tau_excitatory_ms, p.dt_ms
        )
        self.g_exc_inhibition = SynapticConductance(
            p.n_neurons, p.conductance.tau_inhibitory_ms, p.dt_ms
        )
        self.g_inh_drive = SynapticConductance(
            p.n_neurons, p.conductance.tau_excitatory_ms, p.dt_ms
        )
        self._zero = np.zeros(p.n_neurons)

    # ------------------------------------------------------------------
    @property
    def n_input(self) -> int:
        return self.parameters.n_input

    @property
    def n_neurons(self) -> int:
        return self.parameters.n_neurons

    def set_weights(self, weights: np.ndarray) -> None:
        """Install a weight tensor (e.g. a DRAM-corrupted copy)."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (self.n_input, self.n_neurons):
            raise ValueError(
                f"weights must have shape ({self.n_input}, {self.n_neurons})"
            )
        self.weights = weights.copy()

    def reset_state(self, keep_theta: bool = True) -> None:
        self.excitatory.reset_state(keep_theta=keep_theta)
        self.inhibitory.reset_state(keep_theta=True)
        self.g_exc_input.reset_state()
        self.g_exc_inhibition.reset_state()
        self.g_inh_drive.reset_state()

    # ------------------------------------------------------------------
    def step(self, input_spikes: np.ndarray, adapt: bool = True) -> np.ndarray:
        """One timestep; returns the excitatory spike vector."""
        p = self.parameters
        q = self.inhibitory_parameters
        pre = np.asarray(input_spikes, dtype=bool)
        if pre.shape != (p.n_input,):
            raise ValueError(f"input spikes must have shape ({p.n_input},)")

        self.g_exc_input.g *= self.g_exc_input._decay
        active = np.flatnonzero(pre)
        if active.size:
            self.g_exc_input.g += self.weights[active].sum(axis=0) * p.excitation_gain

        exc_spikes = self.excitatory.step(
            self.g_exc_input.g, self.g_exc_inhibition.g, adapt=adapt
        )

        # exc -> inh: each excitatory spike drives its one partner.
        drive = np.where(exc_spikes, q.exc_to_inh_strength, 0.0)
        self.g_inh_drive.step(drive)
        inh_spikes = self.inhibitory.step(self.g_inh_drive.g, self._zero, adapt=False)

        # inh -> exc: every inhibitory spike suppresses all *other*
        # excitatory neurons (the lateral inhibition of Fig. 4a).
        n_inh = int(inh_spikes.sum())
        inhibition = np.full(p.n_neurons, n_inh * q.inh_to_exc_strength)
        if n_inh:
            inhibition[inh_spikes] -= q.inh_to_exc_strength
        self.g_exc_inhibition.step(inhibition)
        return exc_spikes

    def run_sample(
        self,
        spike_train: np.ndarray,
        stdp: Optional[STDPRule] = None,
        adapt: Optional[bool] = None,
        normalize: Optional[bool] = None,
    ) -> np.ndarray:
        """Present one encoded sample; returns excitatory spike counts."""
        p = self.parameters
        train = np.asarray(spike_train, dtype=bool)
        if train.ndim != 2 or train.shape[1] != p.n_input:
            raise ValueError(
                f"spike train must have shape (n_steps, {p.n_input})"
            )
        if adapt is None:
            adapt = stdp is not None
        if normalize is None:
            normalize = stdp is not None and p.weight_norm > 0
        self.reset_state(keep_theta=True)
        if stdp is not None:
            stdp.reset_state()
        counts = np.zeros(p.n_neurons, dtype=np.int64)
        for t in range(train.shape[0]):
            spikes = self.step(train[t], adapt=adapt)
            if stdp is not None:
                stdp.step(self.weights, train[t], spikes)
            counts += spikes
        if normalize and p.weight_norm > 0:
            normalize_columns(self.weights, p.weight_norm)
        return counts

"""Conductance-based synapse model.

Section II-A: "the synapse is modeled by the synaptic conductance, which
increases by weight ``w`` when a presynaptic spike arrives at a synapse,
and otherwise decreases exponentially."

:class:`SynapticConductance` tracks one conductance value per
postsynaptic neuron (the summed effect of all presynaptic spikes through
the weight matrix), decaying with time constant ``tau``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ConductanceParameters:
    """Synaptic conductance constants (ms)."""

    tau_excitatory_ms: float = 1.0
    tau_inhibitory_ms: float = 2.0

    def validate(self) -> None:
        if self.tau_excitatory_ms <= 0 or self.tau_inhibitory_ms <= 0:
            raise ValueError("conductance time constants must be > 0")


class SynapticConductance:
    """Exponentially decaying conductance for one neuron population."""

    def __init__(self, n_neurons: int, tau_ms: float, dt_ms: float = 1.0):
        if n_neurons <= 0:
            raise ValueError(f"n_neurons must be > 0, got {n_neurons}")
        if tau_ms <= 0 or dt_ms <= 0:
            raise ValueError("tau_ms and dt_ms must be > 0")
        self.n_neurons = n_neurons
        self.tau_ms = tau_ms
        self.dt_ms = dt_ms
        self._decay = np.exp(-dt_ms / tau_ms)
        self.g = np.zeros(n_neurons, dtype=np.float64)

    def reset_state(self) -> None:
        self.g.fill(0.0)

    def step(self, injected: np.ndarray | float = 0.0) -> np.ndarray:
        """Decay one step, then add ``injected`` conductance; return g."""
        self.g *= self._decay
        self.g += injected
        return self.g

    def inject_through_weights(
        self, weights: np.ndarray, presynaptic_spikes: np.ndarray
    ) -> np.ndarray:
        """Decay, then add ``weights.T @ spikes`` (spikes as 0/1 vector).

        ``weights`` has shape ``(n_pre, n_post)``; the conductance of
        postsynaptic neuron ``j`` grows by ``sum_i w[i, j] s[i]``.
        """
        if weights.shape[1] != self.n_neurons:
            raise ValueError(
                f"weights must map onto {self.n_neurons} postsynaptic neurons, "
                f"got shape {weights.shape}"
            )
        spikes = np.asarray(presynaptic_spikes, dtype=np.float64)
        if spikes.shape != (weights.shape[0],):
            raise ValueError(
                f"spike vector must have shape ({weights.shape[0]},), got {spikes.shape}"
            )
        self.g *= self._decay
        if spikes.any():
            self.g += spikes @ weights
        return self.g

"""Conductance-based synapse model.

Section II-A: "the synapse is modeled by the synaptic conductance, which
increases by weight ``w`` when a presynaptic spike arrives at a synapse,
and otherwise decreases exponentially."

:class:`SynapticConductance` tracks one conductance value per
postsynaptic neuron (the summed effect of all presynaptic spikes through
the weight matrix), decaying with time constant ``tau``.  Like the
neuron layer, its state carries an arbitrary leading batch shape, so one
object can integrate the conductances of ``E x B`` independent network
instances at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class ConductanceParameters:
    """Synaptic conductance constants (ms)."""

    tau_excitatory_ms: float = 1.0
    tau_inhibitory_ms: float = 2.0

    def validate(self) -> None:
        if self.tau_excitatory_ms <= 0 or self.tau_inhibitory_ms <= 0:
            raise ValueError("conductance time constants must be > 0")


def propagate_spikes(weights: np.ndarray, spikes: np.ndarray) -> np.ndarray:
    """Postsynaptic drive ``spikes @ weights`` for batched spike arrays.

    ``spikes`` has shape ``(..., n_pre)`` (boolean or float);
    ``weights`` is either one matrix ``(n_pre, n_post)`` — applied to
    every batch element — or a stack ``stack_shape + (n_pre, n_post)``
    whose ``stack_shape`` must equal ``spikes.shape[:len(stack_shape)]``
    (one weight tensor per leading batch index, e.g. per error
    realization).  Returns drive of shape ``spikes.shape[:-1] + (n_post,)``.
    """
    weights = np.asarray(weights, dtype=np.float64)
    spikes_f = np.asarray(spikes, dtype=np.float64)
    if weights.ndim < 2:
        raise ValueError(f"weights must be at least 2-D, got shape {weights.shape}")
    n_pre = weights.shape[-2]
    if spikes_f.shape[-1] != n_pre:
        raise ValueError(
            f"spikes must have {n_pre} presynaptic entries on the last axis, "
            f"got shape {spikes_f.shape}"
        )
    if weights.ndim == 2:
        batch = spikes_f.shape[:-1]
        flat = spikes_f.reshape(-1, n_pre) if spikes_f.ndim != 2 else spikes_f
        return (flat @ weights).reshape(batch + (weights.shape[-1],))
    stack = weights.shape[:-2]
    if spikes_f.ndim != len(stack) + 2 or spikes_f.shape[: len(stack)] != stack:
        raise ValueError(
            f"stacked weights {weights.shape} require spikes shaped "
            f"{stack + ('B', n_pre)}, got {spikes_f.shape}"
        )
    return np.matmul(spikes_f, weights)


class SynapticConductance:
    """Exponentially decaying conductance for one neuron population."""

    def __init__(
        self,
        n_neurons: int,
        tau_ms: float,
        dt_ms: float = 1.0,
        batch_shape: Tuple[int, ...] = (),
        dtype: np.dtype = np.float64,
    ):
        if n_neurons <= 0:
            raise ValueError(f"n_neurons must be > 0, got {n_neurons}")
        if tau_ms <= 0 or dt_ms <= 0:
            raise ValueError("tau_ms and dt_ms must be > 0")
        self.n_neurons = n_neurons
        self.tau_ms = tau_ms
        self.dt_ms = dt_ms
        self.dtype = np.dtype(dtype)
        self._decay = self.dtype.type(np.exp(-dt_ms / tau_ms))
        self.batch_shape = tuple(int(s) for s in batch_shape)
        self.g = np.zeros(self.state_shape, dtype=self.dtype)

    @property
    def state_shape(self) -> Tuple[int, ...]:
        return self.batch_shape + (self.n_neurons,)

    def set_batch_shape(self, batch_shape: Tuple[int, ...]) -> None:
        """Reallocate the conductance at zero with a new batch shape."""
        self.batch_shape = tuple(int(s) for s in batch_shape)
        self.g = np.zeros(self.state_shape, dtype=self.dtype)

    def reset_state(self) -> None:
        self.g.fill(0.0)

    def step(self, injected: np.ndarray | float = 0.0) -> np.ndarray:
        """Decay one step, then add ``injected`` conductance; return g.

        ``injected`` broadcasts against the state shape, so a batched
        conductance accepts per-instance injections of shape
        ``batch_shape + (n_neurons,)`` (or any broadcastable prefix).
        """
        self.g *= self._decay
        self.g += injected
        return self.g

    def inject_through_weights(
        self, weights: np.ndarray, presynaptic_spikes: np.ndarray
    ) -> np.ndarray:
        """Decay, then add ``spikes @ weights`` (spikes as 0/1 array).

        ``weights`` has shape ``(n_pre, n_post)`` (or a stack, see
        :func:`propagate_spikes`); the conductance of postsynaptic
        neuron ``j`` grows by ``sum_i w[i, j] s[i]`` per batch element.
        """
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape[-1] != self.n_neurons:
            raise ValueError(
                f"weights must map onto {self.n_neurons} postsynaptic neurons, "
                f"got shape {weights.shape}"
            )
        drive = propagate_spikes(weights, presynaptic_spikes)
        if drive.shape != self.state_shape:
            raise ValueError(
                f"spike batch produced drive of shape {drive.shape}; "
                f"expected the state shape {self.state_shape}"
            )
        return self.step(drive)

"""The fully-connected SNN architecture of the paper's Fig. 4(a).

Every input pixel connects to all excitatory neurons; each excitatory
spike feeds lateral inhibition back to all *other* neurons, promoting
competition (winner-take-all dynamics).  This is the Diehl & Cook
unsupervised architecture the paper adopts (its reference [7] and the
BindsNET substrate [16]); the network sizes of the evaluation are
N400, N900, N1600, N2500 and N3600 excitatory neurons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.snn.neurons import AdaptiveLIFLayer, LIFParameters
from repro.snn.stdp import STDPParameters, STDPRule, normalize_columns
from repro.snn.synapses import ConductanceParameters, SynapticConductance

#: Network sizes evaluated by the paper (Section V).
PAPER_NETWORK_SIZES = (400, 900, 1600, 2500, 3600)


@dataclass(frozen=True)
class NetworkParameters:
    """Constants of the Fig. 4(a) architecture."""

    n_input: int = 784
    n_neurons: int = 400
    dt_ms: float = 1.0
    #: inhibitory conductance every spike applies to the other neurons.
    inhibition_strength: float = 10.0
    #: scale of the excitatory drive per unit weight.
    excitation_gain: float = 3.0
    #: per-neuron L1 weight mass kept by normalisation (0 disables it).
    weight_norm: float = 20.0
    #: initial adaptive thresholds are drawn from U(0, theta_init_max).
    #: Weight normalisation equalises every neuron's total drive, so
    #: without this symmetry breaking large populations fire in
    #: lockstep, homeostasis punishes all of them identically, and the
    #: competition never differentiates (accuracy collapses to chance).
    theta_init_max: float = 2.0
    lif: LIFParameters = field(default_factory=LIFParameters)
    conductance: ConductanceParameters = field(default_factory=ConductanceParameters)

    def validate(self) -> None:
        if self.n_input <= 0 or self.n_neurons <= 0:
            raise ValueError("n_input and n_neurons must be > 0")
        if self.dt_ms <= 0:
            raise ValueError("dt_ms must be > 0")
        if self.inhibition_strength < 0 or self.excitation_gain <= 0:
            raise ValueError("gains must be non-negative (excitation > 0)")
        if self.theta_init_max < 0:
            raise ValueError("theta_init_max must be >= 0")
        self.lif.validate()
        self.conductance.validate()


class DiehlCookNetwork:
    """Input → excitatory layer with lateral inhibition (Fig. 4a).

    The synaptic weight matrix ``weights`` has shape
    ``(n_input, n_neurons)`` with values in ``[0, w_max]``.  It is the
    tensor SparkXD stores in (approximate) DRAM; replacing it with a
    corrupted copy models inference from faulty memory.
    """

    def __init__(
        self,
        parameters: NetworkParameters | None = None,
        rng: Optional[np.random.Generator] = None,
        w_max: float = 1.0,
    ):
        self.parameters = parameters or NetworkParameters()
        self.parameters.validate()
        if w_max <= 0:
            raise ValueError(f"w_max must be > 0, got {w_max}")
        p = self.parameters
        rng = rng or np.random.default_rng()
        self.w_max = w_max
        self.weights = rng.random((p.n_input, p.n_neurons)) * 0.3 * w_max
        self.neurons = AdaptiveLIFLayer(p.n_neurons, p.lif, p.dt_ms)
        if p.theta_init_max > 0:
            self.neurons.theta = rng.uniform(0.0, p.theta_init_max, p.n_neurons)
        self.g_excitatory = SynapticConductance(
            p.n_neurons, p.conductance.tau_excitatory_ms, p.dt_ms
        )
        self.g_inhibitory = SynapticConductance(
            p.n_neurons, p.conductance.tau_inhibitory_ms, p.dt_ms
        )
        self._last_spikes = np.zeros(p.n_neurons, dtype=bool)
        if p.weight_norm > 0:
            normalize_columns(self.weights, p.weight_norm)

    # ------------------------------------------------------------------
    @property
    def n_input(self) -> int:
        return self.parameters.n_input

    @property
    def n_neurons(self) -> int:
        return self.parameters.n_neurons

    @property
    def n_weights(self) -> int:
        return self.weights.size

    def set_weights(self, weights: np.ndarray) -> None:
        """Install a weight tensor (e.g. a DRAM-corrupted copy)."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (self.n_input, self.n_neurons):
            raise ValueError(
                f"weights must have shape ({self.n_input}, {self.n_neurons}), "
                f"got {weights.shape}"
            )
        self.weights = weights.copy()

    def reset_state(self, keep_theta: bool = True) -> None:
        """Clear per-sample dynamic state; keep long-term homeostasis."""
        self.neurons.reset_state(keep_theta=keep_theta)
        self.g_excitatory.reset_state()
        self.g_inhibitory.reset_state()
        self._last_spikes = np.zeros(self.n_neurons, dtype=bool)

    # ------------------------------------------------------------------
    def step(self, input_spikes: np.ndarray, adapt: bool = True) -> np.ndarray:
        """One network timestep; returns the excitatory spike vector."""
        p = self.parameters
        pre = np.asarray(input_spikes, dtype=bool)
        if pre.shape != (p.n_input,):
            raise ValueError(f"input spikes must have shape ({p.n_input},)")

        self.g_excitatory.g *= self.g_excitatory._decay
        active = np.flatnonzero(pre)
        if active.size:
            drive = self.weights[active].sum(axis=0) * p.excitation_gain
            self.g_excitatory.g += drive

        # Lateral inhibition: each spike last step inhibits all *other*
        # neurons (Fig. 4a's inhibition fan-out).
        n_spikes = int(self._last_spikes.sum())
        inhibition = np.full(
            p.n_neurons, n_spikes * p.inhibition_strength, dtype=np.float64
        )
        if n_spikes:
            inhibition[self._last_spikes] -= p.inhibition_strength
        self.g_inhibitory.step(inhibition)

        spikes = self.neurons.step(self.g_excitatory.g, self.g_inhibitory.g, adapt=adapt)
        self._last_spikes = spikes
        return spikes

    def run_sample(
        self,
        spike_train: np.ndarray,
        stdp: Optional[STDPRule] = None,
        adapt: Optional[bool] = None,
        normalize: Optional[bool] = None,
    ) -> np.ndarray:
        """Present one encoded sample; returns per-neuron spike counts.

        Passing an :class:`~repro.snn.stdp.STDPRule` enables learning
        (training mode); otherwise the run is pure inference with frozen
        adaptive thresholds.  ``normalize`` overrides the default
        post-sample column normalisation (fault-aware training applies
        it to the stored clean tensor instead of the corrupted copy).
        """
        p = self.parameters
        train = np.asarray(spike_train, dtype=bool)
        if train.ndim != 2 or train.shape[1] != p.n_input:
            raise ValueError(
                f"spike train must have shape (n_steps, {p.n_input}), got {train.shape}"
            )
        if adapt is None:
            adapt = stdp is not None
        self.reset_state(keep_theta=True)
        if stdp is not None:
            stdp.reset_state()
        if normalize is None:
            normalize = stdp is not None and p.weight_norm > 0
        counts = np.zeros(p.n_neurons, dtype=np.int64)
        for t in range(train.shape[0]):
            spikes = self.step(train[t], adapt=adapt)
            if stdp is not None:
                stdp.step(self.weights, train[t], spikes)
            counts += spikes
        if normalize and p.weight_norm > 0:
            normalize_columns(self.weights, p.weight_norm)
        return counts


def make_stdp(network: DiehlCookNetwork, parameters: STDPParameters | None = None) -> STDPRule:
    """An STDP rule sized for ``network``'s input projection."""
    params = parameters or STDPParameters(w_max=network.w_max)
    return STDPRule(network.n_input, params, network.parameters.dt_ms)

"""The fully-connected SNN architecture of the paper's Fig. 4(a).

Every input pixel connects to all excitatory neurons; each excitatory
spike feeds lateral inhibition back to all *other* neurons, promoting
competition (winner-take-all dynamics).  This is the Diehl & Cook
unsupervised architecture the paper adopts (its reference [7] and the
BindsNET substrate [16]); the network sizes of the evaluation are
N400, N900, N1600, N2500 and N3600 excitatory neurons.

Batching model
--------------
All dynamic state is batch-shape-polymorphic: a network with
``batch_shape=(E, B)`` advances ``E x B`` independent network instances
per step — ``B`` evaluation samples under ``E`` weight tensors (error
realizations) — with state arrays of shape ``(E, B, n_neurons)``.
Batched input drive is a ``spikes @ weights`` matmul (via
:func:`repro.snn.synapses.propagate_spikes` for online stepping, or the
sparse whole-sample form of :func:`sample_drive`).

:meth:`DiehlCookNetwork.run_batch` evaluates a whole batch of encoded
samples in one vectorized pass.  The per-step drive of the sequential
path is the classic sparse index-sum ``weights[active].sum(axis=0)``;
the batched path computes all drives up front with one sparse
``spikes @ weights`` matmul per realization (:func:`sample_drive`),
whose output rows are **bit-identical** to the per-step index-sum —
CSR row accumulation and numpy's axis-0 row reduction both add the
active weight rows left-to-right.  Every state update is elementwise,
so batched spike counts equal a sequential per-sample, per-timestep
loop exactly (the :mod:`repro.engine` equivalence guarantee, covered
by tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

try:  # scipy accelerates the batched drive; plain numpy works without it.
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - exercised via the forced fallback test
    _sparse = None

from repro.rng import ensure_rng
from repro.snn.kernels import (
    FusedConstants,
    FusedWorkspace,
    numba_state_step,
    numpy_state_step,
    resolve_kernel,
)
from repro.snn.neurons import AdaptiveLIFLayer, LIFParameters
from repro.snn.stdp import STDPParameters, STDPRule, normalize_columns
from repro.snn.synapses import (
    ConductanceParameters,
    SynapticConductance,
    propagate_spikes,
)

#: Network sizes evaluated by the paper (Section V).
PAPER_NETWORK_SIZES = (400, 900, 1600, 2500, 3600)


@dataclass(frozen=True)
class NetworkParameters:
    """Constants of the Fig. 4(a) architecture."""

    n_input: int = 784
    n_neurons: int = 400
    dt_ms: float = 1.0
    #: inhibitory conductance every spike applies to the other neurons.
    inhibition_strength: float = 10.0
    #: scale of the excitatory drive per unit weight.
    excitation_gain: float = 3.0
    #: per-neuron L1 weight mass kept by normalisation (0 disables it).
    weight_norm: float = 20.0
    #: initial adaptive thresholds are drawn from U(0, theta_init_max).
    #: Weight normalisation equalises every neuron's total drive, so
    #: without this symmetry breaking large populations fire in
    #: lockstep, homeostasis punishes all of them identically, and the
    #: competition never differentiates (accuracy collapses to chance).
    theta_init_max: float = 2.0
    lif: LIFParameters = field(default_factory=LIFParameters)
    conductance: ConductanceParameters = field(default_factory=ConductanceParameters)

    def validate(self) -> None:
        if self.n_input <= 0 or self.n_neurons <= 0:
            raise ValueError("n_input and n_neurons must be > 0")
        if self.dt_ms <= 0:
            raise ValueError("dt_ms must be > 0")
        if self.inhibition_strength < 0 or self.excitation_gain <= 0:
            raise ValueError("gains must be non-negative (excitation > 0)")
        if self.theta_init_max < 0:
            raise ValueError("theta_init_max must be >= 0")
        self.lif.validate()
        self.conductance.validate()


def step_drive(weights: np.ndarray, input_spikes: np.ndarray) -> np.ndarray:
    """One timestep's input drive: ``weights[active].sum(axis=0)``.

    The canonical sequential drive (inherited from the original scalar
    simulator): the rows of the weight matrix whose input spiked are
    accumulated top to bottom.  :func:`sample_drive` reproduces exactly
    this accumulation for every step of a sample at once.
    """
    active = np.flatnonzero(input_spikes)
    return weights[active].sum(axis=0)


def sample_drive(spike_train: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """All per-step input drives of one sample: ``train @ weights``.

    ``spike_train`` is boolean ``(n_steps, n_input)``; ``weights`` is
    one ``(n_input, n_neurons)`` matrix; the result has one drive row
    per timestep.  With scipy available the product is one sparse CSR
    matmul — O(spikes) instead of O(n_steps x n_input) work.

    Row ``t`` is **bit-identical** to
    ``step_drive(weights, spike_train[t])``: CSR accumulates each
    output row over its active columns in ascending order, exactly as
    numpy's axis-0 reduction adds the gathered weight rows.  (Covered
    by ``tests/test_engine.py``; the pure-numpy fallback runs the
    index-sum per step, so the identity holds with or without scipy.)
    """
    return _drive_rows(_drive_matrix(spike_train, np.asarray(weights).dtype), weights)


def _drive_matrix(spike_rows: np.ndarray, dtype: np.dtype = np.float64):
    """Prepare spike rows for (repeated) drive computation.

    Returns a CSR matrix when scipy is available, else the boolean
    array itself.  Building this once and reusing it across an E-stack
    of weight tensors amortises the sparse-structure construction.
    """
    rows = np.asarray(spike_rows, dtype=bool)
    if rows.ndim != 2:
        raise ValueError(f"spike rows must be 2-D, got shape {rows.shape}")
    if _sparse is None:
        return rows
    if rows.size >= 2**31:
        return _sparse.csr_matrix(rows, dtype=dtype)
    # Assemble the CSR triple directly from one flat nonzero scan —
    # several times faster than scipy's dense-to-CSR path and
    # structurally identical (row-major, ascending columns), so the
    # matvec accumulation order (hence every bit of the drive rows)
    # is unchanged.
    n_rows, n_cols = rows.shape
    flat = np.flatnonzero(rows)
    indices = (flat % n_cols).astype(np.int32)
    indptr = np.zeros(n_rows + 1, dtype=np.int32)
    np.cumsum(np.bincount(flat // n_cols, minlength=n_rows), out=indptr[1:])
    data = np.ones(flat.size, dtype=dtype)
    return _sparse.csr_matrix((data, indices, indptr), shape=rows.shape)


def _drive_rows(matrix, weights: np.ndarray) -> np.ndarray:
    """Drive rows of a prepared :func:`_drive_matrix` against one tensor."""
    if _sparse is not None and _sparse.issparse(matrix):
        return matrix @ weights
    rows = np.zeros((matrix.shape[0], weights.shape[1]), dtype=weights.dtype)
    for t in np.flatnonzero(matrix.any(axis=1)):
        rows[t] = step_drive(weights, matrix[t])
    return rows


def _delta_drive_rows(
    matrix, weights: np.ndarray, base_weights: np.ndarray, base_rows: np.ndarray
) -> np.ndarray:
    """Drive rows of a near-clean realization via exact row recomputation.

    For an error-realization stack close to a shared base tensor (low
    BER), most input rows of ``weights`` equal ``base_weights`` exactly
    — so most drive rows equal ``base_rows`` exactly, because a CSR
    output row (and the numpy fallback's index-sum) accumulates only
    the weight rows its spikes select, in a fixed order.  Only the
    drive rows touched by a *changed* input row need recomputing, and
    a CSR row-slice matmul preserves each row's accumulation order, so
    the result is **bit-identical** to ``_drive_rows(matrix, weights)``
    at a fraction of the flops.

    Falls back to the full product when the realization is not actually
    sparse against the base (high BER corrupts most input rows, at
    which point the bookkeeping would cost more than it saves).
    """
    changed = np.flatnonzero((weights != base_weights).any(axis=1))
    if changed.size == 0:
        return base_rows
    if changed.size * 4 >= weights.shape[0]:
        return _drive_rows(matrix, weights)
    if _sparse is not None and _sparse.issparse(matrix):
        indicator = np.zeros(weights.shape[0], dtype=matrix.dtype)
        indicator[changed] = 1.0
        touched = np.flatnonzero(matrix @ indicator)
        if touched.size == 0:
            return base_rows
        rows = base_rows.copy()
        rows[touched] = matrix[touched] @ weights
        return rows
    touched = np.flatnonzero(matrix[:, changed].any(axis=1))
    if touched.size == 0:
        return base_rows
    rows = base_rows.copy()
    for t in touched:
        rows[t] = step_drive(weights, matrix[t])
    return rows


class DiehlCookNetwork:
    """Input → excitatory layer with lateral inhibition (Fig. 4a).

    The synaptic weight matrix ``weights`` has shape
    ``(n_input, n_neurons)`` with values in ``[0, w_max]``.  It is the
    tensor SparkXD stores in (approximate) DRAM; replacing it with a
    corrupted copy models inference from faulty memory.  A batched
    network additionally accepts a *stack* of weight tensors — shape
    ``(E, n_input, n_neurons)`` for ``batch_shape=(E, B)`` — one per
    error realization.

    ``init_weights=False`` skips the random weight / theta
    initialisation (and leaves ``rng`` untouched): the cheap constructor
    for evaluation shells whose weights are installed afterwards.
    """

    def __init__(
        self,
        parameters: NetworkParameters | None = None,
        rng: Optional[np.random.Generator] = None,
        w_max: float = 1.0,
        batch_shape: Tuple[int, ...] = (),
        init_weights: bool = True,
        dtype: np.dtype = np.float64,
    ):
        self.parameters = parameters or NetworkParameters()
        self.parameters.validate()
        if w_max <= 0:
            raise ValueError(f"w_max must be > 0, got {w_max}")
        p = self.parameters
        self.w_max = w_max
        self.dtype = np.dtype(dtype)
        if init_weights:
            rng = ensure_rng(rng)
            self.weights = (
                rng.random((p.n_input, p.n_neurons)) * 0.3 * w_max
            ).astype(self.dtype, copy=False)
        else:
            self.weights = np.zeros((p.n_input, p.n_neurons), dtype=self.dtype)
        bs = tuple(int(s) for s in batch_shape)
        self.neurons = AdaptiveLIFLayer(
            p.n_neurons, p.lif, p.dt_ms, batch_shape=bs, dtype=self.dtype
        )
        if init_weights and p.theta_init_max > 0:
            self.neurons.theta = np.broadcast_to(
                rng.uniform(0.0, p.theta_init_max, p.n_neurons).astype(
                    self.dtype, copy=False
                ),
                self.neurons.state_shape,
            ).copy()
        self.g_excitatory = SynapticConductance(
            p.n_neurons,
            p.conductance.tau_excitatory_ms,
            p.dt_ms,
            batch_shape=bs,
            dtype=self.dtype,
        )
        self.g_inhibitory = SynapticConductance(
            p.n_neurons,
            p.conductance.tau_inhibitory_ms,
            p.dt_ms,
            batch_shape=bs,
            dtype=self.dtype,
        )
        self._last_spikes = np.zeros(bs + (p.n_neurons,), dtype=bool)
        if init_weights and p.weight_norm > 0:
            normalize_columns(self.weights, p.weight_norm)

    # ------------------------------------------------------------------
    @property
    def n_input(self) -> int:
        return self.parameters.n_input

    @property
    def n_neurons(self) -> int:
        return self.parameters.n_neurons

    @property
    def n_weights(self) -> int:
        return self.weights.size

    @property
    def batch_shape(self) -> Tuple[int, ...]:
        return self.neurons.batch_shape

    def set_batch_shape(self, batch_shape: Tuple[int, ...]) -> None:
        """Re-shape all dynamic state for a new leading batch shape.

        Membrane potentials and conductances return to rest; the
        per-neuron adaptive thresholds (shared across the batch) are
        re-broadcast.  The weight tensor is kept only if it is still
        compatible (a single matrix always is; a stack must match the
        new leading stack dims), otherwise it resets to a zero matrix
        awaiting :meth:`set_weights`.
        """
        bs = tuple(int(s) for s in batch_shape)
        self.neurons.set_batch_shape(bs)
        self.g_excitatory.set_batch_shape(bs)
        self.g_inhibitory.set_batch_shape(bs)
        self._last_spikes = np.zeros(bs + (self.n_neurons,), dtype=bool)
        if self.weights.ndim != 2 and self.weights.shape[:-2] != bs[:-1]:
            self.weights = np.zeros((self.n_input, self.n_neurons), dtype=self.dtype)

    def set_weights(self, weights: np.ndarray) -> None:
        """Install a weight tensor (e.g. a DRAM-corrupted copy).

        Accepts one ``(n_input, n_neurons)`` matrix, or — on a network
        with ``len(batch_shape) >= 2`` — a stack shaped
        ``batch_shape[:-1] + (n_input, n_neurons)`` holding one tensor
        per leading batch index.
        """
        weights = np.asarray(weights, dtype=self.dtype)
        expected_2d = (self.n_input, self.n_neurons)
        if weights.ndim == 2:
            if weights.shape != expected_2d:
                raise ValueError(
                    f"weights must have shape {expected_2d}, got {weights.shape}"
                )
        else:
            stack = self.batch_shape[:-1]
            if not stack or weights.shape != stack + expected_2d:
                raise ValueError(
                    f"weight stacks must have shape {self.batch_shape[:-1] + expected_2d} "
                    f"for batch shape {self.batch_shape}, got {weights.shape}"
                )
        self.weights = weights.copy()

    def reset_state(self, keep_theta: bool = True) -> None:
        """Clear per-sample dynamic state; keep long-term homeostasis."""
        self.neurons.reset_state(keep_theta=keep_theta)
        self.g_excitatory.reset_state()
        self.g_inhibitory.reset_state()
        self._last_spikes = np.zeros(self.batch_shape + (self.n_neurons,), dtype=bool)

    # ------------------------------------------------------------------
    def _step_from_drive(self, drive: np.ndarray, adapt: bool) -> np.ndarray:
        """Advance one timestep from a precomputed excitatory drive.

        Everything here is elementwise over the state shape, so the
        arithmetic of a batched step is bit-identical per element to the
        scalar step — the keystone of the engine equivalence guarantee.
        """
        p = self.parameters
        self.g_excitatory.step(drive)
        # Lateral inhibition: each spike last step inhibits all *other*
        # neurons (Fig. 4a's inhibition fan-out).
        last = self._last_spikes
        inhibition = (
            last.sum(axis=-1, keepdims=True) * p.inhibition_strength
            - p.inhibition_strength * last
        )
        self.g_inhibitory.step(inhibition)
        spikes = self.neurons.step(
            self.g_excitatory.g, self.g_inhibitory.g, adapt=adapt
        )
        self._last_spikes = spikes
        return spikes

    def step(self, input_spikes: np.ndarray, adapt: bool = True) -> np.ndarray:
        """One network timestep; returns the excitatory spike array.

        ``input_spikes`` has shape ``batch_shape + (n_input,)`` (a plain
        ``(n_input,)`` vector on an unbatched network).  The scalar path
        uses the sparse per-step index-sum (:func:`step_drive`); batched
        networks use the ``spikes @ weights`` matmul.
        """
        p = self.parameters
        pre = np.asarray(input_spikes, dtype=bool)
        expected = self.batch_shape + (p.n_input,)
        if pre.shape != expected:
            raise ValueError(f"input spikes must have shape {expected}")
        if self.batch_shape == () and self.weights.ndim == 2:
            drive = step_drive(self.weights, pre) * p.excitation_gain
        else:
            drive = propagate_spikes(self.weights, pre) * p.excitation_gain
        return self._step_from_drive(drive, adapt)

    def run_sample(
        self,
        spike_train: np.ndarray,
        stdp: Optional[STDPRule] = None,
        adapt: Optional[bool] = None,
        normalize: Optional[bool] = None,
    ) -> np.ndarray:
        """Present one encoded sample; returns per-neuron spike counts.

        Passing an :class:`~repro.snn.stdp.STDPRule` enables learning
        (training mode); otherwise the run is pure inference with frozen
        adaptive thresholds.  ``normalize`` overrides the default
        post-sample column normalisation (fault-aware training applies
        it to the stored clean tensor instead of the corrupted copy).
        Only available on an unbatched network; use :meth:`run_batch`
        for batched evaluation.
        """
        p = self.parameters
        if self.batch_shape != ():
            raise ValueError(
                "run_sample requires an unbatched network "
                f"(batch_shape {self.batch_shape}); use run_batch instead"
            )
        train = np.asarray(spike_train, dtype=bool)
        if train.ndim != 2 or train.shape[1] != p.n_input:
            raise ValueError(
                f"spike train must have shape (n_steps, {p.n_input}), got {train.shape}"
            )
        if adapt is None:
            adapt = stdp is not None
        self.reset_state(keep_theta=True)
        if stdp is not None:
            stdp.reset_state()
        if normalize is None:
            normalize = stdp is not None and p.weight_norm > 0
        counts = np.zeros(p.n_neurons, dtype=np.int64)
        for t in range(train.shape[0]):
            spikes = self.step(train[t], adapt=adapt)
            if stdp is not None:
                stdp.step(self.weights, train[t], spikes)
            counts += spikes
        if normalize and p.weight_norm > 0:
            normalize_columns(self.weights, p.weight_norm)
        return counts

    def run_batch(
        self,
        spike_trains: np.ndarray,
        adapt: bool = False,
        base_weights: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Present a batch of encoded samples in one vectorized pass.

        ``spike_trains`` is boolean ``(B, n_steps, n_input)`` where ``B``
        must equal the trailing batch dim.  With ``batch_shape=(B,)``
        the single weight matrix is applied to every sample; with
        ``batch_shape=(E, B)`` the installed weight stack (or a single
        matrix, shared) is applied realization-wise, and every sample is
        presented to all ``E`` realizations.  Returns per-neuron spike
        counts of shape ``batch_shape + (n_neurons,)``.

        ``base_weights`` (stacked networks only) marks the installed
        stack as ``E`` realizations of one base tensor — the clean
        weights a low-BER injector corrupted.  The base drive is then
        computed once and each realization recomputes only the drive
        rows its changed input rows touch (:func:`_delta_drive_rows`),
        which is bit-identical to the per-realization matmul.

        The spike counts are bit-identical to looping
        :meth:`run_sample` over realizations and samples at the same
        installed weights (see module docstring).
        """
        p = self.parameters
        bs = self.batch_shape
        if len(bs) not in (1, 2):
            raise ValueError(
                f"run_batch requires batch_shape (B,) or (E, B), got {bs}"
            )
        trains = np.asarray(spike_trains, dtype=bool)
        n_batch = bs[-1]
        if trains.ndim != 3 or trains.shape[0] != n_batch or trains.shape[2] != p.n_input:
            raise ValueError(
                f"spike trains must have shape ({n_batch}, n_steps, {p.n_input}), "
                f"got {trains.shape}"
            )
        n_steps = trains.shape[1]
        gain = p.excitation_gain

        # All drives up front: one sparse spikes @ weights matmul per
        # realization over the whole chunk (rows are per-(sample, step)
        # and bit-identical to the scalar per-step index-sum).  Layout
        # (n_steps,) + batch_shape + (n_neurons,) so the time loop below
        # reads one contiguous, copy-free slab per step.
        if self.weights.ndim == 2:
            base = self._sample_drives(trains, self.weights)
            drives = (
                base
                if len(bs) == 1
                else np.broadcast_to(
                    base[:, None, :, :], (n_steps,) + bs + (p.n_neurons,)
                )
            )
        else:
            matrix = _drive_matrix(
                trains.reshape(n_batch * n_steps, p.n_input), self.dtype
            )
            n_stack = self.weights.shape[0]
            drives = np.empty(
                (n_steps,) + bs + (p.n_neurons,), dtype=self.dtype
            )
            base_rows = None
            if base_weights is not None:
                base_weights = np.asarray(base_weights, dtype=self.dtype)
                if base_weights.shape != (p.n_input, p.n_neurons):
                    raise ValueError(
                        f"base_weights must have shape {(p.n_input, p.n_neurons)}, "
                        f"got {base_weights.shape}"
                    )
                base_rows = _drive_rows(matrix, base_weights)
            for e in range(n_stack):
                if base_rows is None:
                    rows = _drive_rows(matrix, self.weights[e])
                else:
                    rows = _delta_drive_rows(
                        matrix, self.weights[e], base_weights, base_rows
                    )
                drives[:, e, :, :] = rows.reshape(
                    n_batch, n_steps, p.n_neurons
                ).transpose(1, 0, 2)
            drives *= gain

        self.reset_state(keep_theta=True)
        if not adapt:
            return self._run_batch_frozen(drives, n_steps)
        counts = np.zeros(bs + (p.n_neurons,), dtype=np.int64)
        for t in range(n_steps):
            counts += self._step_from_drive(drives[t], adapt=adapt)
        return counts

    def prepare_drive_matrix(self, spike_trains: np.ndarray):
        """Prebuild the reusable sparse drive operator of a minibatch.

        The CSR matrix (or boolean fallback) that
        :meth:`run_batch_stdp` and :meth:`_sample_drives` would build
        from these trains — exposed so a caller presenting the *same*
        encoded minibatch repeatedly (the per-BER-stage amortization of
        :class:`repro.engine.trainer.StageEncodingCache`) pays the
        sparse-structure construction once.
        """
        trains = np.asarray(spike_trains, dtype=bool)
        if trains.ndim != 3 or trains.shape[2] != self.n_input:
            raise ValueError(
                f"spike trains must have shape (B, n_steps, {self.n_input}), "
                f"got {trains.shape}"
            )
        return _drive_matrix(
            trains.reshape(trains.shape[0] * trains.shape[1], self.n_input),
            self.dtype,
        )

    def _sample_drives(
        self, trains: np.ndarray, weights: np.ndarray, matrix=None
    ) -> np.ndarray:
        """Gain-scaled time-major drive slab of a chunk against one matrix.

        ``trains`` is boolean ``(B, n_steps, n_input)``; the result is a
        contiguous ``(n_steps, B, n_neurons)`` tensor whose rows are
        bit-identical to the scalar per-step index-sum (see
        :func:`sample_drive`).  ``matrix`` optionally supplies the
        prebuilt :meth:`prepare_drive_matrix` operator of these trains.
        Shared by :meth:`run_batch` (single matrix) and
        :meth:`run_batch_stdp`.
        """
        p = self.parameters
        n_batch, n_steps = trains.shape[0], trains.shape[1]
        if matrix is None:
            matrix = _drive_matrix(
                trains.reshape(n_batch * n_steps, p.n_input), self.dtype
            )
        rows = _drive_rows(matrix, weights)
        base = np.ascontiguousarray(
            rows.reshape(n_batch, n_steps, p.n_neurons).transpose(1, 0, 2)
        )
        base *= p.excitation_gain
        return base

    def run_batch_stdp(
        self,
        spike_trains: np.ndarray,
        stdp: STDPRule,
        delta: np.ndarray,
        kernel: str = "auto",
        workspace: Optional[FusedWorkspace] = None,
        matrix=None,
    ) -> np.ndarray:
        """Present a minibatch with learning against *frozen* weights.

        The batched half of the minibatch STDP engine
        (:class:`repro.engine.trainer.BatchedTrainer`): drives for the
        whole minibatch are precomputed from the single installed
        weight matrix with the same sparse CSR matmul as
        :meth:`run_batch`, the adaptive neurons advance with
        homeostasis on (``adapt=True``, per-lane thresholds), and each
        step's STDP updates are *accumulated* into ``delta`` against
        the frozen tensor instead of applied in place.  ``stdp`` must
        carry this network's batch shape ``(B,)``; its traces are reset
        at the start (one presentation per lane).  Returns per-lane
        spike counts ``(B, n_neurons)``.

        ``kernel`` selects the time-loop implementation (see
        :data:`repro.snn.kernels.KERNEL_CHOICES`): ``"auto"`` resolves
        to the jitted numba kernel when available, else the fused
        allocation-free numpy kernel; ``"reference"`` runs the original
        `_step_from_drive` + `step_accumulate` loop.  All three produce
        bit-identical weights, thresholds and counts (asserted in
        tests).  ``workspace`` optionally supplies the preallocated
        :class:`~repro.snn.kernels.FusedWorkspace` scratch of the fused
        kernels (one is allocated per call otherwise); ``matrix`` the
        prebuilt :meth:`prepare_drive_matrix` operator.
        """
        p = self.parameters
        bs = self.batch_shape
        resolved = resolve_kernel(kernel)
        if len(bs) != 1:
            raise ValueError(
                f"run_batch_stdp requires batch_shape (B,), got {bs}"
            )
        if self.weights.ndim != 2:
            raise ValueError(
                "run_batch_stdp requires a single weight matrix "
                f"(frozen for the minibatch), got shape {self.weights.shape}"
            )
        if stdp.batch_shape != bs:
            raise ValueError(
                f"stdp rule batch shape {stdp.batch_shape} must match the "
                f"network batch shape {bs}"
            )
        trains = np.asarray(spike_trains, dtype=bool)
        n_batch = bs[0]
        if trains.ndim != 3 or trains.shape[0] != n_batch or trains.shape[2] != p.n_input:
            raise ValueError(
                f"spike trains must have shape ({n_batch}, n_steps, {p.n_input}), "
                f"got {trains.shape}"
            )
        drives = self._sample_drives(trains, self.weights, matrix=matrix)
        bound = stdp.frozen_bound(self.weights)
        self.reset_state(keep_theta=True)
        stdp.reset_state()
        pre_steps = trains.transpose(1, 0, 2)  # (n_steps, B, n_input) view
        counts = np.zeros(bs + (p.n_neurons,), dtype=np.int64)
        if resolved == "reference":
            for t in range(trains.shape[1]):
                spikes = self._step_from_drive(drives[t], adapt=True)
                stdp.step_accumulate(pre_steps[t], spikes, delta, bound)
                counts += spikes
            return counts
        return self._run_batch_stdp_fused(
            drives, pre_steps, stdp, delta, bound, counts, workspace, resolved
        )

    def _run_batch_stdp_fused(
        self,
        drives: np.ndarray,
        pre_steps: np.ndarray,
        stdp: STDPRule,
        delta: np.ndarray,
        bound: np.ndarray,
        counts: np.ndarray,
        workspace: Optional[FusedWorkspace],
        backend: str,
    ) -> np.ndarray:
        """The training time loop, allocation-free.

        The training counterpart of :meth:`_run_batch_frozen`: per step
        the state kernel (:func:`repro.snn.kernels.numpy_state_step` or
        the jitted numba twin) performs exactly the ufunc sequence of
        :meth:`_step_from_drive` with ``adapt=True`` plus the STDP
        trace decay/bump into preallocated workspace buffers, then the
        spiking-column accumulation
        (:meth:`~repro.snn.stdp.STDPRule.accumulate_step`) runs in
        shared numpy/BLAS code for both backends.  Bit-identity with
        the reference loop is asserted in ``tests/test_engine_trainer``.
        """
        p = self.parameters
        n_batch = self.batch_shape[0]
        n_steps = drives.shape[0]
        ws = workspace
        if ws is None or not ws.matches(n_batch, p.n_neurons, p.n_input, self.dtype):
            ws = FusedWorkspace(n_batch, p.n_neurons, p.n_input, self.dtype)
        consts = FusedConstants.for_loop(self, stdp)
        g_e, g_i = self.g_excitatory.g, self.g_inhibitory.g
        v, refr = self.neurons.v, self.neurons.refractory_left
        theta, x_pre = self.neurons.theta, stdp.x_pre
        np.copyto(ws.last, self._last_spikes)
        last, spikes = ws.last, ws.spikes
        if backend == "numba":
            step_fn = numba_state_step(self.dtype)
            const_args = consts.as_args()
            for t in range(n_steps):
                np.copyto(ws.pre, pre_steps[t])
                step_fn(
                    drives[t], ws.pre, g_e, g_i, v, refr, theta, x_pre,
                    last, spikes, counts, *const_args,
                )
                stdp.accumulate_step(spikes, delta, bound, ws.offset)
                last, spikes = spikes, last
        else:
            for t in range(n_steps):
                np.copyto(ws.pre, pre_steps[t])
                numpy_state_step(
                    consts, ws, drives[t], g_e, g_i, v, refr, theta, x_pre,
                    last, spikes, counts,
                )
                stdp.accumulate_step(spikes, delta, bound, ws.offset)
                last, spikes = spikes, last
        self._last_spikes = last.copy()
        return counts

    def _run_batch_frozen(self, drives: np.ndarray, n_steps: int) -> np.ndarray:
        """The inference time loop, allocation-free.

        Performs exactly the ufunc sequence of
        :meth:`_step_from_drive` + :meth:`AdaptiveLIFLayer.step` (with
        frozen thresholds), element for element — same operations, same
        operand order, written into preallocated scratch buffers.  Cuts
        the per-step cost several-fold by eliminating the temporary
        arrays the expression forms would allocate; bit-identity with
        the scalar path is covered by the engine equivalence tests.
        """
        p = self.parameters
        lif = p.lif
        shape = self.batch_shape + (p.n_neurons,)
        k = p.dt_ms / lif.tau_membrane_ms
        g_e, g_i = self.g_excitatory, self.g_inhibitory
        v, refr = self.neurons.v, self.neurons.refractory_left
        # Frozen thresholds: v_threshold + theta is step-invariant.
        thr = lif.v_threshold + self.neurons.theta
        s1 = np.empty(shape, dtype=self.dtype)
        s2 = np.empty(shape, dtype=self.dtype)
        active = np.empty(shape, dtype=bool)
        spikes = np.empty(shape, dtype=bool)
        last = self._last_spikes
        counts = np.zeros(shape, dtype=np.int64)
        row_count = np.empty(shape[:-1] + (1,), dtype=np.int64)
        row_inh = np.empty(shape[:-1] + (1,), dtype=np.float64)
        for t in range(n_steps):
            g_e.g *= g_e._decay
            g_e.g += drives[t]
            np.sum(last, axis=-1, keepdims=True, out=row_count)
            np.multiply(row_count, p.inhibition_strength, out=row_inh)
            np.multiply(last, p.inhibition_strength, out=s1)
            np.subtract(row_inh, s1, out=s1)
            g_i.g *= g_i._decay
            g_i.g += s1
            np.less_equal(refr, 0.0, out=active)
            np.subtract(lif.v_rest, v, out=s1)
            np.subtract(lif.e_excitatory, v, out=s2)
            s2 *= g_e.g
            s1 += s2
            np.subtract(lif.e_inhibitory, v, out=s2)
            s2 *= g_i.g
            s1 += s2
            s1 *= k
            # Masked write, not `v += dv * active`: a non-finite dv (e.g.
            # float32 overflow from unclipped corrupted weights) must
            # leave refractory neurons untouched exactly as the scalar
            # np.where does — inf * False would poison them with NaN.
            s1 += v
            np.copyto(v, s1, where=active)
            np.greater_equal(v, thr, out=spikes)
            spikes &= active
            v[spikes] = lif.v_reset
            refr -= p.dt_ms
            np.maximum(refr, 0.0, out=refr)
            refr[spikes] = lif.refractory_ms
            counts += spikes
            last, spikes = spikes, last
        self._last_spikes = last.copy()
        return counts


def make_stdp(
    network: DiehlCookNetwork,
    parameters: STDPParameters | None = None,
    batch_shape: Tuple[int, ...] = (),
) -> STDPRule:
    """An STDP rule sized (and dtype-matched) for ``network``'s projection."""
    params = parameters or STDPParameters(w_max=network.w_max)
    return STDPRule(
        network.n_input,
        params,
        network.parameters.dt_ms,
        batch_shape=batch_shape,
        dtype=network.dtype,
    )

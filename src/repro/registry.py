"""Plugin-style name registries.

New scenarios — another workload generator, an additional error model, a
different weight-mapping heuristic, a second DRAM device — should plug
into the framework *by name*, without edits to the core modules that
consume them.  Each extensible family owns one :class:`Registry`
instance (``DATASETS``, ``ERROR_MODELS``, ``MAPPING_POLICIES``,
``DRAM_SPECS``); registering is either a call or a decorator::

    from repro.errors.models import ERROR_MODELS

    @ERROR_MODELS.register("model4", aliases=("burst",))
    class BurstErrorModel(ErrorModel):
        ...

Lookups are case-insensitive and normalise ``-``/``_`` so CLI spellings
like ``lpddr3-1600-4gb`` and ``LPDDR3_1600_4GB`` resolve identically.
Unknown names raise :class:`RegistryError` (a :class:`ValueError`, so
existing ``pytest.raises(ValueError)`` call sites keep working) listing
every registered choice.

This module deliberately imports nothing from the rest of the package so
any layer can depend on it without cycles.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, Optional, Sequence, Tuple


class RegistryError(ValueError):
    """An unknown or duplicate name was used with a :class:`Registry`."""


def _normalise(name: str) -> str:
    return name.strip().lower().replace("-", "_")


class Registry:
    """A name → object table with aliases and decorator registration."""

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: Dict[str, Any] = {}
        self._aliases: Dict[str, str] = {}
        #: normalised key -> the spelling used at registration time,
        #: which is what names()/canonical_name() report back.
        self._display: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        obj: Optional[Any] = None,
        *,
        aliases: Sequence[str] = (),
        overwrite: bool = False,
    ):
        """Register ``obj`` under ``name`` (or use as a decorator)."""

        def _do(target: Any) -> Any:
            key = _normalise(name)
            if not overwrite and (key in self._entries or key in self._aliases):
                raise RegistryError(f"{self.kind} {name!r} is already registered")
            # An overwrite must also displace whatever previously owned
            # the key, alias or entry, or lookups would still resolve to
            # the old object while names() advertises the new one.
            self._aliases.pop(key, None)
            self._entries[key] = target
            self._display[key] = name
            for alias in aliases:
                alias_key = _normalise(alias)
                if not overwrite and (
                    alias_key in self._entries or alias_key in self._aliases
                ):
                    raise RegistryError(
                        f"{self.kind} alias {alias!r} is already registered"
                    )
                self._entries.pop(alias_key, None)
                self._display.pop(alias_key, None)
                self._aliases[alias_key] = key
            return target

        if obj is None:
            return _do  # decorator form
        return _do(obj)

    # ------------------------------------------------------------------
    def get(self, name: str) -> Any:
        """Look up ``name`` (canonical or alias); raise on unknown names."""
        key = _normalise(name)
        key = self._aliases.get(key, key)
        try:
            return self._entries[key]
        except KeyError:
            raise RegistryError(
                f"unknown {self.kind} {name!r}; choose from {list(self.names())}"
            ) from None

    def canonical_name(self, name: str) -> str:
        """Resolve ``name`` to its canonical registered spelling."""
        key = _normalise(name)
        key = self._aliases.get(key, key)
        if key not in self._entries:
            raise RegistryError(
                f"unknown {self.kind} {name!r}; choose from {list(self.names())}"
            )
        return self._display[key]

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._display.values()))

    def items(self) -> Tuple[Tuple[str, Any], ...]:
        return tuple(
            (self._display[key], entry) for key, entry in sorted(self._entries.items())
        )

    def __contains__(self, name: str) -> bool:
        key = _normalise(name)
        return key in self._entries or key in self._aliases

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, {list(self.names())})"

"""Batched vectorized evaluation engine.

One simulation pass for many samples and many error realizations: the
paper's tolerance curves (Fig. 8) and accuracy-vs-BER sweeps (Fig. 11)
evaluate one trained network under dozens of corrupted weight copies —
this package turns those N independent slow loops into a single
vectorized pass over ``(E, B, n_neurons)`` state, with chunking to
bound peak memory and a sequential fallback that is bit-identical at
the same seed.

See ``docs/engine.md`` for the batching model and knobs.
"""

from repro.engine.chunking import ChunkPolicy
from repro.engine.encoding import encode_spike_trains
from repro.engine.evaluator import ENGINES, BatchedEvaluator
from repro.engine.trainer import BatchedTrainer

__all__ = [
    "BatchedEvaluator",
    "BatchedTrainer",
    "ChunkPolicy",
    "ENGINES",
    "encode_spike_trains",
]

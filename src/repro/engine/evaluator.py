"""The batched evaluation engine.

:class:`BatchedEvaluator` answers the question every paper figure asks
— *how does this trained network respond to this evaluation set under
these (possibly corrupted) weights?* — in one vectorized pass instead
of thousands of Python-loop iterations.  It accepts either a single
weight matrix or a stack of ``E`` weight tensors (error realizations ×
BER points, see :meth:`repro.errors.injection.ErrorInjector.inject_stack`),
simulates state arrays of shape ``(E, B, n_neurons)`` per chunk, and
returns per-realization spike counts or accuracies.

Engines
-------
``engine="batched"``
    One :meth:`repro.snn.network.DiehlCookNetwork.run_batch` pass per
    chunk — the fast path.
``engine="sequential"``
    The reference per-sample, per-timestep :meth:`run_sample` loop.
    Spike counts are **bit-identical** to the batched engine at the
    same seed: encoding draws the same random stream regardless of
    batching, the batched drive rows equal the scalar per-step
    index-sum exactly (see :func:`repro.snn.network.sample_drive`),
    and all state updates are elementwise.  The switch is therefore a
    fallback / cross-check, not a different estimator.

Memory is bounded by a :class:`repro.engine.chunking.ChunkPolicy`:
arbitrarily large evaluation sets stream through fixed-size chunks
(chunk boundaries never change results).
"""

from __future__ import annotations

import time
from typing import Optional, Union

import numpy as np

from repro.engine.chunking import ChunkPolicy
from repro.engine.encoding import Encoder, encode_spike_trains
from repro.snn.network import DiehlCookNetwork, NetworkParameters
from repro.telemetry import get_metrics, span

#: Valid values of the engine switch (``SparkXDConfig.engine``).
ENGINES = ("batched", "sequential")


def _validate_engine(engine: str) -> str:
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; choose from {list(ENGINES)}")
    return engine


class BatchedEvaluator:
    """Evaluate many samples × many weight realizations in one pass.

    Parameters
    ----------
    parameters:
        The :class:`~repro.snn.network.NetworkParameters` of the
        network under evaluation.
    theta:
        Per-neuron adaptive-threshold vector ``(n_neurons,)`` (frozen
        during evaluation).  Defaults to zeros.
    w_max:
        Physical weight ceiling of the network.
    engine:
        ``"batched"`` (default) or ``"sequential"`` — see module
        docstring; both produce identical results.
    chunk_policy:
        Memory-bounding policy; defaults to a 256 MiB budget.
    dtype:
        Compute precision of the simulation state and drives
        (``numpy.float64`` default, or ``numpy.float32`` for roughly
        half the memory bandwidth on large passes).  Both engines use
        the same dtype, so the equivalence guarantee holds at either
        precision.
    """

    def __init__(
        self,
        parameters: NetworkParameters,
        theta: Optional[np.ndarray] = None,
        w_max: float = 1.0,
        engine: str = "batched",
        chunk_policy: Optional[ChunkPolicy] = None,
        dtype: np.dtype = np.float64,
    ):
        self.parameters = parameters
        self.engine = _validate_engine(engine)
        self.chunk_policy = chunk_policy or ChunkPolicy()
        self.dtype = np.dtype(dtype)
        if theta is None:
            theta = np.zeros(parameters.n_neurons)
        self.theta = np.asarray(theta, dtype=self.dtype).reshape(-1)
        if self.theta.shape != (parameters.n_neurons,):
            raise ValueError(
                f"theta must have {parameters.n_neurons} entries, "
                f"got shape {np.shape(theta)}"
            )
        self._network = DiehlCookNetwork(
            parameters, w_max=w_max, init_weights=False, dtype=self.dtype
        )

    # ------------------------------------------------------------------
    @classmethod
    def for_network(cls, network: DiehlCookNetwork, **kwargs) -> "BatchedEvaluator":
        """An evaluator matching a live (unbatched) network's setup.

        Captures the network's parameters, adaptive thresholds and
        compute dtype; the weights to evaluate are passed per call, so
        the network object itself is never mutated.
        """
        theta = np.asarray(network.neurons.theta)
        theta = theta.reshape(-1, network.n_neurons)[0]
        kwargs.setdefault("dtype", network.dtype)
        return cls(network.parameters, theta=theta, w_max=network.w_max, **kwargs)

    @classmethod
    def for_model(
        cls,
        model,
        parameters: Optional[NetworkParameters] = None,
        **kwargs,
    ) -> "BatchedEvaluator":
        """An evaluator for a :class:`~repro.snn.training.TrainedModel`."""
        parameters = parameters or NetworkParameters(
            n_input=model.n_input, n_neurons=model.n_neurons
        )
        return cls(parameters, theta=model.theta, **kwargs)

    # ------------------------------------------------------------------
    def spike_counts(
        self,
        images: np.ndarray,
        n_steps: int,
        rng: np.random.Generator,
        weights: np.ndarray,
        encoder: Optional[Encoder] = None,
        base_weights: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Per-neuron spike counts over an evaluation set.

        ``weights`` is one ``(n_input, n_neurons)`` matrix (returns
        ``(B, n_neurons)``) or a stack ``(E, n_input, n_neurons)``
        (returns ``(E, B, n_neurons)``); every sample is encoded once
        and presented to all ``E`` realizations.

        ``base_weights`` (stacked batched evaluation only) names the
        clean tensor the stack's realizations were corrupted *from*:
        the drive precompute is then shared across realizations — the
        clean drive is built once and each realization recomputes only
        the drive rows its weight deltas actually touch
        (:meth:`repro.snn.network.DiehlCookNetwork.run_batch`).  Counts
        are bit-identical with or without it; at low BER (few flipped
        weights per realization) it removes nearly all of the per-
        realization matmul work.
        """
        p = self.parameters
        if n_steps <= 0:
            raise ValueError(f"n_steps must be > 0, got {n_steps}")
        images = np.asarray(images, dtype=np.float64)
        if images.ndim != 2 or images.shape[1] != p.n_input:
            raise ValueError(
                f"images must have shape (n_samples, {p.n_input}), "
                f"got {images.shape}"
            )
        weights = np.asarray(weights, dtype=self.dtype)
        stacked = weights.ndim == 3
        if weights.shape[-2:] != (p.n_input, p.n_neurons) or weights.ndim not in (2, 3):
            raise ValueError(
                f"weights must be ({p.n_input}, {p.n_neurons}) or a "
                f"(E, {p.n_input}, {p.n_neurons}) stack, got {weights.shape}"
            )
        if base_weights is not None:
            base_weights = np.asarray(base_weights, dtype=self.dtype)
            if base_weights.shape != (p.n_input, p.n_neurons):
                raise ValueError(
                    f"base_weights must have shape ({p.n_input}, {p.n_neurons}), "
                    f"got {base_weights.shape}"
                )
            if not stacked:
                # Sharing drives only pays off across a realization
                # stack; a single matrix is simulated directly.
                base_weights = None
        n_real = weights.shape[0] if stacked else 1
        n_samples = images.shape[0]
        out_shape = (
            (n_real, n_samples, p.n_neurons) if stacked else (n_samples, p.n_neurons)
        )
        out = np.zeros(out_shape, dtype=np.int64)
        chunk = self.chunk_policy.samples_per_chunk(
            n_real, n_steps, p.n_input, p.n_neurons
        )
        installed = False
        chunk_hist = get_metrics().histogram("engine.eval_chunk_s")
        for window in self.chunk_policy.iter_chunks(n_samples, chunk):
            chunk_t0 = time.perf_counter()
            with span(
                "eval.chunk",
                engine=self.engine,
                samples=window.stop - window.start,
                realizations=n_real,
            ):
                trains = encode_spike_trains(
                    images[window], n_steps, rng, encoder=encoder
                )
                if self.engine == "batched":
                    counts = self._batched_counts(
                        trains, weights, stacked, installed, base_weights
                    )
                    installed = True
                else:
                    # The sequential reference computes per-sample drives
                    # directly; base_weights is a batched-path optimization
                    # only (results are identical either way).
                    counts = self._sequential_counts(trains, weights, stacked)
                out[..., window, :] = counts
            chunk_hist.observe(time.perf_counter() - chunk_t0)
        return out

    def accuracies(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        assignments: np.ndarray,
        n_steps: int,
        rng: np.random.Generator,
        weights: np.ndarray,
        encoder: Optional[Encoder] = None,
        n_classes: int = 10,
        base_weights: Optional[np.ndarray] = None,
    ) -> Union[float, np.ndarray]:
        """Classification accuracy per weight realization.

        Returns a scalar for a single weight matrix, or an ``(E,)``
        array for a stack.  ``base_weights`` shares the clean drive
        precompute across a realization stack (see
        :meth:`spike_counts`).
        """
        from repro.snn.training import predict

        labels = np.asarray(labels)
        counts = self.spike_counts(
            images, n_steps, rng, weights, encoder=encoder,
            base_weights=base_weights,
        )
        if counts.ndim == 2:
            return float((predict(counts, assignments, n_classes) == labels).mean())
        return np.array(
            [
                float((predict(c, assignments, n_classes) == labels).mean())
                for c in counts
            ]
        )

    # ------------------------------------------------------------------
    def _batched_counts(
        self, trains: np.ndarray, weights: np.ndarray, stacked: bool,
        installed: bool, base_weights: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        n_batch = trains.shape[0]
        shape = (weights.shape[0], n_batch) if stacked else (n_batch,)
        net = self._network
        if net.batch_shape != shape:
            # A ragged final chunk only reshapes state; set_batch_shape
            # keeps a compatible weight stack and re-broadcasts theta.
            net.set_batch_shape(shape)
        if not installed:
            net.neurons.theta = np.broadcast_to(
                self.theta, net.neurons.state_shape
            ).copy()
            net.set_weights(weights)
        return net.run_batch(trains, adapt=False, base_weights=base_weights)

    def _sequential_counts(
        self, trains: np.ndarray, weights: np.ndarray, stacked: bool
    ) -> np.ndarray:
        n_batch = trains.shape[0]
        net = self._network
        net.set_batch_shape(())
        net.neurons.theta = self.theta.copy()
        n = self.parameters.n_neurons
        if not stacked:
            net.set_weights(weights)
            counts = np.empty((n_batch, n), dtype=np.int64)
            for b in range(n_batch):
                counts[b] = net.run_sample(trains[b], stdp=None)
            return counts
        counts = np.empty((weights.shape[0], n_batch, n), dtype=np.int64)
        for e in range(weights.shape[0]):
            net.set_weights(weights[e])
            for b in range(n_batch):
                counts[e, b] = net.run_sample(trains[b], stdp=None)
        return counts

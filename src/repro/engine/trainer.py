"""The batched minibatch STDP training engine.

:class:`BatchedTrainer` is the training counterpart of
:class:`repro.engine.BatchedEvaluator`: instead of presenting one
sample per Python-loop iteration (encode, step ``n_steps`` times, apply
STDP in place, normalize), it presents a minibatch of ``B`` samples in
one vectorized pass —

1. **Encode** the minibatch in one Poisson draw
   (:func:`repro.engine.encoding.encode_spike_trains`), consuming
   exactly the random stream of ``B`` per-sample draws;
2. **Read** the weights once per minibatch: the fault-aware hook
   (``corrupt_weights``) produces one corrupted realization per
   minibatch read, modelling one DRAM burst read serving the whole
   batch;
3. **Drive precompute** from the frozen read tensor with the same
   sparse CSR ``spikes @ weights`` matmul as the evaluator
   (:meth:`repro.snn.network.DiehlCookNetwork.run_batch_stdp`);
4. **Accumulate** STDP deltas across all lanes and timesteps against
   the frozen tensor, with per-lane adaptive-threshold (theta)
   dynamics.  The time loop runs in a fused, allocation-free kernel
   (:mod:`repro.snn.kernels`) — jitted with numba when available, the
   exact-ufunc numpy twin otherwise — writing into a per-minibatch-size
   :class:`~repro.snn.kernels.FusedWorkspace` reused across steps *and*
   minibatches;
5. **Apply** once per minibatch: the summed delta is credited back to
   the stored clean tensor, clipped to the physical range and
   column-normalized
   (:func:`repro.snn.training.apply_post_sample_update`); theta
   advances by the sum of the per-lane increments.

Exactness contract
------------------
``batch_size=1`` runs the reference sequential presentation — the same
``run_sample`` + in-place STDP + post-sample update ufunc sequence and
the same RNG stream as the historical ``train_unsupervised`` loop — and
is therefore **bit-identical** to it (covered by
``tests/test_engine_trainer.py``).

``batch_size>1`` is a *documented approximation*, not an equivalent
reordering: within a minibatch, samples no longer see each other's
weight and theta updates (drives and STDP bounds are evaluated against
the frozen minibatch read, updates are summed and applied once), and
per-step clipping becomes per-minibatch clipping.  The permutation and
encoding draws are still byte-for-byte the sequential stream (a
``corrupt_weights`` hook that draws from the shared generator is the
exception: it is called once per minibatch instead of once per sample,
so fault-aware runs consume fewer injection draws), and the trained
weights differ — which is why ``train_batch_size`` is part of the
pipeline's stage cache fingerprints, unlike the result-identical
``engine`` switch.  The ``kernel`` switch, by contrast, is
result-identical: every backend produces bit-identical weights, theta
and counts (asserted in tests).  See ``docs/training.md`` for the full
semantics.

Encode-once-per-BER-stack amortization
--------------------------------------
Fault-aware training (Algorithm 1) trains the *same* sample stream
through several ascending BER stages.  A :class:`StageEncodingCache`
passed to :meth:`BatchedTrainer.train` records each epoch's
permutation-ordered encoded minibatches (and their CSR drive
operators) on first execution and replays them on every later call —
so an E-stage stack pays the Poisson encoding and sparse-structure
construction once instead of E times.  Replayed stages skip the
permutation and encoding draws, so the RNG stream differs from fresh
re-encoding: ``stage_encoding`` is a result-changing, fingerprinted
config knob (see ``docs/training.md``).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.engine.encoding import Encoder, EncodedMinibatch, encode_spike_trains
from repro.rng import ensure_rng
from repro.snn.encoding import poisson_rate_code
from repro.snn.kernels import FusedWorkspace, resolve_kernel
from repro.snn.network import DiehlCookNetwork, make_stdp
from repro.snn.stdp import STDPParameters
from repro.snn.training import apply_post_sample_update
from repro.telemetry import get_metrics, span

#: Valid values of the ``stage_encoding`` switch (config layer mirrors
#: this tuple; see SparkXDConfig.stage_encoding).
STAGE_ENCODINGS = ("fresh", "shared")


class StageEncodingCache:
    """Replayable record of one training call's encoded sample stream.

    Records, per epoch, the permutation-ordered
    :class:`~repro.engine.encoding.EncodedMinibatch` sequence of the
    first :meth:`BatchedTrainer.train` call it participates in, and
    replays it verbatim for every later call — the
    encode-once-per-BER-stack amortization of fault-aware training.
    The first (recording) call is bit-identical to running without the
    cache; replaying calls skip the permutation and encoding draws.

    Memory holds every encoded epoch: roughly
    ``epochs x n_train x n_steps x n_input`` bytes of boolean trains
    plus the cached CSR operators (similar size) — sized for the
    CPU-scale reproductions this repo targets, not for full MNIST.
    """

    def __init__(self):
        self._epochs: List[List[EncodedMinibatch]] = []

    def __len__(self) -> int:
        return len(self._epochs)

    def has_epoch(self, epoch: int) -> bool:
        return epoch < len(self._epochs)

    def minibatches(self, epoch: int) -> Tuple[EncodedMinibatch, ...]:
        return tuple(self._epochs[epoch])

    def record_epoch(self, epoch: int, minibatches: List[EncodedMinibatch]) -> None:
        if epoch != len(self._epochs):
            raise ValueError(
                f"epochs must be recorded in order; expected epoch "
                f"{len(self._epochs)}, got {epoch}"
            )
        self._epochs.append(list(minibatches))

    @property
    def n_bytes(self) -> int:
        """Approximate resident size of the cached spike trains."""
        return sum(mb.trains.nbytes for epoch in self._epochs for mb in epoch)


class BatchedTrainer:
    """Minibatch STDP training of one (unbatched) network.

    Parameters
    ----------
    network:
        The live :class:`~repro.snn.network.DiehlCookNetwork` being
        trained (``batch_shape=()``).  Weights and adaptive thresholds
        are updated in place; the compute dtype follows the network's.
    stdp_parameters:
        Constants of the plasticity rule; defaults to the rule sized
        for ``network`` (see :func:`repro.snn.network.make_stdp`).
    batch_size:
        Samples per presentation.  ``1`` (default) is the bit-exact
        sequential reference; larger values trade exactness for one
        vectorized pass per minibatch (see module docstring).
    encoder:
        Custom per-image encoder, or ``None`` for the default Poisson
        rate code (vectorized per minibatch, same random stream).
    corrupt_weights:
        Fault-aware read hook: maps the stored clean tensor to what a
        DRAM read returns.  Called once per presentation — per sample
        at ``batch_size=1``, per minibatch otherwise.
    kernel:
        Time-loop implementation of the minibatch pass (see
        :data:`repro.snn.kernels.KERNEL_CHOICES`): ``"auto"``
        (default; numba when available, else the fused numpy kernel),
        ``"numba"``, ``"numpy"``, or ``"reference"`` (the unfused
        loop).  Result-identical — every kernel produces bit-identical
        trained weights.
    """

    def __init__(
        self,
        network: DiehlCookNetwork,
        stdp_parameters: Optional[STDPParameters] = None,
        batch_size: int = 1,
        encoder: Optional[Encoder] = None,
        corrupt_weights: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        kernel: str = "auto",
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if network.batch_shape != ():
            raise ValueError(
                "BatchedTrainer trains an unbatched network "
                f"(batch_shape {network.batch_shape})"
            )
        resolve_kernel(kernel)  # validate eagerly; resolved per call
        self.network = network
        self.batch_size = int(batch_size)
        self.encoder = encoder
        self.corrupt_weights = corrupt_weights
        self.kernel = kernel
        self.stdp = make_stdp(network, stdp_parameters)
        # Batched machinery (shell network + batched rule + fused-kernel
        # workspace), built lazily and memoized *per minibatch size*: a
        # ragged final minibatch gets its own (small) state, and the
        # next epoch's full-size minibatch gets the full-shape buffers
        # back without any reallocation.
        self._machinery: Dict[
            int, Tuple[DiehlCookNetwork, object, FusedWorkspace]
        ] = {}

    # ------------------------------------------------------------------
    def train(
        self,
        images: np.ndarray,
        n_steps: int,
        epochs: int = 1,
        rng: Optional[np.random.Generator] = None,
        encoding_cache: Optional[StageEncodingCache] = None,
    ) -> None:
        """Run the full training loop over ``images`` in place.

        Every epoch draws one sample permutation from ``rng`` and then
        encodes samples in permutation order — the identical stream
        whether presentations happen one at a time or per minibatch.

        ``encoding_cache`` (minibatch mode only) records this call's
        encoded epochs, or — if it already holds them — replays the
        recorded stream instead of drawing permutations and encodings
        (see :class:`StageEncodingCache`).
        """
        if n_steps <= 0:
            raise ValueError(f"n_steps must be > 0, got {n_steps}")
        if epochs <= 0:
            raise ValueError(f"epochs must be > 0, got {epochs}")
        if encoding_cache is not None and self.batch_size == 1:
            raise ValueError(
                "encoding_cache requires batch_size > 1: the bit-exact "
                "sequential reference always re-encodes (stage_encoding="
                "'shared' is a minibatch-mode approximation)"
            )
        rng = ensure_rng(rng)
        images = np.asarray(images)
        for epoch in range(epochs):
            with span(
                "train.epoch",
                epoch=epoch,
                batch_size=self.batch_size,
                samples=len(images),
            ):
                if encoding_cache is not None and encoding_cache.has_epoch(epoch):
                    for prepared in encoding_cache.minibatches(epoch):
                        self.present_minibatch(None, n_steps, rng, prepared=prepared)
                    continue
                order = rng.permutation(len(images))
                if self.batch_size == 1:
                    for i in order:
                        self.present_sample(images[i], n_steps, rng)
                else:
                    recorded: Optional[List[EncodedMinibatch]] = (
                        [] if encoding_cache is not None else None
                    )
                    for start in range(0, len(order), self.batch_size):
                        batch = order[start : start + self.batch_size]
                        prepared = self.present_minibatch(images[batch], n_steps, rng)
                        if recorded is not None:
                            recorded.append(prepared)
                    if recorded is not None:
                        encoding_cache.record_epoch(epoch, recorded)

    # ------------------------------------------------------------------
    def present_sample(
        self, image: np.ndarray, n_steps: int, rng: np.random.Generator
    ) -> None:
        """The reference sequential presentation (``batch_size=1`` path).

        Preserves the historical loop exactly: encode, run with in-place
        STDP (the network computes with the corrupted read under the
        fault-aware hook), credit deltas back to the stored clean
        tensor, clip, normalize.
        """
        net = self.network
        if self.encoder is not None:
            train = self.encoder(image, n_steps, rng)
        else:
            train = poisson_rate_code(image, n_steps, rng=rng)
        if self.corrupt_weights is not None:
            # The network computes with the *corrupted* weights (what a
            # DRAM read returns); the STDP deltas it produces are then
            # credited back to the stored clean tensor (what the
            # training write-back updates).
            clean = net.weights
            corrupted = np.asarray(self.corrupt_weights(clean), dtype=net.dtype)
            net.weights = corrupted.copy()
            net.run_sample(train, stdp=self.stdp, normalize=False)
            delta = net.weights - corrupted
            apply_post_sample_update(net, delta=delta, base=clean)
        else:
            net.run_sample(train, stdp=self.stdp, normalize=False)
            apply_post_sample_update(net)

    def present_minibatch(
        self,
        images: Optional[np.ndarray],
        n_steps: int,
        rng: np.random.Generator,
        prepared: Optional[EncodedMinibatch] = None,
    ) -> EncodedMinibatch:
        """One vectorized minibatch presentation (``batch_size>1`` path).

        ``prepared`` replays an already-encoded minibatch (the
        :class:`StageEncodingCache` flow) instead of encoding
        ``images``; either way the presented
        :class:`~repro.engine.encoding.EncodedMinibatch` — trains plus
        lazily-built sparse drive operator — is returned so callers can
        record it.
        """
        net = self.network
        if prepared is None:
            trains = encode_spike_trains(images, n_steps, rng, encoder=self.encoder)
            prepared = EncodedMinibatch(trains=trains)
        trains = prepared.trains
        shell, stdp, workspace = self._batched_machinery(trains.shape[0])
        if prepared.matrix is None:
            prepared.matrix = shell.prepare_drive_matrix(trains)
        clean = net.weights
        if self.corrupt_weights is not None:
            # One corrupted realization per minibatch read: the whole
            # batch computes from the same faulty DRAM read.
            read = np.asarray(self.corrupt_weights(clean), dtype=net.dtype)
        else:
            read = clean
        theta0 = np.asarray(net.neurons.theta, dtype=net.dtype).reshape(-1)
        shell.neurons.theta = np.broadcast_to(
            theta0, shell.neurons.state_shape
        ).copy()
        shell.set_weights(read)
        delta = np.zeros_like(clean)
        kernel_t0 = time.perf_counter()
        shell.run_batch_stdp(
            trains,
            stdp,
            delta,
            kernel=self.kernel,
            workspace=workspace,
            matrix=prepared.matrix,
        )
        get_metrics().histogram("engine.kernel_step_s").observe(
            time.perf_counter() - kernel_t0
        )
        # Homeostasis: every lane's theta advanced independently from
        # theta0; the stored thresholds take the summed increments, the
        # minibatch analogue of B successive per-sample adaptations.
        net.neurons.theta = theta0 + (shell.neurons.theta - theta0).sum(axis=0)
        apply_post_sample_update(net, delta=delta, base=clean)
        return prepared

    # ------------------------------------------------------------------
    def _batched_machinery(self, n_batch: int):
        """Shell network + accumulate-mode rule + workspace for one size.

        Memoized per minibatch size: ragged→full round trips across
        epochs hand back the same objects (and their buffers) instead
        of reallocating the full-size state every time the shape flips
        (covered by a regression test).
        """
        net = self.network
        machinery = self._machinery.get(n_batch)
        if machinery is None:
            shell = DiehlCookNetwork(
                net.parameters,
                w_max=net.w_max,
                batch_shape=(n_batch,),
                init_weights=False,
                dtype=net.dtype,
            )
            rule = make_stdp(net, self.stdp.parameters, batch_shape=(n_batch,))
            workspace = FusedWorkspace(
                n_batch, net.n_neurons, net.n_input, net.dtype
            )
            machinery = (shell, rule, workspace)
            self._machinery[n_batch] = machinery
        return machinery

"""The batched minibatch STDP training engine.

:class:`BatchedTrainer` is the training counterpart of
:class:`repro.engine.BatchedEvaluator`: instead of presenting one
sample per Python-loop iteration (encode, step ``n_steps`` times, apply
STDP in place, normalize), it presents a minibatch of ``B`` samples in
one vectorized pass —

1. **Encode** the minibatch in one Poisson draw
   (:func:`repro.engine.encoding.encode_spike_trains`), consuming
   exactly the random stream of ``B`` per-sample draws;
2. **Read** the weights once per minibatch: the fault-aware hook
   (``corrupt_weights``) produces one corrupted realization per
   minibatch read, modelling one DRAM burst read serving the whole
   batch;
3. **Drive precompute** from the frozen read tensor with the same
   sparse CSR ``spikes @ weights`` matmul as the evaluator
   (:meth:`repro.snn.network.DiehlCookNetwork.run_batch_stdp`);
4. **Accumulate** STDP deltas across all lanes and timesteps against
   the frozen tensor
   (:meth:`repro.snn.stdp.STDPRule.step_accumulate`), with per-lane
   adaptive-threshold (theta) dynamics;
5. **Apply** once per minibatch: the summed delta is credited back to
   the stored clean tensor, clipped to the physical range and
   column-normalized
   (:func:`repro.snn.training.apply_post_sample_update`); theta
   advances by the sum of the per-lane increments.

Exactness contract
------------------
``batch_size=1`` runs the reference sequential presentation — the same
``run_sample`` + in-place STDP + post-sample update ufunc sequence and
the same RNG stream as the historical ``train_unsupervised`` loop — and
is therefore **bit-identical** to it (covered by
``tests/test_engine_trainer.py``).

``batch_size>1`` is a *documented approximation*, not an equivalent
reordering: within a minibatch, samples no longer see each other's
weight and theta updates (drives and STDP bounds are evaluated against
the frozen minibatch read, updates are summed and applied once), and
per-step clipping becomes per-minibatch clipping.  The permutation and
encoding draws are still byte-for-byte the sequential stream (a
``corrupt_weights`` hook that draws from the shared generator is the
exception: it is called once per minibatch instead of once per sample,
so fault-aware runs consume fewer injection draws), and the trained
weights differ — which is why ``train_batch_size`` is part of the
pipeline's stage cache fingerprints, unlike the result-identical
``engine`` switch.  See ``docs/training.md`` for the full semantics.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.engine.encoding import Encoder, encode_spike_trains
from repro.rng import ensure_rng
from repro.snn.encoding import poisson_rate_code
from repro.snn.network import DiehlCookNetwork, make_stdp
from repro.snn.stdp import STDPParameters
from repro.snn.training import apply_post_sample_update


class BatchedTrainer:
    """Minibatch STDP training of one (unbatched) network.

    Parameters
    ----------
    network:
        The live :class:`~repro.snn.network.DiehlCookNetwork` being
        trained (``batch_shape=()``).  Weights and adaptive thresholds
        are updated in place; the compute dtype follows the network's.
    stdp_parameters:
        Constants of the plasticity rule; defaults to the rule sized
        for ``network`` (see :func:`repro.snn.network.make_stdp`).
    batch_size:
        Samples per presentation.  ``1`` (default) is the bit-exact
        sequential reference; larger values trade exactness for one
        vectorized pass per minibatch (see module docstring).
    encoder:
        Custom per-image encoder, or ``None`` for the default Poisson
        rate code (vectorized per minibatch, same random stream).
    corrupt_weights:
        Fault-aware read hook: maps the stored clean tensor to what a
        DRAM read returns.  Called once per presentation — per sample
        at ``batch_size=1``, per minibatch otherwise.
    """

    def __init__(
        self,
        network: DiehlCookNetwork,
        stdp_parameters: Optional[STDPParameters] = None,
        batch_size: int = 1,
        encoder: Optional[Encoder] = None,
        corrupt_weights: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if network.batch_shape != ():
            raise ValueError(
                "BatchedTrainer trains an unbatched network "
                f"(batch_shape {network.batch_shape})"
            )
        self.network = network
        self.batch_size = int(batch_size)
        self.encoder = encoder
        self.corrupt_weights = corrupt_weights
        self.stdp = make_stdp(network, stdp_parameters)
        # Batched machinery (shell network + batched rule), built on
        # first minibatch and re-shaped for a ragged final minibatch.
        self._shell: Optional[DiehlCookNetwork] = None
        self._batch_stdp = None

    # ------------------------------------------------------------------
    def train(
        self,
        images: np.ndarray,
        n_steps: int,
        epochs: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """Run the full training loop over ``images`` in place.

        Every epoch draws one sample permutation from ``rng`` and then
        encodes samples in permutation order — the identical stream
        whether presentations happen one at a time or per minibatch.
        """
        if n_steps <= 0:
            raise ValueError(f"n_steps must be > 0, got {n_steps}")
        if epochs <= 0:
            raise ValueError(f"epochs must be > 0, got {epochs}")
        rng = ensure_rng(rng)
        images = np.asarray(images)
        for _epoch in range(epochs):
            order = rng.permutation(len(images))
            if self.batch_size == 1:
                for i in order:
                    self.present_sample(images[i], n_steps, rng)
            else:
                for start in range(0, len(order), self.batch_size):
                    batch = order[start : start + self.batch_size]
                    self.present_minibatch(images[batch], n_steps, rng)

    # ------------------------------------------------------------------
    def present_sample(
        self, image: np.ndarray, n_steps: int, rng: np.random.Generator
    ) -> None:
        """The reference sequential presentation (``batch_size=1`` path).

        Preserves the historical loop exactly: encode, run with in-place
        STDP (the network computes with the corrupted read under the
        fault-aware hook), credit deltas back to the stored clean
        tensor, clip, normalize.
        """
        net = self.network
        if self.encoder is not None:
            train = self.encoder(image, n_steps, rng)
        else:
            train = poisson_rate_code(image, n_steps, rng=rng)
        if self.corrupt_weights is not None:
            # The network computes with the *corrupted* weights (what a
            # DRAM read returns); the STDP deltas it produces are then
            # credited back to the stored clean tensor (what the
            # training write-back updates).
            clean = net.weights
            corrupted = np.asarray(self.corrupt_weights(clean), dtype=net.dtype)
            net.weights = corrupted.copy()
            net.run_sample(train, stdp=self.stdp, normalize=False)
            delta = net.weights - corrupted
            apply_post_sample_update(net, delta=delta, base=clean)
        else:
            net.run_sample(train, stdp=self.stdp, normalize=False)
            apply_post_sample_update(net)

    def present_minibatch(
        self, images: np.ndarray, n_steps: int, rng: np.random.Generator
    ) -> None:
        """One vectorized minibatch presentation (``batch_size>1`` path)."""
        net = self.network
        trains = encode_spike_trains(images, n_steps, rng, encoder=self.encoder)
        shell, stdp = self._batched_machinery(trains.shape[0])
        clean = net.weights
        if self.corrupt_weights is not None:
            # One corrupted realization per minibatch read: the whole
            # batch computes from the same faulty DRAM read.
            read = np.asarray(self.corrupt_weights(clean), dtype=net.dtype)
        else:
            read = clean
        theta0 = np.asarray(net.neurons.theta, dtype=net.dtype).reshape(-1)
        shell.neurons.theta = np.broadcast_to(
            theta0, shell.neurons.state_shape
        ).copy()
        shell.set_weights(read)
        delta = np.zeros_like(clean)
        shell.run_batch_stdp(trains, stdp, delta)
        # Homeostasis: every lane's theta advanced independently from
        # theta0; the stored thresholds take the summed increments, the
        # minibatch analogue of B successive per-sample adaptations.
        net.neurons.theta = theta0 + (shell.neurons.theta - theta0).sum(axis=0)
        apply_post_sample_update(net, delta=delta, base=clean)

    # ------------------------------------------------------------------
    def _batched_machinery(self, n_batch: int):
        """The lazily-built batched shell network + accumulate-mode rule."""
        net = self.network
        if self._shell is None:
            self._shell = DiehlCookNetwork(
                net.parameters,
                w_max=net.w_max,
                batch_shape=(n_batch,),
                init_weights=False,
                dtype=net.dtype,
            )
            self._batch_stdp = make_stdp(
                net, self.stdp.parameters, batch_shape=(n_batch,)
            )
        elif self._shell.batch_shape != (n_batch,):
            # Ragged final minibatch: reshape state, keep parameters.
            self._shell.set_batch_shape((n_batch,))
            self._batch_stdp.set_batch_shape((n_batch,))
        return self._shell, self._batch_stdp

"""Chunking policy: bounding the peak memory of a batched pass.

The batched engine materialises, per chunk of samples, the encoded
spike trains ``(B, n_steps, n_input)`` and the precomputed drive tensor
``(n_steps, E, B, n_neurons)`` (float64 — the memory hog).  A
:class:`ChunkPolicy` turns a byte budget into the largest per-chunk
sample count ``B`` that keeps those buffers (plus the E×B state arrays)
under budget, so arbitrarily large evaluation sets and realization
stacks stream through bounded memory.

Chunk boundaries never change results: encoding draws the same random
stream regardless of how the sample axis is split, and the simulation
consumes no randomness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

#: Number of float64 state arrays the network holds per (e, b) instance
#: (v, theta, refractory, two conductances, last spikes, counts, plus
#: per-step temporaries) — a deliberate overestimate.
_STATE_ARRAYS = 10

#: Bytes per encoded sample step: the boolean train plus the transient
#: float64 uniform draw the Poisson encoder makes.
_ENCODE_BYTES_PER_BIT = 9


@dataclass(frozen=True)
class ChunkPolicy:
    """How many samples one vectorized pass may hold in memory.

    Parameters
    ----------
    max_bytes:
        Approximate peak-buffer budget per chunk (default 256 MiB).
    max_samples:
        Optional hard cap on samples per chunk, whatever the budget
        allows (useful in tests to force ragged final chunks).
    """

    max_bytes: int = 256 * 1024 * 1024
    max_samples: Optional[int] = None

    def __post_init__(self):
        if self.max_bytes <= 0:
            raise ValueError(f"max_bytes must be > 0, got {self.max_bytes}")
        if self.max_samples is not None and self.max_samples <= 0:
            raise ValueError(f"max_samples must be > 0, got {self.max_samples}")

    # ------------------------------------------------------------------
    def bytes_per_sample(
        self, n_realizations: int, n_steps: int, n_input: int, n_neurons: int
    ) -> int:
        """Estimated peak bytes one sample adds to a chunk."""
        if min(n_realizations, n_steps, n_input, n_neurons) <= 0:
            raise ValueError("all dimensions must be > 0")
        drive = n_realizations * n_steps * n_neurons * 8
        state = _STATE_ARRAYS * n_realizations * n_neurons * 8
        encode = _ENCODE_BYTES_PER_BIT * n_steps * n_input
        return drive + state + encode

    def samples_per_chunk(
        self, n_realizations: int, n_steps: int, n_input: int, n_neurons: int
    ) -> int:
        """Largest chunk size within budget (always at least 1)."""
        per_sample = self.bytes_per_sample(
            n_realizations, n_steps, n_input, n_neurons
        )
        chunk = max(1, self.max_bytes // per_sample)
        if self.max_samples is not None:
            chunk = min(chunk, self.max_samples)
        return int(chunk)

    def iter_chunks(self, n_samples: int, chunk_size: int) -> Iterator[slice]:
        """Yield sample slices of ``chunk_size`` (final one may be ragged)."""
        if n_samples < 0:
            raise ValueError(f"n_samples must be >= 0, got {n_samples}")
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be > 0, got {chunk_size}")
        for start in range(0, n_samples, chunk_size):
            yield slice(start, min(start + chunk_size, n_samples))

"""Batched spike encoding.

One vectorized Poisson draw encodes a whole chunk of images at once —
``rng.random((B, n_steps, n_input))`` — consuming *exactly* the same
random stream as ``B`` successive per-image
:func:`repro.snn.encoding.poisson_rate_code` calls (``Generator.random``
fills arrays from the bit stream in C order).  Encoded trains are
therefore identical whether samples are encoded one at a time, per
chunk, or all at once — the engine equivalence guarantee extends
through the encoder.

Non-default encoders fall back to a per-image loop (same stream by
construction); the simulation stays vectorized either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.snn.encoding import poisson_rate_code

#: Encoder signature used across the SNN stack.
Encoder = Callable[[np.ndarray, int, np.random.Generator], np.ndarray]


@dataclass
class EncodedMinibatch:
    """One encoded minibatch, replayable across repeated presentations.

    ``trains`` is the boolean ``(B, n_steps, n_input)`` spike tensor of
    one Poisson draw; ``matrix`` lazily caches the sparse drive
    operator
    (:meth:`repro.snn.network.DiehlCookNetwork.prepare_drive_matrix`)
    built from it, so a consumer presenting the same minibatch several
    times — the per-BER-stage amortization of
    :class:`repro.engine.trainer.StageEncodingCache` — pays the
    encoding draw *and* the CSR construction once.
    """

    trains: np.ndarray
    matrix: object = None

    @property
    def n_samples(self) -> int:
        return int(self.trains.shape[0])


def _check_images(images: np.ndarray) -> np.ndarray:
    arr = np.asarray(images, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] == 0:
        raise ValueError(
            f"images must be a 2-D (n_samples, n_pixels) array, got shape {arr.shape}"
        )
    if arr.size and (arr.min() < 0.0 or arr.max() > 1.0):
        raise ValueError("pixel intensities must lie in [0, 1]")
    return arr


def encode_spike_trains(
    images: np.ndarray,
    n_steps: int,
    rng: np.random.Generator,
    encoder: Optional[Encoder] = None,
    dt_ms: float = 1.0,
    max_rate_hz: float = 63.75,
) -> np.ndarray:
    """Encode a batch of images into ``(B, n_steps, n_input)`` spikes.

    With ``encoder=None`` the default Poisson rate code is applied in
    one vectorized draw; a custom encoder is applied per image.  Either
    way the result (and the state of ``rng``) is identical to calling
    the encoder on each image in order.
    """
    if n_steps <= 0 or dt_ms <= 0:
        raise ValueError("n_steps and dt_ms must be > 0")
    images = _check_images(images)
    if images.shape[0] == 0:
        return np.zeros((0, n_steps, images.shape[1]), dtype=bool)
    if encoder is not None and encoder is not poisson_rate_code:
        return np.stack([encoder(image, n_steps, rng) for image in images])
    p = np.clip(images * max_rate_hz * dt_ms * 1e-3, 0.0, 1.0)
    return rng.random((images.shape[0], n_steps, images.shape[1])) < p[:, None, :]

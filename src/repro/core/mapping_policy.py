"""DRAM mapping policies: baseline sequential and SparkXD's Algorithm 2.

A mapping assigns every weight *chunk* (one column-slot's worth of
weights, in data order) to a DRAM slot:

- **baseline** (Section IV-B Step-2): chunks fill subsequent addresses
  of a bank — consecutive columns of a row, then the next row of the
  same subarray, then the next subarray; when the bank is full, the
  next bank of the same chip.  This is the device's flat slot order.
- **SparkXD** (Section IV-D, Algorithm 2): chunks are placed only in
  *safe* subarrays (error rate ≤ BER_th), filling all columns of a row
  before moving on (maximising row hits) and rotating across banks at
  row granularity (exposing the multi-bank burst of Fig. 9b).  The loop
  nest order is exactly the algorithm's:
  ``channel → rank → chip → row → subarray → bank → column``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.dram.organization import DramCoordinate, DramOrganization
from repro.errors.weak_cells import SubarrayErrorProfile
from repro.registry import Registry


class InsufficientSafeCapacityError(RuntimeError):
    """Raised when safe subarrays cannot hold the weight tensor."""


@dataclass(frozen=True)
class WeightMapping:
    """Where each weight chunk lives in DRAM.

    ``slot_of_chunk[i]`` is the flat DRAM slot of data chunk ``i``;
    chunks follow the weight tensor's flattened order.
    """

    organization: DramOrganization
    slot_of_chunk: np.ndarray
    bits_per_weight: int
    n_weights: int
    policy: str

    def __post_init__(self):
        slots = np.asarray(self.slot_of_chunk)
        needed = self.organization.slots_needed(self.n_weights * self.bits_per_weight)
        if slots.shape != (needed,):
            raise ValueError(
                f"mapping must cover {needed} chunks, got {slots.shape}"
            )

    # ------------------------------------------------------------------
    @property
    def n_chunks(self) -> int:
        return int(self.slot_of_chunk.size)

    @property
    def weights_per_chunk(self) -> int:
        return max(1, self.organization.slot_bits // self.bits_per_weight)

    def coordinates(self) -> Iterator[DramCoordinate]:
        """Chunk coordinates in data order."""
        for slot in self.slot_of_chunk:
            yield self.organization.coordinate_of(int(slot))

    def subarray_of_weight(self) -> np.ndarray:
        """Flat subarray index of every weight (for error injection)."""
        organization = self.organization
        g = organization.geometry
        slots = np.asarray(self.slot_of_chunk, dtype=np.int64)
        # Flat slot order is column-major: subarray changes every
        # rows_per_subarray * columns_per_row slots within a bank.
        slots_per_subarray = g.rows_per_subarray * g.columns_per_row
        subarray_of_chunk = slots // slots_per_subarray
        wpc = self.weights_per_chunk
        per_weight = np.repeat(subarray_of_chunk, wpc)[: self.n_weights]
        return per_weight

    def subarrays_used(self) -> np.ndarray:
        """Sorted unique flat subarray indices the mapping touches."""
        return np.unique(self.subarray_of_weight())


def baseline_mapping(
    organization: DramOrganization, n_weights: int, bits_per_weight: int
) -> WeightMapping:
    """Sequential fill of subsequent addresses (Section IV-B Step-2)."""
    if n_weights <= 0 or bits_per_weight <= 0:
        raise ValueError("n_weights and bits_per_weight must be > 0")
    needed = organization.slots_needed(n_weights * bits_per_weight)
    if needed > organization.total_slots:
        raise InsufficientSafeCapacityError(
            f"tensor needs {needed} slots; device has {organization.total_slots}"
        )
    return WeightMapping(
        organization=organization,
        slot_of_chunk=np.arange(needed, dtype=np.int64),
        bits_per_weight=bits_per_weight,
        n_weights=n_weights,
        policy="baseline-sequential",
    )


def sparkxd_mapping(
    organization: DramOrganization,
    n_weights: int,
    bits_per_weight: int,
    profile: SubarrayErrorProfile,
    ber_threshold: float,
) -> WeightMapping:
    """Algorithm 2: safe-subarray, row-hit-maximising, bank-rotating map.

    Raises :class:`InsufficientSafeCapacityError` when the safe
    subarrays cannot hold the tensor — the caller should then either
    raise the supply voltage (lower BER) or relax the accuracy bound
    (higher ``ber_threshold``).
    """
    if n_weights <= 0 or bits_per_weight <= 0:
        raise ValueError("n_weights and bits_per_weight must be > 0")
    if profile.organization is not organization and (
        profile.organization.geometry != organization.geometry
    ):
        raise ValueError("profile belongs to a different device geometry")
    g = organization.geometry
    needed = organization.slots_needed(n_weights * bits_per_weight)
    safe = profile.safe_mask(ber_threshold)
    capacity = int(safe.sum()) * organization.slots_per_subarray()
    if needed > capacity:
        raise InsufficientSafeCapacityError(
            f"tensor needs {needed} slots; safe subarrays provide {capacity} "
            f"({int(safe.sum())}/{organization.total_subarrays} subarrays "
            f"at BER_th={ber_threshold:g})"
        )

    columns = np.arange(g.columns_per_row, dtype=np.int64)
    pieces: list[np.ndarray] = []
    collected = 0
    # Loop nest of Algorithm 2: ch, ra, cp, ro, su, ba, co.
    for channel in range(g.channels):
        for rank in range(g.ranks_per_channel):
            for chip in range(g.chips_per_rank):
                for row in range(g.rows_per_subarray):
                    for subarray in range(g.subarrays_per_bank):
                        for bank in range(g.banks_per_chip):
                            flat_subarray = _flat_subarray(
                                g, channel, rank, chip, bank, subarray
                            )
                            if not safe[flat_subarray]:
                                continue
                            base = _row_base_slot(
                                g, channel, rank, chip, bank, subarray, row
                            )
                            pieces.append(base + columns)
                            collected += g.columns_per_row
                            if collected >= needed:
                                slots = np.concatenate(pieces)[:needed]
                                return WeightMapping(
                                    organization=organization,
                                    slot_of_chunk=slots,
                                    bits_per_weight=bits_per_weight,
                                    n_weights=n_weights,
                                    policy="sparkxd-algorithm2",
                                )
    raise InsufficientSafeCapacityError(
        "ran out of safe slots while mapping (should have been caught above)"
    )


def _flat_subarray(g, channel, rank, chip, bank, subarray) -> int:
    idx = channel
    idx = idx * g.ranks_per_channel + rank
    idx = idx * g.chips_per_rank + chip
    idx = idx * g.banks_per_chip + bank
    idx = idx * g.subarrays_per_bank + subarray
    return idx


def _row_base_slot(g, channel, rank, chip, bank, subarray, row) -> int:
    slot = channel
    slot = slot * g.ranks_per_channel + rank
    slot = slot * g.chips_per_rank + chip
    slot = slot * g.banks_per_chip + bank
    slot = slot * g.subarrays_per_bank + subarray
    slot = slot * g.rows_per_subarray + row
    slot = slot * g.columns_per_row
    return slot


# ----------------------------------------------------------------------
# Mapping-policy registry
#
# Every registered policy shares one adapter signature so the framework
# (and sweeps over policies) can select them by name:
#
#     policy(organization, n_weights, bits_per_weight, profile,
#            ber_threshold) -> WeightMapping
#
# ``profile``/``ber_threshold`` may be ignored by policies that do not
# use the error profile (the baseline does).
MAPPING_POLICIES = Registry("mapping policy")


@MAPPING_POLICIES.register("baseline", aliases=("baseline-sequential", "sequential"))
def _baseline_policy(
    organization: DramOrganization,
    n_weights: int,
    bits_per_weight: int,
    profile: SubarrayErrorProfile,
    ber_threshold: float,
) -> WeightMapping:
    return baseline_mapping(organization, n_weights, bits_per_weight)


#: Label a WeightMapping produced by this policy carries; used so
#: infeasible outcomes report the same name feasible ones would.
_baseline_policy.label = "baseline-sequential"


@MAPPING_POLICIES.register("sparkxd", aliases=("sparkxd-algorithm2", "algorithm2"))
def _sparkxd_policy(
    organization: DramOrganization,
    n_weights: int,
    bits_per_weight: int,
    profile: SubarrayErrorProfile,
    ber_threshold: float,
) -> WeightMapping:
    return sparkxd_mapping(
        organization, n_weights, bits_per_weight, profile, ber_threshold
    )


_sparkxd_policy.label = "sparkxd-algorithm2"

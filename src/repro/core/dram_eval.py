"""DRAM-side evaluation: mapping + trace execution at every voltage.

Step 4 of the Fig. 7 flow, factored out of the orchestrator so the
energy experiments (Figs. 12a/12b, Table I), the staged pipeline's
``DramEvalStage`` and the classic :class:`~repro.core.framework.SparkXD`
facade all share one implementation — and so it can run without any SNN
training at all.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.config import SparkXDConfig
from repro.core.mapping_policy import (
    MAPPING_POLICIES,
    InsufficientSafeCapacityError,
    baseline_mapping,
)
from repro.core.results import VoltageOutcome
from repro.dram.controller import DramController, TraceExecutionResult
from repro.errors.ber import DEFAULT_BER_CURVE
from repro.errors.weak_cells import WeakCellMap
from repro.trace.generator import InferenceTraceSpec, inference_read_trace


def evaluate_dram(
    config: SparkXDConfig,
    n_weights: int,
    bits_per_weight: int,
    ber_threshold: Optional[float],
) -> Tuple[TraceExecutionResult, Dict[float, VoltageOutcome]]:
    """Map the weights and execute the inference trace at every voltage.

    The mapping policy is looked up by ``config.mapping_policy`` in
    :data:`~repro.core.mapping_policy.MAPPING_POLICIES`; the accurate
    baseline at nominal voltage always uses the sequential mapping, so
    savings are measured against the same reference regardless of
    policy.
    """
    controller = DramController(config.dram_spec)
    organization = controller.organization
    weak_cells = WeakCellMap(
        organization, sigma=config.weak_cell_sigma, seed=config.weak_cell_seed
    )
    policy = MAPPING_POLICIES.get(config.mapping_policy)
    trace_spec = InferenceTraceSpec(
        n_weights=n_weights,
        bits_per_weight=bits_per_weight,
        refetch_passes=config.refetch_passes,
    )

    base_map = baseline_mapping(organization, n_weights, bits_per_weight)
    base_trace = inference_read_trace(trace_spec, base_map.slot_of_chunk, organization)
    baseline_dram = controller.execute(base_trace, config.v_nominal)

    outcomes: Dict[float, VoltageOutcome] = {}
    for v in config.voltages:
        device_ber = DEFAULT_BER_CURVE.ber_at(v)
        profile = weak_cells.profile_at(v)
        threshold = ber_threshold if ber_threshold is not None else -1.0
        try:
            mapping = policy(
                organization, n_weights, bits_per_weight, profile, threshold
            )
        except InsufficientSafeCapacityError:
            outcomes[v] = VoltageOutcome(
                v_supply=v,
                device_ber=device_ber,
                feasible=False,
                # Same label a successful mapping by this policy carries,
                # so one record never mixes two names for one policy.
                mapping_policy=getattr(policy, "label", config.mapping_policy),
                result=None,
                energy_saving=0.0,
                speedup=0.0,
            )
            continue
        trace = inference_read_trace(trace_spec, mapping.slot_of_chunk, organization)
        result = controller.execute(trace, v)
        saving = 1.0 - result.energy.total_nj / baseline_dram.energy.total_nj
        speedup = baseline_dram.stats.total_time_ns / result.stats.total_time_ns
        outcomes[v] = VoltageOutcome(
            v_supply=v,
            device_ber=device_ber,
            feasible=True,
            mapping_policy=mapping.policy,
            result=result,
            energy_saving=saving,
            speedup=speedup,
        )
    return baseline_dram, outcomes

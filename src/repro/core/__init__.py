"""The SparkXD framework: the paper's primary contribution.

Three mechanisms (Fig. 7):

1. :mod:`repro.core.fault_aware_training` — improve the SNN's error
   tolerance by training with progressively increasing injected BER
   (Section IV-B, Algorithm 1);
2. :mod:`repro.core.tolerance_analysis` — find the maximum tolerable
   BER meeting the user's accuracy bound (Section IV-C, Fig. 8);
3. :mod:`repro.core.mapping_policy` — place the weights in safe DRAM
   subarrays while maximising row-buffer hits and multi-bank bursts
   (Section IV-D, Algorithm 2).

:class:`repro.core.framework.SparkXD` orchestrates all three end to end.
"""

from repro.core.config import SparkXDConfig
from repro.core.mapping_policy import (
    MAPPING_POLICIES,
    WeightMapping,
    baseline_mapping,
    sparkxd_mapping,
    InsufficientSafeCapacityError,
)
from repro.core.fault_aware_training import (
    FaultAwareTrainingResult,
    improve_error_tolerance,
)
from repro.core.tolerance_analysis import (
    TolerancePoint,
    ToleranceReport,
    analyze_error_tolerance,
)
from repro.core.dram_eval import evaluate_dram
from repro.core.framework import SparkXD, SparkXDResult, VoltageOutcome
from repro.core.voltage_selection import VoltageDecision, select_operating_voltage

__all__ = [
    "MAPPING_POLICIES",
    "evaluate_dram",
    "VoltageOutcome",
    "VoltageDecision",
    "select_operating_voltage",
    "SparkXDConfig",
    "WeightMapping",
    "baseline_mapping",
    "sparkxd_mapping",
    "InsufficientSafeCapacityError",
    "FaultAwareTrainingResult",
    "improve_error_tolerance",
    "TolerancePoint",
    "ToleranceReport",
    "analyze_error_tolerance",
    "SparkXD",
    "SparkXDResult",
]

"""Fault-aware training: improving the SNN error tolerance (Algorithm 1).

Section IV-B: bit errors generated from the DRAM error model are
injected into the weights *during training*, with the BER incremented
after each training stage "from a minimum error rate to a maximum one
(e.g., the next error rate is 10x of the previous one)", so the SNN is
gradually trained to tolerate errors up to the maximum rate.

Mechanics per presented sample: the network computes with a freshly
corrupted copy of the stored weights (what a DRAM read returns under
errors), and the STDP deltas are credited back onto the stored tensor
(what the training write-back updates).  See
:func:`repro.snn.training.train_unsupervised`.

One deliberate deviation from the paper's Algorithm 1 pseudocode: the
listing returns as soon as *one* error rate meets the accuracy bound,
which (read literally) stops at the lowest rate.  The surrounding text
makes the intent clear — train through the whole ascending schedule,
then let the Section IV-C analysis pick the *maximum* tolerable BER —
so that is what this implementation does, recording the accuracy
reached at every stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.datasets.base import Dataset
from repro.errors.injection import ErrorInjector
from repro.rng import ensure_rng
from repro.snn.network import DiehlCookNetwork, NetworkParameters
from repro.snn.stdp import STDPParameters
from repro.snn.training import (
    TrainedModel,
    assign_labels,
    evaluate_accuracy,
    run_spike_counts,
    train_unsupervised,
)


def default_ber_schedule(
    minimum: float = 1e-9, maximum: float = 1e-3, factor: float = 100.0
) -> tuple:
    """The paper's geometric BER schedule (each rate ``factor``× the last)."""
    if not 0 < minimum <= maximum:
        raise ValueError("require 0 < minimum <= maximum")
    if factor <= 1:
        raise ValueError("factor must be > 1")
    rates = []
    rate = minimum
    while rate < maximum * (1.0 - 1e-12):
        rates.append(rate)
        rate *= factor
    rates.append(maximum)
    return tuple(rates)


@dataclass
class FaultAwareTrainingResult:
    """The improved model plus the per-stage accuracy trajectory."""

    model: TrainedModel
    rates: tuple
    accuracy_per_rate: dict = field(default_factory=dict)
    #: BER of the stage whose snapshot became the returned model.
    selected_rate: float = 0.0

    def final_accuracy(self) -> float:
        return self.model.accuracy


def improve_error_tolerance(
    baseline: TrainedModel,
    dataset: Dataset,
    injector: ErrorInjector,
    rates: Sequence[float] = default_ber_schedule(),
    epochs_per_rate: int = 1,
    n_steps: int = 100,
    accuracy_bound: float = 0.01,
    network_parameters: Optional[NetworkParameters] = None,
    stdp_parameters: Optional[STDPParameters] = None,
    rng: Optional[np.random.Generator] = None,
    n_classes: int = 10,
    engine: str = "batched",
    batch_size: int = 1,
    dtype: np.dtype = np.float64,
    stage_encoding: str = "fresh",
) -> FaultAwareTrainingResult:
    """Algorithm 1: progressive fault-aware retraining of a baseline SNN.

    Parameters
    ----------
    baseline:
        The model trained without DRAM errors (``model0`` in the paper).
    dataset:
        Training workload; its test split monitors per-stage accuracy.
    injector:
        Error generator+injector configured with the storage
        representation and the DRAM error model (Model-0 by default).
    rates:
        Ascending BER schedule; Step-1 of Section IV-B.
    epochs_per_rate:
        Training epochs spent at each BER stage.
    engine:
        Evaluation path for the per-stage accuracy measurements
        (``"batched"`` default / ``"sequential"``); both yield the same
        numbers (see :mod:`repro.engine`).
    batch_size:
        Samples per STDP presentation at every BER stage
        (:class:`repro.engine.trainer.BatchedTrainer`).  With
        ``batch_size>1`` each minibatch computes from **one** corrupted
        realization of the stored weights (one faulty DRAM read serving
        the whole batch) and the summed deltas are credited back to the
        clean tensor — the per-stage ascending BER schedule itself is
        untouched.  ``1`` is bit-identical to the historical loop.
    dtype:
        Compute precision of training and the per-stage evaluations
        (``numpy.float64`` default or ``numpy.float32``).
    stage_encoding:
        ``"fresh"`` (default) re-draws the sample permutations and
        Poisson encodings at every BER stage — the historical stream.
        ``"shared"`` (minibatch mode only, ``batch_size>1``) encodes
        the training stream once at the first stage and replays the
        recorded minibatches (and their prebuilt sparse drive
        operators) at every later stage
        (:class:`repro.engine.trainer.StageEncodingCache`) — every
        stage then trains on the *same* encoded stream, and the
        replayed stages skip their permutation/encoding draws, so this
        is a result-changing, fingerprinted knob.
    """
    from repro.engine.trainer import STAGE_ENCODINGS, StageEncodingCache

    if stage_encoding not in STAGE_ENCODINGS:
        raise ValueError(
            f"stage_encoding must be one of {STAGE_ENCODINGS}, got {stage_encoding!r}"
        )
    if stage_encoding == "shared" and batch_size == 1:
        raise ValueError(
            "stage_encoding='shared' requires batch_size > 1: the bit-exact "
            "sequential reference always re-encodes"
        )
    rng = ensure_rng(rng)
    rates = tuple(sorted(float(r) for r in rates))
    if not rates:
        raise ValueError("need at least one BER stage")
    if any(r < 0 or r > 1 for r in rates):
        raise ValueError("rates must lie in [0, 1]")
    if stdp_parameters is None:
        # Fault-aware stages *fine-tune* an already-trained model; the
        # full from-scratch learning rate would let error-driven spurious
        # spikes erode the learned receptive fields.
        stdp_parameters = STDPParameters(learning_rate=0.01)

    params = network_parameters or NetworkParameters(
        n_input=baseline.n_input, n_neurons=baseline.n_neurons
    )
    network = DiehlCookNetwork(params, rng=rng, dtype=dtype)
    baseline.install_into(network)

    accuracy_per_rate: dict = {}
    snapshots: dict = {}
    model = baseline.copy()
    encoding_cache = (
        StageEncodingCache() if stage_encoding == "shared" else None
    )
    for rate in rates:
        def corrupt(weights: np.ndarray, _rate=rate) -> np.ndarray:
            corrupted, _report = injector.inject_uniform(weights, _rate, rng=rng)
            return corrupted

        model = train_unsupervised(
            network,
            dataset.train_images,
            dataset.train_labels,
            n_steps=n_steps,
            epochs=epochs_per_rate,
            stdp_parameters=stdp_parameters,
            rng=rng,
            corrupt_weights=corrupt,
            n_classes=n_classes,
            engine=engine,
            batch_size=batch_size,
            encoding_cache=encoding_cache,
        )
        # Deployment reads corrupted weights, so both the neuron→class
        # assignment and the stage accuracy are measured under fresh
        # error injection at this stage's BER.
        corrupted_weights, _ = injector.inject_uniform(model.weights, rate, rng=rng)
        network.set_weights(corrupted_weights)
        counts = run_spike_counts(
            network, dataset.train_images, n_steps, rng, engine=engine
        )
        model.assignments = assign_labels(counts, dataset.train_labels, n_classes)
        accuracy = evaluate_accuracy(
            network,
            dataset.test_images,
            dataset.test_labels,
            model.assignments,
            n_steps,
            rng,
            n_classes=n_classes,
            engine=engine,
        )
        network.set_weights(model.weights)
        accuracy_per_rate[rate] = accuracy
        model.accuracy = accuracy
        model.metadata["fault_aware"] = True
        model.metadata["trained_through_ber"] = rate
        snapshots[rate] = model.copy()

    # Algorithm 1 keeps the model of the stage that met the accuracy
    # target at the *highest* BER; training past the point where the
    # errors overwhelm STDP must not degrade the returned model.  The
    # untouched baseline (model0, trained at BER 0) is always a valid
    # candidate: if no fine-tuned stage meets the target, the framework
    # returns model0 rather than a damaged model.
    snapshots[0.0] = baseline.copy()
    candidate_accuracy = {0.0: baseline.accuracy, **accuracy_per_rate}
    target = baseline.accuracy - accuracy_bound
    candidates = (0.0,) + rates
    passing = [r for r in candidates if candidate_accuracy[r] >= target]
    selected = passing[-1] if passing else max(
        candidates, key=lambda r: candidate_accuracy[r]
    )
    chosen = snapshots[selected]
    return FaultAwareTrainingResult(
        model=chosen,
        rates=rates,
        accuracy_per_rate=accuracy_per_rate,
        selected_rate=selected,
    )


def train_baseline(
    dataset: Dataset,
    n_neurons: int,
    epochs: int = 1,
    n_steps: int = 100,
    network_parameters: Optional[NetworkParameters] = None,
    stdp_parameters: Optional[STDPParameters] = None,
    rng: Optional[np.random.Generator] = None,
    n_classes: int = 10,
    engine: str = "batched",
    batch_size: int = 1,
    dtype: np.dtype = np.float64,
) -> TrainedModel:
    """Train the error-free baseline SNN (``model0``).

    ``batch_size``/``dtype`` select the minibatch size and compute
    precision of the STDP engine (see :func:`improve_error_tolerance`).
    """
    rng = ensure_rng(rng)
    params = network_parameters or NetworkParameters(
        n_input=dataset.train_images.shape[1], n_neurons=n_neurons
    )
    network = DiehlCookNetwork(params, rng=rng, dtype=dtype)
    model = train_unsupervised(
        network,
        dataset.train_images,
        dataset.train_labels,
        n_steps=n_steps,
        epochs=epochs,
        stdp_parameters=stdp_parameters,
        rng=rng,
        n_classes=n_classes,
        engine=engine,
        batch_size=batch_size,
    )
    # Report accuracy on the held-out test split.
    counts = run_spike_counts(
        network, dataset.train_images, n_steps, rng, engine=engine
    )
    model.assignments = assign_labels(counts, dataset.train_labels, n_classes)
    model.accuracy = evaluate_accuracy(
        network,
        dataset.test_images,
        dataset.test_labels,
        model.assignments,
        n_steps,
        rng,
        n_classes=n_classes,
        engine=engine,
    )
    return model

"""The SparkXD orchestrator: the full Fig. 7 pipeline, end to end.

Inputs: an SNN model + workload, an accuracy target, a DRAM
configuration and its reduced supply voltage(s).  Steps:

1. train the baseline SNN (no DRAM errors) — the comparison partner;
2. **improve the SNN error tolerance** by fault-aware training over the
   ascending BER schedule (Section IV-B);
3. **analyse the improved model's error tolerance** to find the maximum
   tolerable BER, ``BER_th`` (Section IV-C);
4. **map the weights to DRAM** with Algorithm 2 using the per-subarray
   error profile at each reduced voltage, then execute the inference
   read trace to obtain energy and throughput versus the accurate-DRAM
   baseline (Section IV-D + Section VI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.config import SparkXDConfig
from repro.core.fault_aware_training import (
    FaultAwareTrainingResult,
    improve_error_tolerance,
    train_baseline,
)
from repro.core.mapping_policy import (
    InsufficientSafeCapacityError,
    WeightMapping,
    baseline_mapping,
    sparkxd_mapping,
)
from repro.core.tolerance_analysis import ToleranceReport, analyze_error_tolerance
from repro.datasets import load_dataset
from repro.dram.controller import DramController, TraceExecutionResult
from repro.dram.organization import DramOrganization
from repro.errors.ber import DEFAULT_BER_CURVE
from repro.errors.injection import ErrorInjector
from repro.errors.weak_cells import WeakCellMap
from repro.snn.quantization import make_representation
from repro.snn.training import TrainedModel
from repro.trace.generator import InferenceTraceSpec, inference_read_trace


@dataclass(frozen=True)
class VoltageOutcome:
    """Energy/latency of SparkXD at one reduced supply voltage."""

    v_supply: float
    device_ber: float
    feasible: bool
    mapping_policy: str
    result: Optional[TraceExecutionResult]
    energy_saving: float
    speedup: float


@dataclass
class SparkXDResult:
    """Everything a SparkXD run produced."""

    config: SparkXDConfig
    baseline_model: TrainedModel
    improved_model: TrainedModel
    training: FaultAwareTrainingResult
    tolerance: ToleranceReport
    baseline_dram: TraceExecutionResult
    outcomes: Dict[float, VoltageOutcome] = field(default_factory=dict)

    @property
    def ber_threshold(self) -> Optional[float]:
        return self.tolerance.ber_threshold

    def mean_energy_saving(self) -> float:
        feasible = [o.energy_saving for o in self.outcomes.values() if o.feasible]
        return float(np.mean(feasible)) if feasible else 0.0

    def summary(self) -> str:
        lines = [
            f"SparkXD run: {self.config.dataset}, N{self.config.n_neurons}",
            f"  baseline accuracy (accurate DRAM): {self.baseline_model.accuracy:.3f}",
            f"  improved accuracy (max-BER DRAM):  {self.improved_model.accuracy:.3f}",
            f"  max tolerable BER: {self.ber_threshold}",
            f"  baseline DRAM energy: {self.baseline_dram.energy.total_mj:.4f} mJ @ "
            f"{self.baseline_dram.v_supply:.3f} V",
        ]
        for v, outcome in sorted(self.outcomes.items(), reverse=True):
            if outcome.feasible:
                lines.append(
                    f"  {v:.3f} V: energy saving {outcome.energy_saving:.1%}, "
                    f"speed-up {outcome.speedup:.2f}x"
                )
            else:
                lines.append(f"  {v:.3f} V: infeasible (BER above tolerance)")
        lines.append(f"  mean energy saving: {self.mean_energy_saving():.1%}")
        return "\n".join(lines)


class SparkXD:
    """Run the complete SparkXD framework from one config."""

    def __init__(self, config: SparkXDConfig | None = None):
        self.config = config or SparkXDConfig()

    # ------------------------------------------------------------------
    def run(self) -> SparkXDResult:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        dataset = load_dataset(cfg.dataset, cfg.n_train, cfg.n_test, cfg.dataset_seed)
        if cfg.representation in ("float32", "fp32"):
            # Decoded weights saturate into the synapse's physical range.
            representation = make_representation(cfg.representation, clip_range=(0.0, 1.0))
        else:
            representation = make_representation(cfg.representation)
        injector = ErrorInjector(representation, seed=cfg.seed + 1)

        baseline_model = train_baseline(
            dataset,
            cfg.n_neurons,
            epochs=cfg.baseline_epochs,
            n_steps=cfg.n_steps,
            rng=rng,
        )
        training = improve_error_tolerance(
            baseline_model,
            dataset,
            injector,
            rates=cfg.ber_rates,
            epochs_per_rate=cfg.epochs_per_rate,
            n_steps=cfg.n_steps,
            accuracy_bound=cfg.accuracy_bound,
            rng=rng,
        )
        tolerance = analyze_error_tolerance(
            training.model,
            dataset,
            injector,
            rates=cfg.ber_rates,
            baseline_accuracy=baseline_model.accuracy,
            accuracy_bound=cfg.accuracy_bound,
            n_steps=cfg.n_steps,
            trials=cfg.tolerance_trials,
            rng=rng,
        )
        baseline_dram, outcomes = self.evaluate_dram(
            n_weights=baseline_model.weights.size,
            bits_per_weight=representation.bits_per_weight,
            ber_threshold=tolerance.ber_threshold,
        )
        return SparkXDResult(
            config=cfg,
            baseline_model=baseline_model,
            improved_model=training.model,
            training=training,
            tolerance=tolerance,
            baseline_dram=baseline_dram,
            outcomes=outcomes,
        )

    # ------------------------------------------------------------------
    def evaluate_dram(
        self,
        n_weights: int,
        bits_per_weight: int,
        ber_threshold: Optional[float],
    ):
        """Step 4: DRAM mapping + trace execution at every voltage.

        Exposed separately so the energy experiments (Figs. 12a/12b,
        Table I) can run without retraining an SNN.
        """
        cfg = self.config
        controller = DramController(cfg.dram_spec)
        organization = controller.organization
        weak_cells = WeakCellMap(
            organization, sigma=cfg.weak_cell_sigma, seed=cfg.weak_cell_seed
        )
        trace_spec = InferenceTraceSpec(
            n_weights=n_weights,
            bits_per_weight=bits_per_weight,
            refetch_passes=cfg.refetch_passes,
        )

        base_map = baseline_mapping(organization, n_weights, bits_per_weight)
        base_trace = inference_read_trace(trace_spec, base_map.slot_of_chunk, organization)
        baseline_dram = controller.execute(base_trace, cfg.v_nominal)

        outcomes: Dict[float, VoltageOutcome] = {}
        for v in cfg.voltages:
            device_ber = DEFAULT_BER_CURVE.ber_at(v)
            profile = weak_cells.profile_at(v)
            threshold = ber_threshold if ber_threshold is not None else -1.0
            try:
                mapping = sparkxd_mapping(
                    organization, n_weights, bits_per_weight, profile, threshold
                )
            except InsufficientSafeCapacityError:
                outcomes[v] = VoltageOutcome(
                    v_supply=v,
                    device_ber=device_ber,
                    feasible=False,
                    mapping_policy="sparkxd-algorithm2",
                    result=None,
                    energy_saving=0.0,
                    speedup=0.0,
                )
                continue
            trace = inference_read_trace(trace_spec, mapping.slot_of_chunk, organization)
            result = controller.execute(trace, v)
            saving = 1.0 - result.energy.total_nj / baseline_dram.energy.total_nj
            speedup = baseline_dram.stats.total_time_ns / result.stats.total_time_ns
            outcomes[v] = VoltageOutcome(
                v_supply=v,
                device_ber=device_ber,
                feasible=True,
                mapping_policy=mapping.policy,
                result=result,
                energy_saving=saving,
                speedup=speedup,
            )
        return baseline_dram, outcomes

"""The SparkXD orchestrator: the full Fig. 7 pipeline, end to end.

Inputs: an SNN model + workload, an accuracy target, a DRAM
configuration and its reduced supply voltage(s).  Steps:

1. train the baseline SNN (no DRAM errors) — the comparison partner;
2. **improve the SNN error tolerance** by fault-aware training over the
   ascending BER schedule (Section IV-B);
3. **analyse the improved model's error tolerance** to find the maximum
   tolerable BER, ``BER_th`` (Section IV-C);
4. **map the weights to DRAM** with Algorithm 2 using the per-subarray
   error profile at each reduced voltage, then execute the inference
   read trace to obtain energy and throughput versus the accurate-DRAM
   baseline (Section IV-D + Section VI).

Since the staged-pipeline redesign, :class:`SparkXD` is a thin facade
over :class:`repro.pipeline.ExperimentPipeline`: the four steps above
are the pipeline's four stages, results are byte-identical at a fixed
seed, and passing an :class:`~repro.pipeline.ArtifactStore` lets
repeated runs reuse cached stage artifacts (e.g. a sweep over voltages
trains the SNN once).  The result types (:class:`SparkXDResult`,
:class:`VoltageOutcome`) now live in :mod:`repro.core.results` and are
re-exported here for backward compatibility.
"""

from __future__ import annotations

from typing import Optional

from repro.core import dram_eval
from repro.core.config import SparkXDConfig
from repro.core.results import SparkXDResult, VoltageOutcome

__all__ = ["SparkXD", "SparkXDResult", "VoltageOutcome"]


class SparkXD:
    """Run the complete SparkXD framework from one config.

    Parameters
    ----------
    config:
        The run configuration; defaults to :class:`SparkXDConfig`'s
        paper-flavoured defaults.
    store:
        Optional :class:`repro.pipeline.ArtifactStore`.  When given,
        stage artifacts (trained models, tolerance reports, DRAM
        evaluations) are cached by config fingerprint and reused by any
        later run — through this facade or the staged API — whose
        config matches.
    """

    def __init__(self, config: SparkXDConfig | None = None, store=None):
        self.config = config or SparkXDConfig()
        self.store = store

    # ------------------------------------------------------------------
    def run(self) -> SparkXDResult:
        """Execute all four stages and assemble a :class:`SparkXDResult`."""
        from repro.pipeline import ExperimentPipeline

        return ExperimentPipeline(self.config, store=self.store).run()

    # ------------------------------------------------------------------
    def evaluate_dram(
        self,
        n_weights: int,
        bits_per_weight: int,
        ber_threshold: Optional[float],
    ):
        """Step 4: DRAM mapping + trace execution at every voltage.

        Exposed separately so the energy experiments (Figs. 12a/12b,
        Table I) can run without retraining an SNN.
        """
        return dram_eval.evaluate_dram(
            self.config, n_weights, bits_per_weight, ber_threshold
        )

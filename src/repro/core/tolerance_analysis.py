"""Error-tolerance analysis: finding the maximum tolerable BER.

Section IV-C: the accuracy of the (improved) SNN is measured at each
candidate BER; a *linear search* from the minimum rate to the maximum
keeps the largest rate whose accuracy still meets the user-specified
target.  The linear search is sound because the error-tolerance curve
is generally decreasing in BER (Fig. 8) — and the report records the
whole curve so that assumption can be checked.

The resulting ``BER_th`` drives the DRAM mapping (Section IV-D): only
subarrays with error rate ≤ ``BER_th`` may store weights, and (through
the BER(V) curve) it bounds how far the supply voltage can drop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.datasets.base import Dataset
from repro.engine import BatchedEvaluator, ChunkPolicy
from repro.errors.ber import BerVoltageCurve, DEFAULT_BER_CURVE
from repro.errors.injection import ErrorInjector
from repro.rng import ensure_rng
from repro.snn.network import NetworkParameters
from repro.snn.training import TrainedModel


@dataclass(frozen=True)
class TolerancePoint:
    """Measured accuracy at one injected BER."""

    ber: float
    accuracy: float
    trials: int


@dataclass(frozen=True)
class ToleranceReport:
    """Outcome of the Section IV-C analysis."""

    points: Tuple[TolerancePoint, ...]
    target_accuracy: float
    ber_threshold: Optional[float]
    baseline_accuracy: float

    @property
    def curve(self) -> Tuple[Tuple[float, float], ...]:
        return tuple((p.ber, p.accuracy) for p in self.points)

    def meets_target(self, ber: float) -> bool:
        """Whether the analysis found ``ber`` tolerable."""
        return self.ber_threshold is not None and ber <= self.ber_threshold

    def min_voltage(self, curve: BerVoltageCurve = DEFAULT_BER_CURVE) -> float:
        """Lowest supply voltage whose BER stays within the threshold."""
        if self.ber_threshold is None:
            return curve.v_safe
        return curve.voltage_for_ber(self.ber_threshold)


def analyze_error_tolerance(
    model: TrainedModel,
    dataset: Dataset,
    injector: ErrorInjector,
    rates: Sequence[float],
    baseline_accuracy: float,
    accuracy_bound: float = 0.01,
    n_steps: int = 100,
    trials: int = 1,
    network_parameters: Optional[NetworkParameters] = None,
    rng: Optional[np.random.Generator] = None,
    n_classes: int = 10,
    engine: str = "batched",
    chunk_policy: Optional[ChunkPolicy] = None,
    dtype: np.dtype = np.float64,
) -> ToleranceReport:
    """Linear search for the maximum tolerable BER (Section IV-C).

    Each rate is measured in one engine pass: the injector produces
    that rate's ``trials`` corrupted-weight stack in a single call, the
    test set is encoded once per rate, and the
    :class:`~repro.engine.BatchedEvaluator` scores all realizations
    against the shared spike trains.  ``engine="sequential"`` runs the
    reference per-sample loop over the same stacks and trains,
    producing identical accuracies.

    Parameters
    ----------
    model:
        The (improved) SNN whose tolerance is being analysed.
    baseline_accuracy:
        Accuracy of the baseline SNN with accurate DRAM; the target is
        ``baseline_accuracy - accuracy_bound`` (the paper's "within 1%"
        uses ``accuracy_bound=0.01``).
    trials:
        Error masks are random; averaging over multiple injections per
        rate reduces evaluation noise.
    engine:
        Evaluation path, ``"batched"`` (default) or ``"sequential"``.
    chunk_policy:
        Optional :class:`~repro.engine.ChunkPolicy` bounding the peak
        memory of the batched pass.
    dtype:
        Compute precision of the evaluation passes (``numpy.float64``
        default or ``numpy.float32``); matches the pipeline's
        ``compute_dtype`` so a float32-trained model is analysed at
        float32 too.
    """
    if accuracy_bound < 0:
        raise ValueError(f"accuracy_bound must be >= 0, got {accuracy_bound}")
    if trials <= 0:
        raise ValueError(f"trials must be > 0, got {trials}")
    rng = ensure_rng(rng)
    rates = tuple(sorted(float(r) for r in rates))
    target = baseline_accuracy - accuracy_bound

    params = network_parameters or NetworkParameters(
        n_input=model.n_input, n_neurons=model.n_neurons
    )
    evaluator = BatchedEvaluator(
        params,
        theta=model.theta,
        engine=engine,
        chunk_policy=chunk_policy,
        dtype=dtype,
    )

    points = []
    ber_threshold: Optional[float] = None
    # One realization stack *per rate* (not rates x trials at once):
    # bounds resident corrupted copies to ``trials`` weight tensors
    # while still amortising encoding and simulation across the trials
    # of each rate.
    for rate in rates:
        stack, _reports = injector.inject_stack(
            model.weights, rate, n_realizations=trials, rng=rng
        )
        accuracies = evaluator.accuracies(
            dataset.test_images,
            dataset.test_labels,
            model.assignments,
            n_steps,
            rng,
            weights=stack,
            n_classes=n_classes,
            # The stack is `trials` corruptions of model.weights: share
            # the clean drive precompute, recomputing only the rows each
            # realization's flipped weights touch (bit-identical).
            base_weights=model.weights,
        )
        accuracy = float(np.mean(np.atleast_1d(accuracies)))
        points.append(TolerancePoint(ber=rate, accuracy=accuracy, trials=trials))
        if accuracy >= target:
            ber_threshold = rate  # linear search keeps the largest passing rate

    return ToleranceReport(
        points=tuple(points),
        target_accuracy=target,
        ber_threshold=ber_threshold,
        baseline_accuracy=baseline_accuracy,
    )

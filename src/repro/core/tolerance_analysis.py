"""Error-tolerance analysis: finding the maximum tolerable BER.

Section IV-C: the accuracy of the (improved) SNN is measured at each
candidate BER; a *linear search* from the minimum rate to the maximum
keeps the largest rate whose accuracy still meets the user-specified
target.  The linear search is sound because the error-tolerance curve
is generally decreasing in BER (Fig. 8) — and the report records the
whole curve so that assumption can be checked.

The resulting ``BER_th`` drives the DRAM mapping (Section IV-D): only
subarrays with error rate ≤ ``BER_th`` may store weights, and (through
the BER(V) curve) it bounds how far the supply voltage can drop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.datasets.base import Dataset
from repro.errors.ber import BerVoltageCurve, DEFAULT_BER_CURVE
from repro.errors.injection import ErrorInjector
from repro.snn.network import DiehlCookNetwork, NetworkParameters
from repro.snn.training import TrainedModel, evaluate_accuracy


@dataclass(frozen=True)
class TolerancePoint:
    """Measured accuracy at one injected BER."""

    ber: float
    accuracy: float
    trials: int


@dataclass(frozen=True)
class ToleranceReport:
    """Outcome of the Section IV-C analysis."""

    points: Tuple[TolerancePoint, ...]
    target_accuracy: float
    ber_threshold: Optional[float]
    baseline_accuracy: float

    @property
    def curve(self) -> Tuple[Tuple[float, float], ...]:
        return tuple((p.ber, p.accuracy) for p in self.points)

    def meets_target(self, ber: float) -> bool:
        """Whether the analysis found ``ber`` tolerable."""
        return self.ber_threshold is not None and ber <= self.ber_threshold

    def min_voltage(self, curve: BerVoltageCurve = DEFAULT_BER_CURVE) -> float:
        """Lowest supply voltage whose BER stays within the threshold."""
        if self.ber_threshold is None:
            return curve.v_safe
        return curve.voltage_for_ber(self.ber_threshold)


def analyze_error_tolerance(
    model: TrainedModel,
    dataset: Dataset,
    injector: ErrorInjector,
    rates: Sequence[float],
    baseline_accuracy: float,
    accuracy_bound: float = 0.01,
    n_steps: int = 100,
    trials: int = 1,
    network_parameters: Optional[NetworkParameters] = None,
    rng: Optional[np.random.Generator] = None,
    n_classes: int = 10,
) -> ToleranceReport:
    """Linear search for the maximum tolerable BER (Section IV-C).

    Parameters
    ----------
    model:
        The (improved) SNN whose tolerance is being analysed.
    baseline_accuracy:
        Accuracy of the baseline SNN with accurate DRAM; the target is
        ``baseline_accuracy - accuracy_bound`` (the paper's "within 1%"
        uses ``accuracy_bound=0.01``).
    trials:
        Error masks are random; averaging over multiple injections per
        rate reduces evaluation noise.
    """
    if accuracy_bound < 0:
        raise ValueError(f"accuracy_bound must be >= 0, got {accuracy_bound}")
    if trials <= 0:
        raise ValueError(f"trials must be > 0, got {trials}")
    rng = rng or np.random.default_rng()
    rates = tuple(sorted(float(r) for r in rates))
    target = baseline_accuracy - accuracy_bound

    params = network_parameters or NetworkParameters(
        n_input=model.n_input, n_neurons=model.n_neurons
    )
    network = DiehlCookNetwork(params, rng=rng)
    model.install_into(network)

    points = []
    ber_threshold: Optional[float] = None
    for rate in rates:
        accuracies = []
        for _trial in range(trials):
            corrupted, _report = injector.inject_uniform(model.weights, rate, rng=rng)
            network.set_weights(corrupted)
            accuracies.append(
                evaluate_accuracy(
                    network,
                    dataset.test_images,
                    dataset.test_labels,
                    model.assignments,
                    n_steps,
                    rng,
                    n_classes=n_classes,
                )
            )
        accuracy = float(np.mean(accuracies))
        points.append(TolerancePoint(ber=rate, accuracy=accuracy, trials=trials))
        if accuracy >= target:
            ber_threshold = rate  # linear search keeps the largest passing rate

    network.set_weights(model.weights)
    return ToleranceReport(
        points=tuple(points),
        target_accuracy=target,
        ber_threshold=ber_threshold,
        baseline_accuracy=baseline_accuracy,
    )

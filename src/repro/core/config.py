"""Configuration of a full SparkXD run."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Tuple

from repro.core.mapping_policy import MAPPING_POLICIES
from repro.dram.specs import DramSpec, LPDDR3_1600_4GB, spec_from_dict, spec_to_dict
from repro.errors.models import ERROR_MODELS

#: Valid values of the ``engine`` switch (mirrors ``repro.engine.ENGINES``;
#: duplicated here so the config layer stays import-light).
ENGINE_CHOICES = ("batched", "sequential")

#: Valid compute precisions (numpy dtype names; the config layer stays
#: import-light, stages convert via ``np.dtype``).
COMPUTE_DTYPES = ("float64", "float32")

#: Valid values of the ``stage_encoding`` switch (mirrors
#: ``repro.engine.trainer.STAGE_ENCODINGS``; duplicated so the config
#: layer stays import-light).
STAGE_ENCODING_CHOICES = ("fresh", "shared")

#: The reduced supply voltages of the paper's Fig. 12(a).
PAPER_VOLTAGES = (1.325, 1.250, 1.175, 1.100, 1.025)
#: The BER decades swept by the paper's Fig. 11.
PAPER_BER_RATES = (1e-9, 1e-7, 1e-5, 1e-3)


@dataclass(frozen=True)
class SparkXDConfig:
    """Everything a :class:`repro.core.framework.SparkXD` run needs.

    The defaults follow the paper's setup (Section V) at a compute scale
    a CPU can train: the paper's GPU runs use the full 60k-sample MNIST;
    here the synthetic workloads default to a few hundred samples.  Use
    :meth:`paper` for the faithful parameterisation and :meth:`small`
    for second-scale smoke runs.
    """

    # workload
    dataset: str = "mnist"
    n_train: int = 300
    n_test: int = 150
    dataset_seed: int = 7

    # SNN
    n_neurons: int = 400
    n_steps: int = 100
    baseline_epochs: int = 1
    epochs_per_rate: int = 1
    #: Samples per STDP presentation (see docs/training.md).  1 is the
    #: bit-exact sequential reference; >1 trains in vectorized
    #: minibatches — a result-changing approximation, so unlike
    #: ``engine`` this knob IS part of the stage cache fingerprints.
    train_batch_size: int = 1
    #: Simulation/training precision ("float64" or "float32").  float32
    #: halves memory bandwidth but changes results, so it is
    #: fingerprint-relevant too.
    compute_dtype: str = "float64"
    #: Per-BER-stage encoding of fault-aware training: "fresh" re-draws
    #: the sample permutations and Poisson encodings at every stage;
    #: "shared" (requires train_batch_size > 1) encodes once at the
    #: first stage and replays the recorded minibatches at every later
    #: stage (see docs/training.md).  Result-changing, so
    #: fingerprint-relevant.
    stage_encoding: str = "fresh"

    # SparkXD error schedule and accuracy target
    ber_rates: Tuple[float, ...] = PAPER_BER_RATES
    accuracy_bound: float = 0.01
    tolerance_trials: int = 1
    #: DRAM error model injected during training/tolerance analysis
    #: (a :data:`repro.errors.models.ERROR_MODELS` name).
    error_model: str = "model0"

    #: Simulation engine: "batched" evaluates whole sample sets (and
    #: error-realization stacks) in vectorized passes; "sequential" is
    #: the reference per-sample loop.  Results are identical (the
    #: :mod:`repro.engine` equivalence guarantee), so this switch is
    #: deliberately *not* part of any stage cache fingerprint.
    engine: str = "batched"

    # storage + DRAM
    representation: str = "float32"
    dram_spec: DramSpec = field(default_factory=lambda: LPDDR3_1600_4GB)
    voltages: Tuple[float, ...] = PAPER_VOLTAGES
    mapping_policy: str = "sparkxd"
    weak_cell_sigma: float = 0.8
    weak_cell_seed: int = 0
    refetch_passes: int = 1

    # reproducibility
    seed: int = 42

    def __post_init__(self):
        if self.n_train <= 0 or self.n_test <= 0:
            raise ValueError("n_train and n_test must be > 0")
        if self.n_neurons <= 0 or self.n_steps <= 0:
            raise ValueError("n_neurons and n_steps must be > 0")
        if self.baseline_epochs <= 0 or self.epochs_per_rate <= 0:
            raise ValueError("epoch counts must be > 0")
        if not self.ber_rates:
            raise ValueError("need at least one BER rate")
        if any(not 0 <= r <= 1 for r in self.ber_rates):
            raise ValueError("BER rates must lie in [0, 1]")
        if self.accuracy_bound < 0:
            raise ValueError("accuracy_bound must be >= 0")
        if not self.voltages:
            raise ValueError("need at least one reduced voltage")
        v_nom = self.dram_spec.electrical.v_nominal_volts
        if any(v <= 0 or v > v_nom for v in self.voltages):
            raise ValueError(f"voltages must lie in (0, {v_nom}]")
        MAPPING_POLICIES.canonical_name(self.mapping_policy)  # raises if unknown
        ERROR_MODELS.canonical_name(self.error_model)  # raises if unknown
        if self.engine not in ENGINE_CHOICES:
            raise ValueError(
                f"unknown engine {self.engine!r}; choose from {list(ENGINE_CHOICES)}"
            )
        if self.train_batch_size < 1:
            raise ValueError(
                f"train_batch_size must be >= 1, got {self.train_batch_size}"
            )
        if self.compute_dtype not in COMPUTE_DTYPES:
            raise ValueError(
                f"unknown compute_dtype {self.compute_dtype!r}; "
                f"choose from {list(COMPUTE_DTYPES)}"
            )
        if self.stage_encoding not in STAGE_ENCODING_CHOICES:
            raise ValueError(
                f"unknown stage_encoding {self.stage_encoding!r}; "
                f"choose from {list(STAGE_ENCODING_CHOICES)}"
            )
        if self.stage_encoding == "shared" and self.train_batch_size == 1:
            raise ValueError(
                "stage_encoding='shared' requires train_batch_size > 1 "
                "(the bit-exact sequential reference always re-encodes)"
            )

    # ------------------------------------------------------------------
    @property
    def v_nominal(self) -> float:
        return self.dram_spec.electrical.v_nominal_volts

    def with_overrides(self, **kwargs) -> "SparkXDConfig":
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # Wire form: a JSON-safe dict that survives ``json.dumps`` →
    # ``json.loads`` across hosts and rebuilds an identical config —
    # identical down to every stage cache fingerprint, which is what the
    # cluster protocol (docs/cluster.md) relies on to dedupe jobs.

    #: Fields whose tuple-ness JSON flattens to lists and ``from_wire``
    #: must restore (the dataclass declares them as tuples).
    _WIRE_TUPLE_FIELDS = ("ber_rates", "voltages")

    def to_wire(self) -> Dict[str, Any]:
        """Serialise to a JSON-safe dict (see :meth:`from_wire`)."""
        payload = {
            f.name: getattr(self, f.name) for f in dataclasses.fields(self)
        }
        payload["dram_spec"] = spec_to_dict(self.dram_spec)
        for name in self._WIRE_TUPLE_FIELDS:
            payload[name] = list(payload[name])
        return payload

    @classmethod
    def from_wire(cls, data: Mapping[str, Any]) -> "SparkXDConfig":
        """Rebuild a config from :meth:`to_wire` output.

        Unknown keys are rejected (a typo'd field silently dropped would
        desynchronise fingerprints between coordinator and worker).
        """
        payload = dict(data)
        payload["dram_spec"] = spec_from_dict(payload["dram_spec"])
        for name in cls._WIRE_TUPLE_FIELDS:
            payload[name] = tuple(payload[name])
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown config fields in wire payload: {unknown}")
        return cls(**payload)

    @classmethod
    def small(cls, **overrides) -> "SparkXDConfig":
        """A sub-minute configuration for smoke tests and examples.

        The accuracy bound is relaxed from the paper's 1% to 5%: with
        under a hundred test samples, evaluation noise alone exceeds 1%.
        """
        base = cls(
            n_train=150,
            n_test=80,
            n_neurons=60,
            n_steps=80,
            baseline_epochs=2,
            ber_rates=(1e-5, 1e-3),
            accuracy_bound=0.05,
            tolerance_trials=2,
        )
        return base.with_overrides(**overrides) if overrides else base

    @classmethod
    def paper(cls, n_neurons: int = 400, dataset: str = "mnist", **overrides) -> "SparkXDConfig":
        """The paper's Section V parameterisation (CPU-scaled workload)."""
        base = cls(
            dataset=dataset,
            n_neurons=n_neurons,
            n_train=500,
            n_test=200,
            n_steps=100,
            ber_rates=PAPER_BER_RATES,
            voltages=PAPER_VOLTAGES,
        )
        return base.with_overrides(**overrides) if overrides else base

"""Result types of a SparkXD run.

These used to live inside :mod:`repro.core.framework`; they are a
separate module so both the staged pipeline (:mod:`repro.pipeline`) and
the classic :class:`~repro.core.framework.SparkXD` facade can share them
without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.config import SparkXDConfig
from repro.core.fault_aware_training import FaultAwareTrainingResult
from repro.core.tolerance_analysis import ToleranceReport
from repro.dram.controller import TraceExecutionResult
from repro.snn.training import TrainedModel


@dataclass(frozen=True)
class VoltageOutcome:
    """Energy/latency of SparkXD at one reduced supply voltage."""

    v_supply: float
    device_ber: float
    feasible: bool
    mapping_policy: str
    result: Optional[TraceExecutionResult]
    energy_saving: float
    speedup: float


@dataclass
class SparkXDResult:
    """Everything a SparkXD run produced."""

    config: SparkXDConfig
    baseline_model: TrainedModel
    improved_model: TrainedModel
    training: FaultAwareTrainingResult
    tolerance: ToleranceReport
    baseline_dram: TraceExecutionResult
    outcomes: Dict[float, VoltageOutcome] = field(default_factory=dict)

    @property
    def ber_threshold(self) -> Optional[float]:
        return self.tolerance.ber_threshold

    def mean_energy_saving(self) -> float:
        feasible = [o.energy_saving for o in self.outcomes.values() if o.feasible]
        return float(np.mean(feasible)) if feasible else 0.0

    def summary(self) -> str:
        lines = [
            f"SparkXD run: {self.config.dataset}, N{self.config.n_neurons}",
            f"  baseline accuracy (accurate DRAM): {self.baseline_model.accuracy:.3f}",
            f"  improved accuracy (max-BER DRAM):  {self.improved_model.accuracy:.3f}",
            f"  max tolerable BER: {self.ber_threshold}",
            f"  baseline DRAM energy: {self.baseline_dram.energy.total_mj:.4f} mJ @ "
            f"{self.baseline_dram.v_supply:.3f} V",
        ]
        for v, outcome in sorted(self.outcomes.items(), reverse=True):
            if outcome.feasible:
                lines.append(
                    f"  {v:.3f} V: energy saving {outcome.energy_saving:.1%}, "
                    f"speed-up {outcome.speedup:.2f}x"
                )
            else:
                lines.append(f"  {v:.3f} V: infeasible (BER above tolerance)")
        lines.append(f"  mean energy saving: {self.mean_energy_saving():.1%}")
        return "\n".join(lines)

"""Selecting the DRAM operating voltage from a tolerance report.

This is the implicit final step of the paper's flow: after the
error-tolerance analysis yields ``BER_th``, the system must choose the
*lowest* supply voltage that is simultaneously

1. **tolerable** — the device BER at that voltage does not exceed
   ``BER_th`` (through the BER(V) curve of Fig. 2c), and
2. **mappable** — the subarrays whose error rate is at or below
   ``BER_th`` still have capacity for the weight tensor (Algorithm 2's
   feasibility condition; weak-cell variation means some subarrays
   exceed the device mean).

The paper evaluates a fixed voltage grid (Fig. 12a); this module
searches that grid and reports the best feasible corner and its
expected energy saving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.mapping_policy import (
    InsufficientSafeCapacityError,
    sparkxd_mapping,
)
from repro.dram.energy import DramEnergyModel
from repro.dram.organization import DramOrganization
from repro.dram.specs import DramSpec
from repro.errors.ber import BerVoltageCurve, DEFAULT_BER_CURVE
from repro.errors.weak_cells import WeakCellMap


@dataclass(frozen=True)
class VoltageDecision:
    """Outcome of the operating-point search."""

    v_selected: float
    ber_threshold: float
    device_ber: float
    safe_subarray_fraction: float
    estimated_access_saving: float
    #: corners rejected and why ('ber' or 'capacity'), lowest first.
    rejected: Tuple[Tuple[float, str], ...]

    @property
    def is_reduced(self) -> bool:
        return self.estimated_access_saving > 0.0


def select_operating_voltage(
    spec: DramSpec,
    n_weights: int,
    bits_per_weight: int,
    ber_threshold: Optional[float],
    voltages: Sequence[float] = (1.325, 1.250, 1.175, 1.100, 1.025),
    weak_cells: Optional[WeakCellMap] = None,
    ber_curve: BerVoltageCurve = DEFAULT_BER_CURVE,
) -> VoltageDecision:
    """Choose the lowest feasible voltage for a weight tensor.

    Falls back to the nominal (accurate-DRAM) voltage when no reduced
    corner is feasible, e.g. when ``ber_threshold`` is ``None`` because
    the tolerance analysis found no passing BER.
    """
    if n_weights <= 0 or bits_per_weight <= 0:
        raise ValueError("n_weights and bits_per_weight must be > 0")
    organization = DramOrganization(spec)
    weak_cells = weak_cells or WeakCellMap(organization)
    energy = DramEnergyModel(spec)
    v_nominal = spec.electrical.v_nominal_volts
    threshold = ber_threshold if ber_threshold is not None else -1.0

    rejected = []
    for v in sorted(voltages):  # lowest (best saving) first
        device_ber = ber_curve.ber_at(v)
        profile = weak_cells.profile_at(v, ber_curve)
        if threshold < 0:
            rejected.append((v, "ber"))
            continue
        try:
            sparkxd_mapping(organization, n_weights, bits_per_weight, profile, threshold)
        except InsufficientSafeCapacityError:
            rejected.append((v, "capacity"))
            continue
        return VoltageDecision(
            v_selected=v,
            ber_threshold=threshold,
            device_ber=device_ber,
            safe_subarray_fraction=profile.safe_fraction(threshold),
            estimated_access_saving=energy.energy_per_access_saving(v),
            rejected=tuple(rejected),
        )

    return VoltageDecision(
        v_selected=v_nominal,
        ber_threshold=max(threshold, 0.0),
        device_ber=0.0,
        safe_subarray_fraction=1.0,
        estimated_access_saving=0.0,
        rejected=tuple(rejected),
    )

"""Multi-host distributed sweep execution with artifact sync.

The cluster subsystem turns the single-host sweep engine
(:mod:`repro.pipeline`) into a horizontally scalable service, using
nothing beyond the standard library (``socket`` + ``json``):

- a **coordinator** (:class:`CoordinatorServer` around a
  :class:`SweepPlan`) expands the grid, dedupes jobs by stage
  fingerprint and hands them out over a small line protocol with
  leases, heartbeats, requeue-with-exclusion, bounded retries and
  affinity-aware grants (jobs prefer the worker already holding their
  upstream artifacts);
- **worker agents** (:class:`WorkerAgent`) lease jobs, run them through
  the ordinary :class:`~repro.pipeline.stages.ExperimentPipeline`
  against a local store, and sync artifacts by fingerprint
  (:class:`ArtifactSync` — idempotent, resumable by retry);
- the **executor** (:class:`ClusterExecutor`) drives one sweep end to
  end — overlapping record assembly with the distribution tail — and
  assembles :class:`~repro.pipeline.runner.RunRecord` lists whose
  values are identical to the serial
  :class:`~repro.pipeline.runner.Runner`;
- an optional **journal** (:class:`SweepJournal`) persists every job
  transition next to the store, so a coordinator killed mid-sweep
  restarts with ``--resume`` and never re-leases a journaled-done
  fingerprint;
- the **experiment service** (:class:`ExperimentService`) runs the
  coordinator logic persistently: many named sweeps (each with its own
  plan + journal) multiplexed over one shared store and one worker
  fleet, administered through an HTTP/JSON control plane
  (:class:`ServiceClient`), with shared-token auth on both planes.

Minimal end-to-end (one process per block, any hosts)::

    # coordinator host
    python -m repro cluster coordinator --bind 0.0.0.0:8752 --seeds 1 2 3

    # each worker host
    python -m repro cluster worker --coordinator coord-host:8752

or keep one service up and submit sweeps to it as they come::

    python -m repro cluster serve --bind 0.0.0.0:8752
    python -m repro cluster submit --service coord-host:8753 --seeds 1 2 3

or programmatically, with the runner facade::

    records = Runner(config, store=store, coordinator="0.0.0.0:8752").run(grid)

See ``docs/cluster.md`` for the protocol, lease semantics and the
artifact sync contract.
"""

from repro.cluster.coordinator import (
    CoordinatorCore,
    CoordinatorServer,
    SweepEndpoint,
)
from repro.cluster.executor import (
    ClusterExecutor,
    DistributionTimeout,
    local_worker_processes,
    local_worker_threads,
)
from repro.cluster.http_api import (
    DEFAULT_HTTP_PORT,
    ServiceAuthError,
    ServiceClient,
    ServiceError,
)
from repro.cluster.journal import JournalMismatch, SweepJournal
from repro.cluster.plan import Job, PlanFailed, SweepPlan, WorkerRegistry
from repro.cluster.protocol import (
    AuthError,
    ClusterClient,
    ConnectionClosed,
    DEFAULT_PORT,
    PROTOCOL_CAPS,
    ProtocolError,
    encode_blob,
    format_address,
    parse_address,
)
from repro.cluster.service import ExperimentService, ManagedSweep, sweep_identity
from repro.cluster.sync import ArtifactSync
from repro.cluster.worker import WorkerAgent, WorkerStats, default_worker_name

__all__ = [
    "ArtifactSync",
    "AuthError",
    "ClusterClient",
    "ClusterExecutor",
    "ConnectionClosed",
    "CoordinatorCore",
    "CoordinatorServer",
    "DEFAULT_HTTP_PORT",
    "DEFAULT_PORT",
    "DistributionTimeout",
    "ExperimentService",
    "Job",
    "JournalMismatch",
    "ManagedSweep",
    "PROTOCOL_CAPS",
    "PlanFailed",
    "ProtocolError",
    "ServiceAuthError",
    "ServiceClient",
    "ServiceError",
    "SweepEndpoint",
    "SweepJournal",
    "SweepPlan",
    "WorkerAgent",
    "WorkerRegistry",
    "WorkerStats",
    "default_worker_name",
    "encode_blob",
    "format_address",
    "local_worker_processes",
    "local_worker_threads",
    "parse_address",
    "sweep_identity",
]

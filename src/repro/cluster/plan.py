"""Sweep planning and lease-based job scheduling for the cluster.

A :class:`SweepPlan` expands a parameter grid into a deduplicated DAG of
stage-aligned jobs — one job per *unique missing* stage fingerprint,
exactly the waves :class:`repro.pipeline.runner.Runner` runs through its
process pool, but expressed as leasable units a
:class:`~repro.cluster.coordinator.CoordinatorServer` can hand to
networked workers:

- **dedupe** — two grid points agreeing on a stage's fingerprint share
  one job, so each training-side fingerprint is executed exactly once
  cluster-wide;
- **dependencies** — a job becomes *ready* when the jobs producing its
  upstream artifacts are done (artifacts already cached in the
  coordinator's store need no job at all);
- **leases** — a worker holds a job for ``lease_timeout`` seconds,
  renewable by heartbeat; a lease that expires (worker death, network
  partition) requeues the job with that worker excluded, so a healthy
  peer picks it up.  Exclusion is advisory when it would deadlock: a
  worker may take a job it is excluded from iff no other live worker
  could;
- **bounded retries** — a job leased ``max_attempts`` times without a
  completion fails the whole plan with a diagnostic;
- **affinity** — a leasing worker reports which artifacts it already
  holds locally; among the ready jobs it is granted the one with the
  most upstream artifacts already in its hands, so dependency chains
  stay on the worker that computed (or pulled) them and transfer bytes
  stay down.  With nothing reported (or ``affinity=False``) grants fall
  back to plain creation order, exactly the pre-affinity behaviour;
- **journal** — with a :class:`~repro.cluster.journal.SweepJournal`
  attached, every transition is appended to disk and a reconstructed
  plan replays ``done`` events (validated against the store), so a
  coordinator crash never re-leases a finished fingerprint.

The plan is deliberately socket-free (all methods are plain calls under
an internal lock, time is injectable) so the scheduling semantics are
unit-testable without networking.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.config import SparkXDConfig
from repro.cluster.journal import SweepJournal
from repro.pipeline.runner import sweep_grid
from repro.pipeline.stages import default_stages
from repro.pipeline.store import ArtifactStore, fingerprint
from repro.telemetry import get_logger, get_metrics

LOG = get_logger(__name__)


@dataclass
class Job:
    """One leasable unit: run the stage chain up to ``depth`` for ``config``.

    The target artifact is ``(stage, digest)``; upstream artifacts the
    worker is missing are pulled from the coordinator, and everything
    newly computed is pushed back (see docs/cluster.md).
    """

    job_id: str
    stage: str
    depth: int
    digest: str
    config: SparkXDConfig
    deps: Set[str] = field(default_factory=set)
    #: Every upstream ``(stage, digest)`` key of the chain prefix —
    #: exactly what the executing worker must hold (pull or recompute)
    #: before running; the affinity scorer counts these.
    upstream: Tuple[Tuple[str, str], ...] = ()
    state: str = "pending"  # pending | leased | done | failed
    attempts: int = 0
    excluded: Set[str] = field(default_factory=set)
    worker: Optional[str] = None
    deadline: Optional[float] = None
    #: Placement/transfer stats of the completing worker (exec_s per
    #: stage, sync_s/sync bytes, worker slot) — merged into the
    #: assembled records' ``stage_timings``.
    stats: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None

    @property
    def short_id(self) -> str:
        """Abbreviated display form (job identity is the *full* digest)."""
        return f"{self.stage}:{self.digest[:16]}"

    def to_wire(self, lease_timeout: float) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "display_id": self.short_id,
            "stage": self.stage,
            "depth": self.depth,
            "digest": self.digest,
            "config": self.config.to_wire(),
            "lease_s": lease_timeout,
        }


class PlanFailed(RuntimeError):
    """The plan cannot complete (a job exhausted its retry budget)."""


class WorkerRegistry:
    """Fleet state shared across plans: liveness, slots, holdings, peers.

    In single-sweep mode each :class:`SweepPlan` creates its own
    registry, reproducing the pre-service behaviour exactly.  The
    experiment service instead passes ONE registry to every tenant
    plan, so worker liveness, stable slot numbers, affinity holdings
    and the peer routing table describe the whole fleet no matter which
    sweep a worker last touched — a worker that went silent is dead for
    *every* tenant, and an artifact it holds is locatable from *every*
    tenant.

    Thread-safe under its own lock; plans may call into it while
    holding their plan lock (the registry never calls back into a
    plan, so the ``plan lock -> registry lock`` order is acyclic).
    """

    def __init__(
        self,
        *,
        clock: Callable[[], float] = time.monotonic,
        liveness_window_s: float = 90.0,
    ):
        if liveness_window_s <= 0:
            raise ValueError(
                f"liveness_window_s must be > 0, got {liveness_window_s}"
            )
        self.clock = clock
        self.liveness_window_s = float(liveness_window_s)
        self._lock = threading.Lock()
        #: worker name -> last contact (monotonic seconds)
        self._workers: Dict[str, float] = {}
        #: worker name -> stable integer slot (first-contact order)
        self._slots: Dict[str, int] = {}
        #: worker name -> (stage, digest) keys it reported holding
        self._holdings: Dict[str, Set[Tuple[str, str]]] = {}
        #: worker name -> (host, port) of its peer artifact server
        self._peers: Dict[str, Tuple[str, int]] = {}

    def touch(self, worker: str) -> None:
        with self._lock:
            self._touch_locked(worker)

    def _touch_locked(self, worker: str) -> None:
        self._workers[worker] = self.clock()
        self._slot_locked(worker)

    def slot(self, worker: str) -> int:
        with self._lock:
            return self._slot_locked(worker)

    def _slot_locked(self, worker: str) -> int:
        if worker not in self._slots:
            self._slots[worker] = len(self._slots)
        return self._slots[worker]

    def ages(self) -> Dict[str, float]:
        """Seconds since each known worker was last heard from."""
        now = self.clock()
        with self._lock:
            return {name: now - seen for name, seen in self._workers.items()}

    def live_names(self) -> List[str]:
        """Workers heard from within the liveness window."""
        now = self.clock()
        with self._lock:
            return [
                name
                for name, seen in self._workers.items()
                if now - seen <= self.liveness_window_s
            ]

    def _live_locked(self, worker: str, now: float) -> bool:
        seen = self._workers.get(worker)
        return seen is not None and now - seen <= self.liveness_window_s

    def set_holdings(self, worker: str, keys: Iterable[Sequence[str]]) -> None:
        """Replace ``worker``'s reported holdings (from a lease report)."""
        with self._lock:
            self._touch_locked(worker)
            self._holdings[worker] = {
                (str(stage), str(digest)) for stage, digest in keys
            }

    def add_holdings(self, worker: str, keys: Iterable[Tuple[str, str]]) -> None:
        """Fold additional keys into ``worker``'s holdings (completion)."""
        with self._lock:
            held = self._holdings.setdefault(worker, set())
            held.update((str(stage), str(digest)) for stage, digest in keys)

    def holding_count(self, worker: str) -> int:
        with self._lock:
            return len(self._holdings.get(worker, ()))

    def holdings_view(self, worker: str) -> Set[Tuple[str, str]]:
        """A snapshot copy of ``worker``'s reported holdings."""
        with self._lock:
            return set(self._holdings.get(worker, ()))

    def register_peer(self, worker: str, host: str, port: int) -> None:
        with self._lock:
            self._touch_locked(worker)
            self._peers[worker] = (str(host), int(port))

    def locate(
        self,
        keys: Iterable[Sequence[str]],
        exclude: Optional[str] = None,
    ) -> List[List[Any]]:
        """``[[stage, digest, [address, …]], …]`` for keys a live peer holds."""
        from repro.cluster.protocol import format_address

        now = self.clock()
        located: List[List[Any]] = []
        with self._lock:
            serving = [
                (name, self._holdings.get(name, ()))
                for name, address in self._peers.items()
                if name != exclude and self._live_locked(name, now)
            ]
            for stage, digest in keys:
                key = (str(stage), str(digest))
                holders = [
                    format_address(self._peers[name])
                    for name, held in serving
                    if key in held
                ]
                if holders:
                    located.append([key[0], key[1], holders])
        return located


class SweepPlan:
    """Deduplicated, dependency-ordered job queue for one sweep.

    Parameters
    ----------
    base_config / grid:
        Same meaning as in :class:`repro.pipeline.runner.Runner`.
    store:
        The coordinator's artifact store.  Fingerprints already present
        get no job; completions are validated against it.
    lease_timeout:
        Seconds a worker may hold a job between heartbeats.
    max_attempts:
        Lease grants per job before the plan fails.
    clock:
        Injectable monotonic time source (tests).
    journal:
        Optional :class:`~repro.cluster.journal.SweepJournal`.  Job
        transitions are appended to it, and ``done`` events already on
        disk are replayed at construction: a journaled-done fingerprint
        whose artifact is still in the store comes back as a done job
        (original worker attribution and stats intact) and is never
        re-leased.
    affinity:
        With ``True`` (default), :meth:`lease` prefers the ready job
        with the most upstream artifacts among those the worker
        reported holding; ``False`` restores plain creation-order
        grants (the pre-affinity scheduler).
    peer_sync:
        With ``True`` (default) the plan doubles as the artifact
        *routing table*: workers register a peer-serving address
        (:meth:`register_peer`) and :meth:`locate` answers "who holds
        this key" from the same holdings map affinity scheduling uses,
        so artifact bytes flow worker-to-worker and the coordinator
        degrades to a metadata service.  ``False`` disables
        registration and makes :meth:`locate` answer nothing, which
        reproduces the PR 4/5 hub topology exactly.
    registry:
        Optional shared :class:`WorkerRegistry`.  ``None`` (the
        default) creates a private one whose liveness window is the
        classic ``3 × lease_timeout``; the experiment service passes
        one registry to every tenant plan so the fleet view is global.
    """

    def __init__(
        self,
        base_config: SparkXDConfig,
        grid: Mapping[str, Sequence[Any]],
        store: ArtifactStore,
        *,
        lease_timeout: float = 30.0,
        max_attempts: int = 3,
        clock: Callable[[], float] = time.monotonic,
        journal: Optional[SweepJournal] = None,
        affinity: bool = True,
        peer_sync: bool = True,
        registry: Optional[WorkerRegistry] = None,
    ):
        if lease_timeout <= 0:
            raise ValueError(f"lease_timeout must be > 0, got {lease_timeout}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.store = store
        self.lease_timeout = float(lease_timeout)
        self.max_attempts = int(max_attempts)
        self.clock = clock
        self.journal = journal
        self.affinity = bool(affinity)
        self.peer_sync = bool(peer_sync)
        self._lock = threading.Lock()
        self.param_sets = sweep_grid(grid)
        self.configs = [base_config.with_overrides(**p) for p in self.param_sets]
        self.chain = default_stages()
        #: Full (stage, digest) chain per config, in chain order —
        #: shared by job construction, the plan identity below, and the
        #: executor's per-grid-point readiness checks.
        self.chain_keys: List[List[Tuple[str, str]]] = [
            [(stage.name, stage.cache_key(config)) for stage in self.chain]
            for config in self.configs
        ]
        #: Stable identity of this sweep: the full config × stage digest
        #: matrix.  Independent of store warmth, so a resumed plan gets
        #: the same id and journal replay can verify it is reading the
        #: journal of *this* sweep.
        self.plan_id = fingerprint([list(map(list, keys)) for keys in self.chain_keys])
        self.jobs: Dict[str, Job] = {}
        self._order: List[str] = []  # creation order: grid-major, depth-minor
        self.failure: Optional[str] = None
        self._cancelled = False
        self.registry = registry if registry is not None else WorkerRegistry(
            clock=clock, liveness_window_s=3.0 * self.lease_timeout
        )
        replayed = (
            journal.done_events(plan_id=self.plan_id) if journal is not None else {}
        )
        self._build_jobs(replayed)
        self.replayed_done = sum(
            1 for job in self.jobs.values() if job.state == "done"
        )
        self._journal_event({
            "event": "plan",
            "plan_id": self.plan_id,
            "jobs": len(self.jobs),
            "replayed_done": self.replayed_done,
            "grid_points": len(self.configs),
        })
        LOG.info(
            "sweep plan built",
            extra={
                "plan_id": self.plan_id[:16],
                "jobs": len(self.jobs),
                "replayed_done": self.replayed_done,
                "grid_points": len(self.configs),
            },
        )

    # ------------------------------------------------------------------
    # Construction.

    def _build_jobs(self, replayed: Mapping[Tuple[str, str], Dict[str, Any]]) -> None:
        for config, keys in zip(self.configs, self.chain_keys):
            last_job_id: Optional[str] = None
            upstream: List[Tuple[str, str]] = []
            for depth, stage in enumerate(self.chain):
                digest = keys[depth][1]
                # Jobs are keyed by the FULL digest: a 16-hex-char
                # prefix (~64 bits) silently aliased distinct
                # fingerprints onto one job, losing the second config's
                # artifact entirely.  Display forms may abbreviate
                # (Job.short_id); identity never does.
                job_id = f"{stage.name}:{digest}"
                key = (stage.name, digest)
                existing = self.jobs.get(job_id)
                if existing is not None:
                    last_job_id = job_id
                    upstream.append(key)
                    continue
                in_store = key in self.store
                replay_event = replayed.get(key)
                if in_store and replay_event is None:
                    # Cached on the coordinator before this sweep ever
                    # ran: no job.  The dependency chain continues from
                    # the last job this config did create (if any) so
                    # downstream jobs still wait for every artifact
                    # they must pull.
                    upstream.append(key)
                    continue
                job = Job(
                    job_id=job_id,
                    stage=stage.name,
                    depth=depth,
                    digest=digest,
                    config=config,
                    deps=set() if last_job_id is None else {last_job_id},
                    upstream=tuple(upstream),
                )
                if in_store and replay_event is not None:
                    # Journaled done AND the artifact survived: replay
                    # as a finished job so the resumed plan's counts,
                    # stats and dependency graph cover the whole sweep
                    # — without a single re-lease or re-execution.  A
                    # journaled done whose artifact vanished (pruned
                    # store) is NOT replayed: bytes win over history,
                    # the job simply runs again.
                    job.state = "done"
                    job.worker = replay_event.get("worker")
                    job.stats = dict(replay_event.get("stats") or {})
                self.jobs[job_id] = job
                self._order.append(job_id)
                last_job_id = job_id
                upstream.append(key)

    def _journal_event(self, event: Dict[str, Any]) -> None:
        if self.journal is not None:
            self.journal.append(event)

    # ------------------------------------------------------------------
    # State inspection.

    @property
    def done(self) -> bool:
        with self._lock:
            return self.failure is None and all(
                job.state == "done" for job in self.jobs.values()
            )

    @property
    def failed(self) -> bool:
        with self._lock:
            return self.failure is not None

    def counts(self) -> Dict[str, int]:
        with self._lock:
            counts = {"pending": 0, "leased": 0, "done": 0, "failed": 0}
            for job in self.jobs.values():
                counts[job.state] += 1
            return counts

    def worker_slot(self, worker: str) -> int:
        return self.registry.slot(worker)

    def worker_ages(self) -> Dict[str, float]:
        """Seconds since each known worker was last heard from."""
        return self.registry.ages()

    # ------------------------------------------------------------------
    # Peer routing (the registry's holdings map as a routing table).

    def register_peer(self, worker: str, host: str, port: int) -> None:
        """Record ``worker``'s peer artifact server address (from hello)."""
        if not self.peer_sync:
            return
        self.registry.register_peer(worker, host, port)

    def locate(
        self,
        keys: Iterable[Sequence[str]],
        exclude: Optional[str] = None,
    ) -> List[List[Any]]:
        """``[[stage, digest, [address, …]], …]`` for keys a live peer holds.

        The addresses are peer artifact servers (``host:port`` strings)
        of workers that reported holding the key, registered a peer
        server, and were heard from recently — dead workers drop out of
        the answer by the same liveness window lease exclusion uses.
        Keys nobody (but possibly the coordinator) holds are omitted:
        the caller falls back to the hub for those.  ``exclude`` drops
        one worker (the requester) from every answer.
        """
        if not self.peer_sync:
            return []
        return self.registry.locate(keys, exclude=exclude)

    def worker_holding_count(self, worker: str) -> int:
        """How many keys the coordinator attributes to ``worker``."""
        return self.registry.holding_count(worker)

    # ------------------------------------------------------------------
    # Scheduling.

    def _touch_locked(self, worker: str) -> None:
        # Registry after plan lock is the one sanctioned nesting order.
        self.registry.touch(worker)

    def _ready(self, job: Job) -> bool:
        return job.state == "pending" and all(
            self.jobs[dep].state == "done" for dep in job.deps
        )

    def _eligible(self, job: Job, worker: str) -> bool:
        """Exclusion check, relaxed when honouring it would deadlock."""
        if worker not in job.excluded:
            return True
        live_others = [
            name
            for name in self.registry.live_names()
            if name != worker and name not in job.excluded
        ]
        return not live_others

    def _requeue_locked(self, job: Job, worker: Optional[str], reason: str) -> None:
        if job.state != "leased":
            return
        if worker is not None:
            job.excluded.add(worker)
        job.worker = None
        job.deadline = None
        job.error = reason
        if job.attempts >= self.max_attempts:
            job.state = "failed"
            self.failure = (
                f"job {job.job_id} failed after {job.attempts} attempt(s): {reason}"
            )
            self._journal_event({
                "event": "plan-failed",
                "job": job.job_id,
                "failure": self.failure,
            })
            get_metrics().counter("plan.failures").inc()
            LOG.error(
                "plan failed",
                extra={"job": job.short_id, "reason": reason},
            )
        else:
            job.state = "pending"
            self._journal_event({
                "event": "requeue",
                "job": job.job_id,
                "worker": worker,
                "reason": reason,
            })
            get_metrics().counter("plan.requeues").inc()
            LOG.warning(
                "job requeued",
                extra={"job": job.short_id, "worker": worker, "reason": reason},
            )

    def expire_leases(self) -> List[str]:
        """Requeue every lease past its deadline; returns the job ids."""
        now = self.clock()
        expired = []
        with self._lock:
            for job in self.jobs.values():
                if job.state == "leased" and job.deadline is not None and now > job.deadline:
                    holder = job.worker
                    self._requeue_locked(
                        job, holder, f"lease expired on worker {holder!r}"
                    )
                    expired.append(job.job_id)
        return expired

    def lease(
        self,
        worker: str,
        holding: Optional[Iterable[Sequence[str]]] = None,
    ) -> Optional[Job]:
        """Grant a ready, eligible job to ``worker`` (or ``None``).

        ``holding`` — the ``(stage, digest)`` keys the worker reports
        having locally — steers the grant: among the ready jobs, the
        one with the most upstream artifacts already on that worker
        wins (ties break by creation order), so chains stay where
        their artifacts live and sync traffic shrinks.  Without a
        report (or with ``affinity=False``) the first ready job in
        creation order is granted, exactly as before.
        """
        self.expire_leases()
        if holding is not None:
            self.registry.set_holdings(worker, holding)
        with self._lock:
            self._touch_locked(worker)
            if self.failure is not None or self._cancelled:
                return None
            held = (
                self.registry.holdings_view(worker) if self.affinity else ()
            )
            best: Optional[Job] = None
            best_score = -1
            for job_id in self._order:
                job = self.jobs[job_id]
                if not (self._ready(job) and self._eligible(job, worker)):
                    continue
                if not held:
                    best = job
                    break
                score = sum(1 for key in job.upstream if key in held)
                if score > best_score:
                    best, best_score = job, score
            if best is None:
                return None
            best.state = "leased"
            best.worker = worker
            best.attempts += 1
            best.deadline = self.clock() + self.lease_timeout
            self._journal_event({
                "event": "lease",
                "job": best.job_id,
                "worker": worker,
                "attempt": best.attempts,
            })
            get_metrics().counter("plan.leases").inc()
            return best

    def heartbeat(self, worker: str, job_id: str) -> bool:
        """Extend the lease; False means the lease is no longer held."""
        with self._lock:
            self._touch_locked(worker)
            job = self.jobs.get(job_id)
            if job is None or job.state != "leased" or job.worker != worker:
                return False
            job.deadline = self.clock() + self.lease_timeout
            return True

    def complete(
        self,
        worker: str,
        job_id: str,
        stats: Optional[Mapping[str, Any]] = None,
    ) -> bool:
        """Mark ``job_id`` done; idempotent and holder-agnostic.

        The target artifact is content-addressed, so a completion from a
        worker whose lease already expired (it finished anyway) is as
        good as one from the current holder — and completing an
        already-done job is a no-op success.  The only rejection is a
        completion whose target artifact never reached the store.
        """
        with self._lock:
            self._touch_locked(worker)
            job = self.jobs.get(job_id)
            if job is None:
                return False
            if job.state == "done":
                return True
            if (job.stage, job.digest) not in self.store:
                if job.state == "leased" and job.worker != worker:
                    # A stale ex-holder's artifact-less completion must
                    # not revoke the current holder's live lease (same
                    # guard as fail()).
                    return False
                # The worker claims completion but never pushed the
                # artifact: treat as a failed attempt of that worker.
                self._requeue_locked(
                    job, worker, f"completion without artifact from {worker!r}"
                )
                return False
            job.state = "done"
            job.worker = worker
            job.deadline = None
            job.error = None
            if self.peer_sync:
                # The completing worker now demonstrably holds the whole
                # chain prefix (it pulled or computed every upstream key
                # plus the target), so fold it into the routing table
                # immediately — peers can pull from it before its next
                # lease re-reports holdings.
                self.registry.add_holdings(
                    worker, list(job.upstream) + [(job.stage, job.digest)]
                )
            if not job.stats:
                job.stats = dict(stats or {})
                job.stats.setdefault("worker", worker)
                job.stats.setdefault("slot", self.registry.slot(worker))
            self._journal_event({
                "event": "done",
                "job": job.job_id,
                "stage": job.stage,
                "digest": job.digest,
                "worker": worker,
                "stats": job.stats,
            })
            get_metrics().counter("plan.completions").inc()
            return True

    def fail(self, worker: str, job_id: str, error: str) -> None:
        """A worker reported a job exception: requeue with exclusion."""
        with self._lock:
            self._touch_locked(worker)
            job = self.jobs.get(job_id)
            if job is None or job.state in ("done", "failed"):
                return
            if job.state == "leased" and job.worker != worker:
                return  # stale report from a previous holder
            self._requeue_locked(job, worker, error)

    def raise_on_failure(self) -> None:
        with self._lock:
            if self.failure is not None:
                raise PlanFailed(self.failure)

    # ------------------------------------------------------------------
    # Cancellation (service tenants can be withdrawn mid-flight).

    @property
    def cancelled(self) -> bool:
        with self._lock:
            return self._cancelled

    def cancel(self) -> int:
        """Withdraw the sweep: no further grants, live leases freed.

        Returns the number of leases released.  Freed jobs go back to
        ``pending`` with their worker and deadline cleared (no exclusion
        — the workers did nothing wrong), but :meth:`lease` grants
        nothing once cancelled, so the fleet immediately drains onto
        other tenants.  A completion that still arrives for a freed job
        is accepted as usual (content-addressed artifacts make it
        idempotent).  Cancellation is in-memory only: resubmitting the
        same sweep later resumes from the journal as if never cancelled.
        """
        with self._lock:
            if self._cancelled:
                return 0
            self._cancelled = True
            freed = 0
            for job in self.jobs.values():
                if job.state == "leased":
                    job.worker = None
                    job.deadline = None
                    job.state = "pending"
                    freed += 1
            self._journal_event({
                "event": "cancelled",
                "plan_id": self.plan_id,
                "leases_freed": freed,
            })
            get_metrics().counter("plan.cancellations").inc()
            LOG.info(
                "plan cancelled",
                extra={"plan_id": self.plan_id[:16], "leases_freed": freed},
            )
            return freed

    def journal_status(self) -> Optional[Dict[str, Any]]:
        """The attached journal's lag/size view (``None`` without one)."""
        if self.journal is None:
            return None
        return self.journal.status()

    # ------------------------------------------------------------------
    def job_for(self, stage_name: str, digest: str) -> Optional[Job]:
        """The job that produced ``(stage_name, digest)``, if one ran."""
        return self.jobs.get(f"{stage_name}:{digest}")

"""The cluster line protocol: one JSON header line, optional raw blob.

Every exchange between a worker and the coordinator is a single
request/response over a fresh TCP connection:

- the requester sends one JSON object on one ``\\n``-terminated line;
- if the object carries ``"blob_bytes": n``, exactly ``n`` raw bytes
  follow the newline (artifact payloads — pickles, never JSON-escaped);
- the responder answers with one JSON line (plus an optional blob,
  framed the same way).

Keeping the protocol connection-per-request makes both sides trivially
restartable: there is no session state to resume, a half-written request
is simply dropped by the server, and a worker that lost connectivity
retries the identical idempotent request.  See ``docs/cluster.md`` for
the full operation table.

Security note: artifact blobs are pickles, exactly like the disk cache
(:mod:`repro.pipeline.store`).  Only run coordinators/workers on hosts
and networks you trust, as you would with any shared build cache.
"""

from __future__ import annotations

import gzip
import json
import socket
from typing import Any, BinaryIO, Dict, Optional, Sequence, Tuple

#: Upper bound on one JSON header line.  Headers carry configs and job
#: descriptions, never artifacts; anything larger is a protocol error.
MAX_HEADER_BYTES = 4 * 1024 * 1024

#: Default coordinator TCP port (chosen from the unassigned range).
DEFAULT_PORT = 8752

#: Optional wire capabilities this build understands.  A responder
#: advertises them in its ``hello`` reply; a requester only *sends* an
#: encoded blob (or asks for one via ``"accept"``) after seeing the
#: capability, so mixed-version fleets degrade to the raw-blob protocol
#: instead of mis-framing.
PROTOCOL_CAPS: Tuple[str, ...] = ("gzip",)

#: Blobs below this size are never compressed: the gzip header and the
#: extra syscalls cost more than the bytes they save.
GZIP_MIN_BYTES = 1024

#: Compression level 1: artifact pickles are mostly float arrays, where
#: higher levels burn CPU for single-digit-percent gains on a path
#: whose point is cutting *transfer* time.
GZIP_LEVEL = 1


class ProtocolError(RuntimeError):
    """A malformed frame, oversized header, or error reply."""


class ConnectionClosed(ProtocolError):
    """The peer closed the connection mid-message."""


class AuthError(ProtocolError):
    """The peer rejected our token (or the lack of one).

    Raised by :class:`ClusterClient` whenever an error reply carries
    ``"code": "auth"`` — *regardless* of ``check=False``, because an
    authentication mismatch is a deployment error no retry loop can
    recover from: callers must surface it loudly, not poll through it.
    """


def parse_address(address: Any, default_port: int = DEFAULT_PORT) -> Tuple[str, int]:
    """Normalise ``"host:port"`` / ``"host"`` / ``(host, port)`` forms.

    IPv6 literals use the standard bracket syntax — ``[::1]:8752`` or
    bare ``[::1]`` — and a bare multi-colon string is treated as an
    IPv6 host with the default port (never split at its last colon).
    """
    if isinstance(address, tuple):
        host, port = address
        return str(host), int(port)
    text = str(address).strip()
    if text.startswith("["):
        host, bracket, rest = text[1:].partition("]")
        if not bracket or (rest and not rest.startswith(":")):
            raise ValueError(f"malformed bracketed address {text!r}")
        return host, int(rest[1:]) if rest else default_port
    if text.count(":") > 1:
        return text, default_port  # bare IPv6 literal, no port
    if ":" in text:
        host, _, port = text.partition(":")
        return host or "127.0.0.1", int(port)
    return text or "127.0.0.1", default_port


def format_address(address: Tuple[str, int]) -> str:
    host, port = address
    if ":" in host:
        return f"[{host}]:{port}"  # IPv6: round-trips through parse_address
    return f"{host}:{port}"


# ----------------------------------------------------------------------
# Blob encodings.


def encode_blob(
    blob: bytes,
    accept: Sequence[str],
    min_bytes: int = GZIP_MIN_BYTES,
) -> Tuple[bytes, Optional[str]]:
    """Compress ``blob`` for the wire iff the peer accepts it *and* it pays.

    Returns ``(wire_blob, encoding)`` where ``encoding`` is ``None``
    (send raw) or ``"gzip"``.  Incompressible payloads (already-packed
    arrays) are sent raw even when gzip is accepted — the receiver never
    sees an encoding that grew the payload.
    """
    if "gzip" not in accept or len(blob) < min_bytes:
        return blob, None
    encoded = gzip.compress(blob, compresslevel=GZIP_LEVEL)
    if len(encoded) >= len(blob):
        return blob, None
    return encoded, "gzip"


# ----------------------------------------------------------------------
# Framing.


def build_frame(
    payload: Dict[str, Any],
    blob: Optional[bytes] = None,
    encoding: Optional[str] = None,
) -> Tuple[bytes, Optional[bytes]]:
    """Serialise one message into ``(header_line, blob)``.

    The pure half of :func:`send_message`, shared with the asyncio
    transport (:mod:`repro.cluster.service`): normalises the
    ``blob_bytes``/``blob_encoding`` keys and enforces the header size
    limit, leaving the actual writing to the caller.
    """
    payload = dict(payload)
    if blob is not None:
        payload["blob_bytes"] = len(blob)
        if encoding is not None:
            payload["blob_encoding"] = encoding
        else:
            payload.pop("blob_encoding", None)
    else:
        payload.pop("blob_bytes", None)
        payload.pop("blob_encoding", None)
    line = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
    if len(line) > MAX_HEADER_BYTES:
        raise ProtocolError(f"header of {len(line)} bytes exceeds protocol limit")
    return line, blob


def parse_header(line: bytes) -> Dict[str, Any]:
    """Decode one header line into its payload dict (no blob handling)."""
    if len(line) > MAX_HEADER_BYTES:
        raise ProtocolError("header line exceeds protocol limit")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"invalid header line: {error}") from error
    if not isinstance(payload, dict):
        raise ProtocolError(f"header must be a JSON object, got {type(payload)}")
    return payload


def decode_wire_blob(payload: Dict[str, Any], blob: bytes) -> bytes:
    """Undo the announced ``blob_encoding`` (popped from ``payload``).

    The pure half of :func:`recv_message`'s decode step, shared with the
    asyncio transport: surfaces the wire size as
    ``payload["blob_wire_bytes"]`` and raises on unknown encodings.
    """
    encoding = payload.pop("blob_encoding", None)
    if encoding is None:
        return blob
    if encoding != "gzip":
        raise ProtocolError(f"unknown blob encoding {encoding!r}")
    payload["blob_wire_bytes"] = len(blob)
    try:
        return gzip.decompress(blob)
    except (OSError, EOFError) as error:
        raise ProtocolError(f"corrupt gzip blob: {error}") from error


def send_message(
    wfile: BinaryIO,
    payload: Dict[str, Any],
    blob: Optional[bytes] = None,
    encoding: Optional[str] = None,
) -> None:
    """Write one header line (and the blob it announces, if any).

    ``encoding`` names how ``blob`` was encoded for the wire (today only
    ``"gzip"``, from :func:`encode_blob`); the receiver's
    :func:`recv_message` decodes transparently.  Only pass an encoding
    the peer advertised — see :data:`PROTOCOL_CAPS`.
    """
    line, blob = build_frame(payload, blob, encoding)
    wfile.write(line)
    if blob is not None:
        wfile.write(blob)
    wfile.flush()


def recv_message(rfile: BinaryIO) -> Tuple[Dict[str, Any], Optional[bytes]]:
    """Read one header line and its announced blob (if any).

    A ``blob_encoding`` announced by the sender is decoded here, so
    callers always receive the *raw* blob bytes; the on-the-wire size is
    surfaced as ``payload["blob_wire_bytes"]`` for transfer accounting.
    An unknown encoding is a protocol error (the capability handshake
    exists precisely so this never happens between in-tree peers).
    """
    line = rfile.readline(MAX_HEADER_BYTES + 1)
    if not line:
        raise ConnectionClosed("peer closed the connection before a header")
    payload = parse_header(line)
    blob: Optional[bytes] = None
    size = payload.pop("blob_bytes", None)
    if size is not None:
        size = int(size)
        if size < 0:
            raise ProtocolError(f"negative blob size {size}")
        chunks = []
        remaining = size
        while remaining:
            chunk = rfile.read(remaining)
            if not chunk:
                raise ConnectionClosed(
                    f"peer closed mid-blob ({size - remaining}/{size} bytes)"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        blob = decode_wire_blob(payload, b"".join(chunks))
    return payload, blob


# ----------------------------------------------------------------------
# Client.


class ClusterClient:
    """Issues single request/response exchanges against a coordinator.

    ``token`` — the shared cluster secret — is stamped onto every
    outgoing payload when set.  A coordinator without auth ignores the
    unknown key; a coordinator *with* auth rejects token-less requests
    with ``"code": "auth"``, which this client raises as
    :class:`AuthError` so mixed fleets fail loud, not silent (the same
    degradation contract as the gzip capability handshake).
    """

    def __init__(self, address: Any, timeout: float = 30.0, token: Optional[str] = None):
        self.address = parse_address(address)
        self.timeout = timeout
        self.token = token

    def request(
        self,
        payload: Dict[str, Any],
        blob: Optional[bytes] = None,
        check: bool = True,
        encoding: Optional[str] = None,
    ) -> Tuple[Dict[str, Any], Optional[bytes]]:
        """One round trip; raises :class:`ProtocolError` on error replies.

        With ``check=False`` error replies (``{"ok": false, "error":
        ...}``) are returned to the caller instead of raised — except
        auth rejections, which raise :class:`AuthError` unconditionally.
        ``encoding`` passes through to :func:`send_message` for blobs
        already encoded with :func:`encode_blob`.
        """
        if self.token is not None:
            payload = dict(payload)
            payload.setdefault("token", self.token)
        with socket.create_connection(self.address, timeout=self.timeout) as sock:
            with sock.makefile("rb") as rfile, sock.makefile("wb") as wfile:
                send_message(wfile, payload, blob, encoding=encoding)
                reply, reply_blob = recv_message(rfile)
        if reply.get("error"):
            if reply.get("code") == "auth":
                raise AuthError(str(reply["error"]))
            if check:
                raise ProtocolError(str(reply["error"]))
        return reply, reply_blob

    def status(self) -> Dict[str, Any]:
        """Job-state counts plus worker last-seen ages, for monitoring.

        The reply mirrors the coordinator's ``status`` op: one count per
        job state (``pending``/``leased``/``done``/``failed``), the
        sweep ``failure`` string (``None`` while healthy), and a
        ``workers`` map of name → seconds since last contact.
        """
        reply, _ = self.request({"op": "status"})
        return reply

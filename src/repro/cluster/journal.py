"""Append-only coordinator journal: sweep job transitions on disk.

A :class:`SweepJournal` is one JSONL file living next to the
coordinator's artifact store.  Every scheduling transition of a
:class:`~repro.cluster.plan.SweepPlan` — lease grants, requeues,
completions, plan failure — is appended as a single JSON line and
flushed before the scheduling call returns, so a coordinator killed at
any instant (SIGKILL included) loses at most the line being written.

On restart, the plan **replays** the journal: every ``done`` event
whose target artifact is still present in the store marks the matching
job done — with the original worker attribution and placement stats —
so an interrupted sweep resumes without re-leasing (or re-executing)
a single journaled-done fingerprint.  A ``done`` event whose artifact
has since vanished (pruned cache) is ignored and the job simply runs
again: the store, not the journal, is the source of truth for bytes.

Two guards keep replay honest:

- each plan construction appends a ``plan`` header carrying a
  ``plan_id`` fingerprint of the full (config × stage) digest matrix;
  replaying a journal whose headers name a *different* sweep raises
  :class:`JournalMismatch` instead of silently mixing state;
- a truncated tail line (the one a crash interrupted) is tolerated and
  skipped; malformed lines elsewhere are skipped too, never fatal.

The journal is intentionally *not* a write-ahead log: it records
transitions after they happen, and artifacts themselves travel through
the content-addressed store whose publishes are already atomic.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union


class JournalMismatch(ValueError):
    """The journal on disk belongs to a different sweep."""


class SweepJournal:
    """One append-only JSONL transition log, replayable after a crash.

    Parameters
    ----------
    path:
        The journal file.  Parent directories are created as needed.
    resume:
        With ``False`` (the default) an existing non-empty journal is
        refused with a :class:`ValueError` — starting a *new* sweep on
        top of an old journal is almost always an operator mistake
        (pass ``resume=True`` to replay it, or delete the file).
    """

    def __init__(self, path: Union[str, Path], resume: bool = False):
        self.path = Path(path)
        self.resume = bool(resume)
        existing = self.path.exists() and self.path.stat().st_size > 0
        if existing and not self.resume:
            raise ValueError(
                f"journal {self.path} already exists; resume the interrupted "
                "sweep (resume=True / --resume) or delete the file to start "
                "fresh"
            )
        self._events: List[Dict[str, Any]] = self._load() if existing else []
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._handle = open(self.path, "a", encoding="utf-8")
        if existing and not self._ends_with_newline():
            # The previous life crashed mid-write, leaving a torn tail
            # with no terminator.  Appending onto it would glue the
            # next event to the partial line, corrupting BOTH for every
            # later replay — seal the tear first.
            self._handle.write("\n")
            self._handle.flush()

    def _ends_with_newline(self) -> bool:
        with open(self.path, "rb") as handle:
            handle.seek(-1, os.SEEK_END)
            return handle.read(1) == b"\n"

    # ------------------------------------------------------------------
    def _load(self) -> List[Dict[str, Any]]:
        events: List[Dict[str, Any]] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    # The line a crash truncated mid-write (or stray
                    # corruption): skip — every complete transition is
                    # on its own line, so nothing else is affected.
                    continue
                if isinstance(event, dict):
                    events.append(event)
        return events

    def replay(self) -> List[Dict[str, Any]]:
        """The events read from disk at open time (oldest first)."""
        return list(self._events)

    def done_events(self, plan_id: Optional[str] = None) -> Dict[tuple, Dict[str, Any]]:
        """``(stage, digest) -> last done event``, verifying plan headers.

        With ``plan_id`` given, any ``plan`` header naming a different
        sweep raises :class:`JournalMismatch` — replaying another
        grid's journal must fail loudly, not half-apply.
        """
        done: Dict[tuple, Dict[str, Any]] = {}
        for event in self._events:
            kind = event.get("event")
            if kind == "plan" and plan_id is not None:
                recorded = event.get("plan_id")
                if recorded is not None and recorded != plan_id:
                    raise JournalMismatch(
                        f"journal {self.path} was written by a different sweep "
                        f"(plan_id {recorded[:16]}… != {plan_id[:16]}…); "
                        "point --journal elsewhere or delete it"
                    )
            elif kind == "done":
                stage, digest = event.get("stage"), event.get("digest")
                if stage and digest:
                    done[(str(stage), str(digest))] = event
        return done

    # ------------------------------------------------------------------
    def append(self, event: Dict[str, Any]) -> None:
        """Write one transition line and flush it to the OS.

        A flush is enough for process-kill durability (the page cache
        outlives the process); fsync-per-event would only add OS-crash
        coverage at a latency cost the scheduler lock would feel.
        """
        event = dict(event)
        event.setdefault("t", round(time.time(), 3))
        line = json.dumps(event, sort_keys=True, default=str)
        with self._lock:
            if self._handle.closed:  # pragma: no cover - post-close race
                return
            self._handle.write(line + "\n")
            self._handle.flush()
        self._events.append(event)

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["JournalMismatch", "SweepJournal"]

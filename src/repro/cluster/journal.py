"""Append-only coordinator journal: sweep job transitions on disk.

A :class:`SweepJournal` is one JSONL file living next to the
coordinator's artifact store.  Every scheduling transition of a
:class:`~repro.cluster.plan.SweepPlan` — lease grants, requeues,
completions, plan failure — is appended as a single JSON line and
flushed before the scheduling call returns, so a coordinator killed at
any instant (SIGKILL included) loses at most the line being written.

On restart, the plan **replays** the journal: every ``done`` event
whose target artifact is still present in the store marks the matching
job done — with the original worker attribution and placement stats —
so an interrupted sweep resumes without re-leasing (or re-executing)
a single journaled-done fingerprint.  A ``done`` event whose artifact
has since vanished (pruned cache) is ignored and the job simply runs
again: the store, not the journal, is the source of truth for bytes.

Two guards keep replay honest:

- each plan construction appends a ``plan`` header carrying a
  ``plan_id`` fingerprint of the full (config × stage) digest matrix;
  replaying a journal whose headers name a *different* sweep raises
  :class:`JournalMismatch` instead of silently mixing state;
- a truncated tail line (the one a crash interrupted) is tolerated and
  skipped; malformed lines elsewhere are skipped too, never fatal.

**Compaction** keeps the file bounded: :meth:`SweepJournal.compact`
folds the lease/requeue chatter away, rewriting the journal as just
the latest plan header plus one ``snapshot`` event that carries the
entire done map (stage, digest, worker attribution, stats).  Replay of
a compacted journal reaches the identical plan state — ``done_events``
reads snapshots and plain ``done`` lines interchangeably — but its
size and replay cost are O(done jobs), not O(total transitions), which
is what makes million-job sweeps resumable in practice.  Compaction
runs offline (``repro cluster journal compact``) or automatically
every ``compact_every`` appended events, and the rewrite is atomic
(temp file + ``os.replace``), so a crash mid-compaction leaves the
previous journal intact.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union


class JournalMismatch(ValueError):
    """The journal on disk belongs to a different sweep."""


class SweepJournal:
    """One append-only JSONL transition log, replayable after a crash.

    Parameters
    ----------
    path:
        The journal file.  Parent directories are created as needed.
    resume:
        With ``False`` (the default) an existing non-empty journal is
        refused with a :class:`ValueError` — starting a *new* sweep on
        top of an old journal is almost always an operator mistake
        (pass ``resume=True`` to replay it, or delete the file).
    compact_every:
        Auto-compact after this many appended events (``None`` — the
        default — never compacts automatically).  Each compaction
        resets the counter, so the on-disk file stays within
        ``compact_every`` lines of its snapshot-only minimum no matter
        how long the sweep runs.
    """

    def __init__(
        self,
        path: Union[str, Path],
        resume: bool = False,
        compact_every: Optional[int] = None,
    ):
        if compact_every is not None and int(compact_every) < 1:
            raise ValueError(f"compact_every must be >= 1, got {compact_every}")
        self.path = Path(path)
        self.resume = bool(resume)
        self.compact_every = None if compact_every is None else int(compact_every)
        existing = self.path.exists() and self.path.stat().st_size > 0
        if existing and not self.resume:
            raise ValueError(
                f"journal {self.path} already exists; resume the interrupted "
                "sweep (resume=True / --resume) or delete the file to start "
                "fresh"
            )
        self._events: List[Dict[str, Any]] = self._load() if existing else []
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._appended_since_compact = 0
        self._handle = open(self.path, "a", encoding="utf-8")
        if existing and not self._ends_with_newline():
            # The previous life crashed mid-write, leaving a torn tail
            # with no terminator.  Appending onto it would glue the
            # next event to the partial line, corrupting BOTH for every
            # later replay — seal the tear first.
            self._handle.write("\n")
            self._handle.flush()

    def _ends_with_newline(self) -> bool:
        with open(self.path, "rb") as handle:
            handle.seek(-1, os.SEEK_END)
            return handle.read(1) == b"\n"

    # ------------------------------------------------------------------
    def _load(self) -> List[Dict[str, Any]]:
        events: List[Dict[str, Any]] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    # The line a crash truncated mid-write (or stray
                    # corruption): skip — every complete transition is
                    # on its own line, so nothing else is affected.
                    continue
                if isinstance(event, dict):
                    events.append(event)
        return events

    def replay(self) -> List[Dict[str, Any]]:
        """The events read from disk at open time (oldest first)."""
        return list(self._events)

    def lag(self) -> int:
        """Events appended since the last snapshot (all of them if none).

        This is exactly the chatter the next compaction would fold away:
        a journal that was never compacted lags by its full length.  The
        coordinator surfaces it per plan in ``cluster status`` so an
        operator can see ``--compact-every`` falling behind long before
        the file size on disk does.
        """
        with self._lock:
            return self._lag_locked()

    def _lag_locked(self) -> int:
        for index in range(len(self._events) - 1, -1, -1):
            if self._events[index].get("event") == "snapshot":
                return len(self._events) - index - 1
        return len(self._events)

    def status(self) -> Dict[str, Any]:
        """Operator view: path, event count, lag, compaction policy."""
        with self._lock:
            return {
                "path": str(self.path),
                "events": len(self._events),
                "lag": self._lag_locked(),
                "compact_every": self.compact_every,
            }

    def done_events(self, plan_id: Optional[str] = None) -> Dict[tuple, Dict[str, Any]]:
        """``(stage, digest) -> last done event``, verifying plan headers.

        With ``plan_id`` given, any ``plan`` header naming a different
        sweep raises :class:`JournalMismatch` — replaying another
        grid's journal must fail loudly, not half-apply.
        """
        done: Dict[tuple, Dict[str, Any]] = {}
        for event in self._events:
            kind = event.get("event")
            if kind in ("plan", "snapshot") and plan_id is not None:
                recorded = event.get("plan_id")
                if recorded is not None and recorded != plan_id:
                    raise JournalMismatch(
                        f"journal {self.path} was written by a different sweep "
                        f"(plan_id {recorded[:16]}… != {plan_id[:16]}…); "
                        "point --journal elsewhere or delete it"
                    )
            if kind == "done":
                stage, digest = event.get("stage"), event.get("digest")
                if stage and digest:
                    done[(str(stage), str(digest))] = event
            elif kind == "snapshot":
                # A folded done map: each entry replays exactly like
                # the original done line it summarises.
                for entry in event.get("done", []):
                    stage, digest = entry.get("stage"), entry.get("digest")
                    if stage and digest:
                        done[(str(stage), str(digest))] = entry
        return done

    # ------------------------------------------------------------------
    def append(self, event: Dict[str, Any]) -> None:
        """Write one transition line and flush it to the OS.

        A flush is enough for process-kill durability (the page cache
        outlives the process); fsync-per-event would only add OS-crash
        coverage at a latency cost the scheduler lock would feel.
        """
        event = dict(event)
        event.setdefault("t", round(time.time(), 3))
        line = json.dumps(event, sort_keys=True, default=str)
        with self._lock:
            if self._handle.closed:  # pragma: no cover - post-close race
                return
            self._handle.write(line + "\n")
            self._handle.flush()
            self._events.append(event)
            self._appended_since_compact += 1
            if (
                self.compact_every is not None
                and self._appended_since_compact >= self.compact_every
            ):
                self._compact_locked()

    # ------------------------------------------------------------------
    def compact(self) -> Dict[str, int]:
        """Fold the journal down to plan header + one done snapshot.

        Lease grants, requeues and heartbeat chatter are history that
        replay never reads — only the done map matters for resume.
        Returns ``{"events_before", "events_after", "done"}``.
        """
        with self._lock:
            if self._handle.closed:
                raise ValueError(f"journal {self.path} is closed")
            return self._compact_locked()

    def _compact_locked(self) -> Dict[str, int]:
        before = len(self._events)
        header: Optional[Dict[str, Any]] = None
        failed: Optional[Dict[str, Any]] = None
        done: Dict[tuple, Dict[str, Any]] = {}
        for event in self._events:
            kind = event.get("event")
            if kind == "plan":
                header = event
            elif kind == "plan-failed":
                failed = event
            elif kind == "done":
                stage, digest = event.get("stage"), event.get("digest")
                if stage and digest:
                    done[(str(stage), str(digest))] = {
                        key: event[key]
                        for key in ("job", "stage", "digest", "worker", "stats")
                        if key in event
                    }
            elif kind == "snapshot":
                for entry in event.get("done", []):
                    stage, digest = entry.get("stage"), entry.get("digest")
                    if stage and digest:
                        done[(str(stage), str(digest))] = entry
        snapshot: Dict[str, Any] = {
            "event": "snapshot",
            "t": round(time.time(), 3),
            "folded": before,
            "done": [done[key] for key in sorted(done)],
        }
        if header is not None and header.get("plan_id") is not None:
            snapshot["plan_id"] = header["plan_id"]
        compacted = [e for e in (header, snapshot, failed) if e is not None]
        # Atomic rewrite: a crash here leaves either the old journal or
        # the new one, never a half-written file (the .tmp is ignored
        # by every reader).
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            for event in compacted:
                handle.write(json.dumps(event, sort_keys=True, default=str) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._handle.close()
        os.replace(tmp, self.path)
        self._handle = open(self.path, "a", encoding="utf-8")
        self._events = list(compacted)
        self._appended_since_compact = 0
        return {
            "events_before": before,
            "events_after": len(compacted),
            "done": len(done),
        }

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["JournalMismatch", "SweepJournal"]

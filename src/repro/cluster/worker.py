"""The worker agent: lease → pull → run → push → complete, forever.

A :class:`WorkerAgent` is one long-running loop against a coordinator
address.  Each granted job names a config (in wire form) and a chain
depth; the worker

1. pulls whichever upstream artifacts its local store is missing
   (:class:`~repro.cluster.sync.ArtifactSync`),
2. runs the chain prefix through the ordinary
   :class:`~repro.pipeline.stages.ExperimentPipeline` against its local
   :class:`~repro.pipeline.store.ArtifactStore` — cluster execution and
   single-host execution are the same code path,
3. pushes every chain artifact the coordinator is missing, and
4. reports completion with its timings (idempotent: a worker whose
   lease expired mid-run still completes harmlessly).

A background thread heartbeats the lease while the job runs.  Job
exceptions are reported with ``fail`` (the coordinator requeues the job
elsewhere); connection errors are retried until ``max_idle_s`` of
continuous unreachability, after which the agent exits — which is how
workers outlive a coordinator restart but don't linger forever after a
sweep ends.

**Peer serving.**  Unless disabled, the agent also binds a lightweight
artifact server (:class:`_PeerServer`, same JSON line protocol) on an
ephemeral port and advertises that port in ``hello``.  Other workers
then pull this worker's artifacts directly (``peer_get``) instead of
routing every byte through the coordinator — see
:class:`~repro.cluster.sync.ArtifactSync` for the pull policy and
``docs/cluster.md`` for the fabric topology.  The server only ever
*reads* the local store, refuses keys it no longer holds (the puller
falls back to the hub), and dies with the agent.
"""

from __future__ import annotations

import os
import pickle
import socket
import socketserver
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.cluster.protocol import (
    AuthError,
    ClusterClient,
    ProtocolError,
    encode_blob,
    recv_message,
    send_message,
)
from repro.cluster.sync import ArtifactSync
from repro.core.config import SparkXDConfig
from repro.pipeline.stages import ExperimentPipeline, default_stage_classes
from repro.pipeline.store import MISS, ArtifactStore
from repro.telemetry import (
    adopt_context,
    get_logger,
    get_metrics,
    span,
    telemetry_snapshot,
)

LOG = get_logger(__name__)


def default_worker_name() -> str:
    """``host-pid-nonce``: unique per agent, stable for its lifetime."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


@dataclass
class WorkerStats:
    """What one agent did over its lifetime."""

    jobs_done: int = 0
    jobs_failed: int = 0
    #: Stable slot index the coordinator assigned on ``hello`` (None
    #: until registration succeeds; registration is best-effort).
    slot: Optional[int] = None
    artifacts_pulled: int = 0
    artifacts_pushed: int = 0
    bytes_pulled: int = 0
    bytes_pushed: int = 0
    #: Raw pulled bytes split by who served them (peer fabric vs hub),
    #: and the on-the-wire sizes after optional gzip.
    bytes_pulled_peer: int = 0
    bytes_pulled_hub: int = 0
    wire_bytes_pulled: int = 0
    wire_bytes_pushed: int = 0
    #: Pulls that had peer candidates but fell back to the hub, and
    #: hub round trips retried after transient transport errors.
    peer_fallbacks: int = 0
    sync_retries: int = 0
    #: What this worker's own peer server handed out.
    peer_served: int = 0
    peer_served_bytes: int = 0
    sync_s: float = 0.0
    exec_s: float = 0.0
    errors: list = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "slot": self.slot,
            "jobs_done": self.jobs_done,
            "jobs_failed": self.jobs_failed,
            "artifacts_pulled": self.artifacts_pulled,
            "artifacts_pushed": self.artifacts_pushed,
            "bytes_pulled": self.bytes_pulled,
            "bytes_pushed": self.bytes_pushed,
            "bytes_pulled_peer": self.bytes_pulled_peer,
            "bytes_pulled_hub": self.bytes_pulled_hub,
            "wire_bytes_pulled": self.wire_bytes_pulled,
            "wire_bytes_pushed": self.wire_bytes_pushed,
            "peer_fallbacks": self.peer_fallbacks,
            "sync_retries": self.sync_retries,
            "peer_served": self.peer_served,
            "peer_served_bytes": self.peer_served_bytes,
            "sync_s": self.sync_s,
            "exec_s": self.exec_s,
            "errors": list(self.errors),
        }


class _LeaseHeartbeat:
    """Renews one lease from a daemon thread while a job runs."""

    def __init__(
        self,
        client: ClusterClient,
        worker: str,
        job_id: str,
        interval: float,
        sweep_id: Optional[str] = None,
    ):
        self._client = client
        self._worker = worker
        self._job_id = job_id
        self._sweep_id = sweep_id
        self._interval = max(0.05, interval)
        self._stop = threading.Event()
        self.lease_lost = False
        self._thread = threading.Thread(
            target=self._run, name=f"heartbeat-{job_id}", daemon=True
        )

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            request = {
                "op": "heartbeat",
                "worker": self._worker,
                "job_id": self._job_id,
                # Periodic beats are the natural piggyback for
                # the cumulative metrics snapshot: the
                # coordinator's fleet view stays fresh while a
                # long job runs, at zero extra round trips.
                "telemetry": telemetry_snapshot(),
            }
            if self._sweep_id is not None:
                request["sweep_id"] = self._sweep_id
            try:
                reply, _ = self._client.request(request)
                if not reply.get("ok", False):
                    # Lease revoked (expiry raced us).  Keep computing:
                    # completion is idempotent and content-addressed, so
                    # finishing is still useful — but remember it.
                    self.lease_lost = True
            except AuthError:
                # The main loop will hit the same rejection on its next
                # request and exit loudly; beating again is pointless.
                self.lease_lost = True
                return
            except (OSError, ProtocolError):
                pass  # transient; the next beat retries

    def __enter__(self) -> "_LeaseHeartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)


class _PeerServer:
    """Serve this worker's local artifacts to peers over TCP.

    The read-only sibling of the coordinator's artifact side — same
    line protocol, two ops:

    ``peer_get``
        download one artifact blob by ``(stage, digest)``; replies
        ``{"found": false}`` (never an error) for keys this worker does
        not hold, so a stale routing hint costs the puller one cheap
        round trip before its hub fallback.
    ``peer_has``
        filter a list of ``[stage, digest]`` keys to those held.

    Pickling happens per request under no lock (the store is
    thread-safe and content-addressed blobs are immutable), so serving
    never blocks the worker's own job execution.
    """

    def __init__(self, store: ArtifactStore, host: str = "0.0.0.0", port: int = 0):
        self.store = store
        self._stats_lock = threading.Lock()
        self._served = 0
        self._served_bytes = 0
        self._served_wire_bytes = 0

        peer_server = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:  # pragma: no cover - thin shim
                peer_server._handle(self)

        class Server(socketserver.ThreadingTCPServer):
            daemon_threads = True
            allow_reuse_address = True

        self._server = Server((host, port), Handler)
        self.port: int = self._server.server_address[1]
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "_PeerServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name=f"repro-peer-server-{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def transfer_stats(self) -> Dict[str, int]:
        with self._stats_lock:
            return {
                "served": self._served,
                "served_bytes": self._served_bytes,
                "served_wire_bytes": self._served_wire_bytes,
            }

    # ------------------------------------------------------------------
    def _handle(self, request: socketserver.StreamRequestHandler) -> None:
        try:
            payload, _ = recv_message(request.rfile)
        except Exception:
            return  # half-open connection; nothing to answer
        try:
            reply, blob, encoding = self._dispatch(payload)
        except Exception as error:  # surface, don't kill the thread
            reply, blob, encoding = (
                {"error": f"{type(error).__name__}: {error}"},
                None,
                None,
            )
        try:
            send_message(request.wfile, reply, blob, encoding=encoding)
        except Exception:
            pass  # puller vanished; it will fall back to the hub

    def _dispatch(
        self, payload: Dict[str, Any]
    ) -> Tuple[Dict[str, Any], Optional[bytes], Optional[str]]:
        op = payload.get("op")
        if op == "peer_get":
            stage = str(payload.get("stage"))
            digest = str(payload.get("digest"))
            artifact = self.store.get(stage, digest)
            if artifact is MISS:
                # Refusal, not error: evicted or never held here.
                return {"found": False}, None, None
            blob = pickle.dumps(artifact, protocol=pickle.HIGHEST_PROTOCOL)
            wire_blob, encoding = encode_blob(
                blob, [str(c) for c in payload.get("accept") or ()]
            )
            with self._stats_lock:
                self._served += 1
                self._served_bytes += len(blob)
                self._served_wire_bytes += len(wire_blob)
            return {"found": True}, wire_blob, encoding
        if op == "peer_has":
            keys = [(str(s), str(d)) for s, d in payload.get("keys", [])]
            present = [list(key) for key in keys if key in self.store]
            return {"present": present}, None, None
        return {"error": f"unknown op {op!r}"}, None, None


class WorkerAgent:
    """One cluster worker: leases jobs from a coordinator until told to stop.

    Parameters
    ----------
    address:
        Coordinator ``host:port`` (string or tuple).
    name:
        Stable worker identity; defaults to ``host-pid-nonce``.
    store:
        Local artifact store (in-memory by default; pass a disk-backed
        store to survive agent restarts without re-pulling).
    max_idle_s:
        Continuous coordinator-unreachable seconds before the agent
        gives up and returns.  Polling ``wait`` replies does not count —
        only connection failures do.
    max_jobs:
        Optional ceiling on completed jobs, after which the agent
        returns (tests and controlled-drain scenarios; ``None`` =
        unlimited).
    peer:
        With ``True`` (default) the agent serves its local artifacts
        to other workers (:class:`_PeerServer`) and pulls peer-first;
        ``False`` reproduces the pure hub topology (no serving socket,
        no ``peer_port`` in hello, every byte via the coordinator).
    peer_port:
        Fixed port for the peer server (0 = ephemeral, the default).
    token:
        Shared cluster secret; stamped onto every request.  A
        token-requiring coordinator rejects tokenless workers with an
        :class:`~repro.cluster.protocol.AuthError`, on which this agent
        exits immediately and loudly (recorded in ``stats.errors``) —
        an auth mismatch is a deployment error, not a transient.
    """

    def __init__(
        self,
        address: Any,
        name: Optional[str] = None,
        store: Optional[ArtifactStore] = None,
        max_idle_s: float = 30.0,
        retry_s: float = 0.5,
        client_timeout: float = 30.0,
        max_jobs: Optional[int] = None,
        peer: bool = True,
        peer_port: int = 0,
        token: Optional[str] = None,
    ):
        self.client = ClusterClient(address, timeout=client_timeout, token=token)
        self.name = name or default_worker_name()
        self.store = store if store is not None else ArtifactStore()
        self.max_idle_s = float(max_idle_s)
        self.retry_s = float(retry_s)
        self.max_jobs = None if max_jobs is None else int(max_jobs)
        self.peer = bool(peer)
        self.peer_port = int(peer_port)
        self.stats = WorkerStats()
        self._peer_server: Optional[_PeerServer] = None
        #: Wire capabilities the coordinator advertised (hello reply);
        #: gates gzip-encoded uploads in ArtifactSync.
        self._hub_caps: Tuple[str, ...] = ()
        self._said_hello = False
        self._stop = threading.Event()
        #: (stage, digest) keys this agent holds locally — computed or
        #: pulled this session.  Reported on lease requests (only when
        #: changed since the last delivered report — the coordinator
        #: remembers the previous one, so idle wait-polls stay small)
        #: so the affinity scheduler can keep dependency chains on the
        #: worker that already has their artifacts.
        self._holding: set = set()
        self._holding_reported = False

    def stop(self) -> None:
        """Ask the agent loop to exit after the current request."""
        self._stop.set()

    # ------------------------------------------------------------------
    def _register(self) -> None:
        """Send ``hello``: slot, hub capabilities, peer registration.

        Best-effort — a coordinator that is still starting up learns
        our name from the first lease instead, and ``_said_hello``
        stays False so the next reconnect retries (a *restarted*
        coordinator must relearn our peer address).
        """
        request: Dict[str, Any] = {"op": "hello", "worker": self.name}
        if self._peer_server is not None:
            request["peer_port"] = self._peer_server.port
        # Optional field: a coordinator that predates telemetry drops
        # the unknown key; the handshake itself is unchanged.
        request["telemetry"] = telemetry_snapshot()
        try:
            reply, _ = self.client.request(request)
        except AuthError:
            raise  # deployment error: surface through the run loop
        except (OSError, ProtocolError):
            return
        if "slot" in reply:
            self.stats.slot = int(reply["slot"])
        self._hub_caps = tuple(str(c) for c in reply.get("caps", ()))
        self._said_hello = True

    def run_forever(self) -> WorkerStats:
        """Serve jobs until the coordinator says shutdown (or vanishes)."""
        if self.peer and self._peer_server is None:
            self._peer_server = _PeerServer(self.store, port=self.peer_port).start()
        try:
            return self._run_loop()
        finally:
            if self._peer_server is not None:
                served = self._peer_server.transfer_stats()
                self.stats.peer_served = served["served"]
                self.stats.peer_served_bytes = served["served_bytes"]
                self._peer_server.stop()
                self._peer_server = None

    def _run_loop(self) -> WorkerStats:
        try:
            return self._lease_loop()
        except AuthError as error:
            # Loud, immediate exit: a token mismatch never heals by
            # retrying, and silently polling through it would look like
            # a healthy-but-idle worker to the operator.
            message = f"authentication rejected by coordinator: {error}"
            self.stats.errors.append(message)
            get_metrics().counter("worker.auth_rejects").inc()
            LOG.error("worker auth rejected", extra={"worker": self.name})
            return self.stats

    def _lease_loop(self) -> WorkerStats:
        # Register up front so the coordinator assigns the stable slot
        # (and learns our peer address) before any lease, and
        # monitoring sees the worker immediately.
        self._register()
        unreachable_since: Optional[float] = None
        while not self._stop.is_set():
            if self.max_jobs is not None and self.stats.jobs_done >= self.max_jobs:
                break
            if not self._said_hello:
                self._register()
            request: Dict[str, Any] = {"op": "lease", "worker": self.name}
            if self._holding and not self._holding_reported:
                request["holding"] = sorted(list(key) for key in self._holding)
            request["telemetry"] = telemetry_snapshot()
            try:
                reply, _ = self.client.request(request)
            except AuthError:
                raise  # handled (loudly) one frame up
            except (OSError, ProtocolError) as error:
                # The coordinator may be restarting (crash + --resume):
                # its holdings map and peer registry start empty, so
                # re-hello and re-report ours when it comes back.
                self._holding_reported = False
                self._said_hello = False
                now = time.monotonic()
                if unreachable_since is None:
                    unreachable_since = now
                if now - unreachable_since >= self.max_idle_s:
                    self.stats.errors.append(f"coordinator unreachable: {error}")
                    break
                self._stop.wait(self.retry_s)
                continue
            unreachable_since = None
            if "holding" in request:
                self._holding_reported = True  # delivered; resend on change
            if reply.get("shutdown"):
                if reply.get("reason"):
                    self.stats.errors.append(
                        f"coordinator shut the sweep down: {reply['reason']}"
                    )
                break
            job = reply.get("job")
            if job is None:
                self._stop.wait(float(reply.get("wait", self.retry_s)))
                continue
            self._execute(
                job,
                sources=reply.get("sources"),
                trace=reply.get("trace"),
                sweep_id=reply.get("sweep_id"),
            )
        return self.stats

    # ------------------------------------------------------------------
    def _execute(
        self,
        job: Dict[str, Any],
        sources: Optional[Any] = None,
        trace: Optional[Dict[str, str]] = None,
        sweep_id: Optional[str] = None,
    ) -> None:
        job_id = str(job["job_id"])
        depth = int(job["depth"])
        lease_s = float(job.get("lease_s", 30.0))
        config = SparkXDConfig.from_wire(job["config"])
        chain = tuple(cls() for cls in default_stage_classes()[: depth + 1])
        sync = ArtifactSync(
            self.client,
            self.store,
            worker=self.name,
            sources=sources or (),
            peer_sync=self.peer,
            hub_caps=self._hub_caps,
        )
        started = time.perf_counter()
        try:
            # The heartbeat must span the *whole* job — artifact pulls
            # and pushes included: on a slow network a multi-MB sync can
            # outlast the lease, and an unrenewed lease would requeue a
            # job that is making perfectly healthy progress.
            with _LeaseHeartbeat(
                self.client, self.name, job_id, lease_s / 3.0, sweep_id=sweep_id
            ) as heartbeat, adopt_context(trace), span(
                "cluster.job",
                job=str(job.get("display_id", job_id)),
                stage=str(job.get("stage", "")),
                worker=self.name,
                # The tenant dimension: "" in single-sweep mode, the
                # service's sweep_id otherwise, so fleet traces split
                # per tenant (docs/telemetry.md).
                sweep=str(sweep_id or ""),
            ):
                # Upstream artifacts first: everything the chain prefix
                # could restore instead of recompute.  Anything the
                # coordinator is also missing (partial eviction) is
                # simply recomputed here — the pipeline handles it
                # transparently.
                sync.pull_missing(
                    [(stage.name, stage.cache_key(config)) for stage in chain[:-1]]
                )
                pipeline = ExperimentPipeline(config, stages=chain, store=self.store)
                pipeline.run_stages()
                sync.push_missing(
                    [(stage.name, stage.cache_key(config)) for stage in chain]
                )
        except Exception as error:  # report and move on to the next lease
            self.stats.jobs_failed += 1
            get_metrics().counter("worker.jobs_failed").inc()
            message = f"{type(error).__name__}: {error}"
            self.stats.errors.append(f"{job_id}: {message}")
            LOG.warning(
                "job failed",
                extra={"job_id": job_id, "worker": self.name, "reason": message},
            )
            report: Dict[str, Any] = {
                "op": "fail",
                "worker": self.name,
                "job_id": job_id,
                "error": message,
            }
            if sweep_id is not None:
                report["sweep_id"] = sweep_id
            try:
                self.client.request(report)
            except AuthError:
                raise  # handled (loudly) one frame up
            except (OSError, ProtocolError):
                pass  # lease expiry will requeue it anyway
            return
        wall_s = time.perf_counter() - started
        stats = dict(sync.stats_dict())
        stats.update(
            {
                "worker": self.name,
                "exec_s": dict(pipeline.stage_timings),
                "wall_s": wall_s,
                # True when an expiry raced the computation: the
                # coordinator may have re-leased this job elsewhere,
                # making our (still accepted, idempotent) completion a
                # duplicate.
                "lease_lost": heartbeat.lease_lost,
            }
        )
        # Everything in the chain is now local: report it on the next
        # lease so affinity scheduling can route dependants back here.
        before = len(self._holding)
        self._holding.update(
            (stage.name, stage.cache_key(config)) for stage in chain
        )
        if len(self._holding) != before:
            self._holding_reported = False
        self.stats.jobs_done += 1
        get_metrics().counter("worker.jobs_done").inc()
        self.stats.artifacts_pulled += sync.pulled
        self.stats.artifacts_pushed += sync.pushed
        self.stats.bytes_pulled += sync.pulled_bytes
        self.stats.bytes_pushed += sync.pushed_bytes
        self.stats.bytes_pulled_peer += sync.pulled_bytes_peer
        self.stats.bytes_pulled_hub += sync.pulled_bytes_hub
        self.stats.wire_bytes_pulled += sync.pulled_wire_bytes
        self.stats.wire_bytes_pushed += sync.pushed_wire_bytes
        self.stats.peer_fallbacks += sync.peer_fallbacks
        self.stats.sync_retries += sync.retries
        self.stats.sync_s += sync.seconds
        self.stats.exec_s += sum(pipeline.stage_timings.values())
        completion: Dict[str, Any] = {
            "op": "complete",
            "worker": self.name,
            "job_id": job_id,
            "stats": stats,
            "telemetry": telemetry_snapshot(),
        }
        if sweep_id is not None:
            completion["sweep_id"] = sweep_id
        try:
            reply, _ = self.client.request(completion)
        except AuthError:
            raise  # handled (loudly) one frame up
        except (OSError, ProtocolError) as error:
            # The artifacts are pushed; a lost completion only costs a
            # redundant re-lease of an already-satisfiable job.
            self.stats.errors.append(f"{job_id}: completion not delivered: {error}")
            return
        # The coordinator folds the completed chain into its routing
        # table server-side; when its count for us matches what we hold
        # locally there is nothing to re-report on the next lease.  A
        # mismatch (restarted coordinator, partial knowledge) keeps the
        # full re-report scheduled.
        holding = reply.get("holding")
        if holding is not None and int(holding) == len(self._holding):
            self._holding_reported = True

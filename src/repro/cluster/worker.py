"""The worker agent: lease → pull → run → push → complete, forever.

A :class:`WorkerAgent` is one long-running loop against a coordinator
address.  Each granted job names a config (in wire form) and a chain
depth; the worker

1. pulls whichever upstream artifacts its local store is missing
   (:class:`~repro.cluster.sync.ArtifactSync`),
2. runs the chain prefix through the ordinary
   :class:`~repro.pipeline.stages.ExperimentPipeline` against its local
   :class:`~repro.pipeline.store.ArtifactStore` — cluster execution and
   single-host execution are the same code path,
3. pushes every chain artifact the coordinator is missing, and
4. reports completion with its timings (idempotent: a worker whose
   lease expired mid-run still completes harmlessly).

A background thread heartbeats the lease while the job runs.  Job
exceptions are reported with ``fail`` (the coordinator requeues the job
elsewhere); connection errors are retried until ``max_idle_s`` of
continuous unreachability, after which the agent exits — which is how
workers outlive a coordinator restart but don't linger forever after a
sweep ends.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.cluster.protocol import ClusterClient, ProtocolError
from repro.cluster.sync import ArtifactSync
from repro.core.config import SparkXDConfig
from repro.pipeline.stages import ExperimentPipeline, default_stage_classes
from repro.pipeline.store import ArtifactStore


def default_worker_name() -> str:
    """``host-pid-nonce``: unique per agent, stable for its lifetime."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


@dataclass
class WorkerStats:
    """What one agent did over its lifetime."""

    jobs_done: int = 0
    jobs_failed: int = 0
    #: Stable slot index the coordinator assigned on ``hello`` (None
    #: until registration succeeds; registration is best-effort).
    slot: Optional[int] = None
    artifacts_pulled: int = 0
    artifacts_pushed: int = 0
    bytes_pulled: int = 0
    bytes_pushed: int = 0
    sync_s: float = 0.0
    exec_s: float = 0.0
    errors: list = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "slot": self.slot,
            "jobs_done": self.jobs_done,
            "jobs_failed": self.jobs_failed,
            "artifacts_pulled": self.artifacts_pulled,
            "artifacts_pushed": self.artifacts_pushed,
            "bytes_pulled": self.bytes_pulled,
            "bytes_pushed": self.bytes_pushed,
            "sync_s": self.sync_s,
            "exec_s": self.exec_s,
            "errors": list(self.errors),
        }


class _LeaseHeartbeat:
    """Renews one lease from a daemon thread while a job runs."""

    def __init__(self, client: ClusterClient, worker: str, job_id: str, interval: float):
        self._client = client
        self._worker = worker
        self._job_id = job_id
        self._interval = max(0.05, interval)
        self._stop = threading.Event()
        self.lease_lost = False
        self._thread = threading.Thread(
            target=self._run, name=f"heartbeat-{job_id}", daemon=True
        )

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                reply, _ = self._client.request(
                    {"op": "heartbeat", "worker": self._worker, "job_id": self._job_id}
                )
                if not reply.get("ok", False):
                    # Lease revoked (expiry raced us).  Keep computing:
                    # completion is idempotent and content-addressed, so
                    # finishing is still useful — but remember it.
                    self.lease_lost = True
            except (OSError, ProtocolError):
                pass  # transient; the next beat retries

    def __enter__(self) -> "_LeaseHeartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)


class WorkerAgent:
    """One cluster worker: leases jobs from a coordinator until told to stop.

    Parameters
    ----------
    address:
        Coordinator ``host:port`` (string or tuple).
    name:
        Stable worker identity; defaults to ``host-pid-nonce``.
    store:
        Local artifact store (in-memory by default; pass a disk-backed
        store to survive agent restarts without re-pulling).
    max_idle_s:
        Continuous coordinator-unreachable seconds before the agent
        gives up and returns.  Polling ``wait`` replies does not count —
        only connection failures do.
    max_jobs:
        Optional ceiling on completed jobs, after which the agent
        returns (tests and controlled-drain scenarios; ``None`` =
        unlimited).
    """

    def __init__(
        self,
        address: Any,
        name: Optional[str] = None,
        store: Optional[ArtifactStore] = None,
        max_idle_s: float = 30.0,
        retry_s: float = 0.5,
        client_timeout: float = 30.0,
        max_jobs: Optional[int] = None,
    ):
        self.client = ClusterClient(address, timeout=client_timeout)
        self.name = name or default_worker_name()
        self.store = store if store is not None else ArtifactStore()
        self.max_idle_s = float(max_idle_s)
        self.retry_s = float(retry_s)
        self.max_jobs = None if max_jobs is None else int(max_jobs)
        self.stats = WorkerStats()
        self._stop = threading.Event()
        #: (stage, digest) keys this agent holds locally — computed or
        #: pulled this session.  Reported on lease requests (only when
        #: changed since the last delivered report — the coordinator
        #: remembers the previous one, so idle wait-polls stay small)
        #: so the affinity scheduler can keep dependency chains on the
        #: worker that already has their artifacts.
        self._holding: set = set()
        self._holding_reported = False

    def stop(self) -> None:
        """Ask the agent loop to exit after the current request."""
        self._stop.set()

    # ------------------------------------------------------------------
    def run_forever(self) -> WorkerStats:
        """Serve jobs until the coordinator says shutdown (or vanishes)."""
        # Register up front so the coordinator assigns the stable slot
        # before any lease, and monitoring sees the worker immediately.
        # Best-effort: a coordinator that is still starting up learns
        # our name from the first lease instead.
        try:
            reply, _ = self.client.request({"op": "hello", "worker": self.name})
            if "slot" in reply:
                self.stats.slot = int(reply["slot"])
        except (OSError, ProtocolError):
            pass
        unreachable_since: Optional[float] = None
        while not self._stop.is_set():
            if self.max_jobs is not None and self.stats.jobs_done >= self.max_jobs:
                break
            request: Dict[str, Any] = {"op": "lease", "worker": self.name}
            if self._holding and not self._holding_reported:
                request["holding"] = sorted(list(key) for key in self._holding)
            try:
                reply, _ = self.client.request(request)
            except (OSError, ProtocolError) as error:
                # The coordinator may be restarting (crash + --resume):
                # its holdings map starts empty, so re-report ours on
                # the first lease that gets through.
                self._holding_reported = False
                now = time.monotonic()
                if unreachable_since is None:
                    unreachable_since = now
                if now - unreachable_since >= self.max_idle_s:
                    self.stats.errors.append(f"coordinator unreachable: {error}")
                    break
                self._stop.wait(self.retry_s)
                continue
            unreachable_since = None
            if "holding" in request:
                self._holding_reported = True  # delivered; resend on change
            if reply.get("shutdown"):
                if reply.get("reason"):
                    self.stats.errors.append(
                        f"coordinator shut the sweep down: {reply['reason']}"
                    )
                break
            job = reply.get("job")
            if job is None:
                self._stop.wait(float(reply.get("wait", self.retry_s)))
                continue
            self._execute(job)
        return self.stats

    # ------------------------------------------------------------------
    def _execute(self, job: Dict[str, Any]) -> None:
        job_id = str(job["job_id"])
        depth = int(job["depth"])
        lease_s = float(job.get("lease_s", 30.0))
        config = SparkXDConfig.from_wire(job["config"])
        chain = tuple(cls() for cls in default_stage_classes()[: depth + 1])
        sync = ArtifactSync(self.client, self.store)
        started = time.perf_counter()
        try:
            # The heartbeat must span the *whole* job — artifact pulls
            # and pushes included: on a slow network a multi-MB sync can
            # outlast the lease, and an unrenewed lease would requeue a
            # job that is making perfectly healthy progress.
            with _LeaseHeartbeat(
                self.client, self.name, job_id, lease_s / 3.0
            ) as heartbeat:
                # Upstream artifacts first: everything the chain prefix
                # could restore instead of recompute.  Anything the
                # coordinator is also missing (partial eviction) is
                # simply recomputed here — the pipeline handles it
                # transparently.
                sync.pull_missing(
                    [(stage.name, stage.cache_key(config)) for stage in chain[:-1]]
                )
                pipeline = ExperimentPipeline(config, stages=chain, store=self.store)
                pipeline.run_stages()
                sync.push_missing(
                    [(stage.name, stage.cache_key(config)) for stage in chain]
                )
        except Exception as error:  # report and move on to the next lease
            self.stats.jobs_failed += 1
            message = f"{type(error).__name__}: {error}"
            self.stats.errors.append(f"{job_id}: {message}")
            try:
                self.client.request(
                    {
                        "op": "fail",
                        "worker": self.name,
                        "job_id": job_id,
                        "error": message,
                    }
                )
            except (OSError, ProtocolError):
                pass  # lease expiry will requeue it anyway
            return
        wall_s = time.perf_counter() - started
        stats = {
            "worker": self.name,
            "exec_s": dict(pipeline.stage_timings),
            "sync_s": sync.seconds,
            "pulled": sync.pulled,
            "pushed": sync.pushed,
            "pulled_bytes": sync.pulled_bytes,
            "pushed_bytes": sync.pushed_bytes,
            "wall_s": wall_s,
            # True when an expiry raced the computation: the coordinator
            # may have re-leased this job elsewhere, making our (still
            # accepted, idempotent) completion a duplicate.
            "lease_lost": heartbeat.lease_lost,
        }
        # Everything in the chain is now local: report it on the next
        # lease so affinity scheduling can route dependants back here.
        before = len(self._holding)
        self._holding.update(
            (stage.name, stage.cache_key(config)) for stage in chain
        )
        if len(self._holding) != before:
            self._holding_reported = False
        self.stats.jobs_done += 1
        self.stats.artifacts_pulled += sync.pulled
        self.stats.artifacts_pushed += sync.pushed
        self.stats.bytes_pulled += sync.pulled_bytes
        self.stats.bytes_pushed += sync.pushed_bytes
        self.stats.sync_s += sync.seconds
        self.stats.exec_s += sum(pipeline.stage_timings.values())
        try:
            self.client.request(
                {
                    "op": "complete",
                    "worker": self.name,
                    "job_id": job_id,
                    "stats": stats,
                }
            )
        except (OSError, ProtocolError) as error:
            # The artifacts are pushed; a lost completion only costs a
            # redundant re-lease of an already-satisfiable job.
            self.stats.errors.append(f"{job_id}: completion not delivered: {error}")

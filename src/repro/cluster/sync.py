"""Content-addressed artifact sync between a worker and the coordinator.

Artifacts move by ``(stage, fingerprint)`` key, never by job identity:

- **pull** — before running a job, the worker downloads whichever
  upstream artifacts its local store is missing;
- **push** — after running, it uploads every chain artifact the
  coordinator is missing (one ``has`` round trip filters the list, so
  nothing is ever re-sent).

Both directions are idempotent: an upload of an already-present
fingerprint is acknowledged without a write (the store treats losing a
write race as a hit), and a pull that finds the key locally is free.
That makes the layer *resumable by retry* — after any interruption the
worker repeats the same calls and only the missing bytes move.
"""

from __future__ import annotations

import pickle
import time
from typing import Iterable, List, Tuple

from repro.cluster.protocol import ClusterClient
from repro.pipeline.store import MISS, ArtifactStore

Key = Tuple[str, str]  # (stage name, fingerprint)


class ArtifactSync:
    """Pull/push artifacts between ``store`` and a coordinator."""

    def __init__(self, client: ClusterClient, store: ArtifactStore):
        self.client = client
        self.store = store
        #: Cumulative wall-clock seconds spent in sync round trips.
        self.seconds = 0.0
        self.pulled = 0
        self.pushed = 0
        #: Cumulative artifact payload bytes moved in each direction —
        #: the quantity affinity scheduling exists to shrink.
        self.pulled_bytes = 0
        self.pushed_bytes = 0

    # ------------------------------------------------------------------
    def pull(self, stage: str, digest: str) -> bool:
        """Fetch one artifact into the local store; False if absent remotely."""
        started = time.perf_counter()
        try:
            reply, blob = self.client.request(
                {"op": "get", "stage": stage, "digest": digest}
            )
            if not reply.get("found") or blob is None:
                return False
            self.store.put(stage, digest, pickle.loads(blob))
            self.pulled += 1
            self.pulled_bytes += len(blob)
            return True
        finally:
            self.seconds += time.perf_counter() - started

    def push(self, stage: str, digest: str) -> bool:
        """Upload one locally-cached artifact; False if not held locally."""
        started = time.perf_counter()
        try:
            artifact = self.store.get(stage, digest)
            if artifact is MISS:
                return False
            blob = pickle.dumps(artifact, protocol=pickle.HIGHEST_PROTOCOL)
            self.client.request(
                {"op": "put", "stage": stage, "digest": digest}, blob=blob
            )
            self.pushed += 1
            self.pushed_bytes += len(blob)
            return True
        finally:
            self.seconds += time.perf_counter() - started

    # ------------------------------------------------------------------
    def remote_has(self, keys: Iterable[Key]) -> List[Key]:
        """The subset of ``keys`` the coordinator already holds."""
        keys = list(keys)
        if not keys:
            return []
        started = time.perf_counter()
        try:
            reply, _ = self.client.request(
                {"op": "has", "keys": [list(key) for key in keys]}
            )
            return [(str(s), str(d)) for s, d in reply.get("present", [])]
        finally:
            self.seconds += time.perf_counter() - started

    def pull_missing(self, keys: Iterable[Key]) -> int:
        """Pull every key the local store is missing; returns the count."""
        count = 0
        for stage, digest in keys:
            if (stage, digest) in self.store:
                continue
            if self.pull(stage, digest):
                count += 1
        return count

    def push_missing(self, keys: Iterable[Key]) -> int:
        """Push every locally-held key the coordinator is missing."""
        keys = [key for key in keys if key in self.store]
        present = set(self.remote_has(keys))
        count = 0
        for stage, digest in keys:
            if (stage, digest) in present:
                continue
            if self.push(stage, digest):
                count += 1
        return count

"""Content-addressed artifact sync: peer-first pulls, hub fallback.

Artifacts move by ``(stage, fingerprint)`` key, never by job identity:

- **pull** — before running a job, the worker downloads whichever
  upstream artifacts its local store is missing.  With peer sync
  enabled the pull is *peer-first*: the coordinator's routing table
  (lease ``sources`` hints or an explicit ``locate`` round trip) names
  workers already holding the key, and the bytes move worker-to-worker
  over the same line protocol (``peer_get``).  A refused key, a dead
  peer, or a worker with no peers falls back transparently to the
  coordinator ``get`` — the hub is always correct, peers are only
  faster;
- **push** — after running, the worker uploads every chain artifact
  the coordinator is missing (one ``has`` round trip filters the
  list, so nothing is ever re-sent).  Pushes always target the hub:
  the coordinator's store is the durable system of record that
  resume/journal replay validates against.

Both directions are idempotent: an upload of an already-present
fingerprint is acknowledged without a write (the store treats losing a
write race as a hit), and a pull that finds the key locally is free.
That makes the layer *resumable by retry* — and hub round trips are in
fact retried here, with bounded exponential backoff, so a transient
socket error (coordinator restart, SYN drop) never surfaces as a job
failure.  Peer requests are deliberately single-shot: the fallback
path *is* the retry.

Blobs compress on the wire (gzip, :func:`repro.cluster.protocol.
encode_blob`) when the receiver advertised the capability; stats track
raw and wire bytes separately so transfer accounting stays honest.
"""

from __future__ import annotations

import pickle
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cluster.protocol import (
    ClusterClient,
    ConnectionClosed,
    ProtocolError,
    encode_blob,
)
from repro.pipeline.store import MISS, ArtifactStore
from repro.telemetry import get_logger, get_metrics

LOG = get_logger(__name__)

Key = Tuple[str, str]  # (stage name, fingerprint)

#: Hub round trips are retried this many times before the error
#: propagates (peer requests are single-shot — fallback is the retry).
DEFAULT_MAX_ATTEMPTS = 3

#: First retry sleeps about this long; each further attempt doubles it.
DEFAULT_BACKOFF_S = 0.05

#: Peers get a shorter connect/read timeout than the hub: a dead peer
#: should cost one quick failure and a fallback, not a full hub
#: timeout per key.
DEFAULT_PEER_TIMEOUT_S = 10.0


def _backoff_jitter() -> float:
    """A 1.0–1.5× factor from the clock's sub-millisecond noise.

    Derived from ``monotonic_ns`` rather than :mod:`random` — sync
    retries must not touch any RNG stream (seeded experiment code owns
    those; see the ``rng-discipline`` lint rule), and scheduling jitter
    needs no statistical quality, only decorrelation across workers.
    """
    return 1.0 + (time.monotonic_ns() % 1024) / 2048.0


class ArtifactSync:
    """Pull/push artifacts between ``store`` and the cluster fabric.

    Parameters
    ----------
    client:
        The coordinator (hub) client.
    store:
        The local artifact store.
    worker:
        This worker's name — sent with ``locate`` so the coordinator
        excludes the requester from its own answers.
    sources:
        Initial routing hints, ``[[stage, digest, [address, …]], …]``
        (the lease reply's ``sources`` field).
    peer_sync:
        ``False`` disables peer pulls and ``locate`` entirely — every
        byte routes through the hub, bit-for-bit the pre-fabric
        behaviour.
    hub_caps:
        Wire capabilities the coordinator advertised in its ``hello``
        reply; uploads are only gzip-encoded when the hub declared it
        can decode them.
    compress:
        ``False`` additionally stops *advertising* gzip on downloads,
        forcing raw blobs both ways (tests, debugging).
    """

    def __init__(
        self,
        client: ClusterClient,
        store: ArtifactStore,
        *,
        worker: Optional[str] = None,
        sources: Optional[Iterable[Sequence[Any]]] = None,
        peer_sync: bool = True,
        hub_caps: Sequence[str] = (),
        compress: bool = True,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        backoff_s: float = DEFAULT_BACKOFF_S,
        peer_timeout: float = DEFAULT_PEER_TIMEOUT_S,
    ):
        self.client = client
        self.store = store
        self.worker = worker
        self.peer_sync = bool(peer_sync)
        self.hub_caps = tuple(str(c) for c in hub_caps)
        self.compress = bool(compress)
        self.max_attempts = max(1, int(max_attempts))
        self.backoff_s = float(backoff_s)
        self.peer_timeout = float(peer_timeout)
        #: key -> peer addresses believed to hold it (coordinator hints).
        self.sources: Dict[Key, List[str]] = {}
        if sources:
            self.update_sources(sources)
        #: Addresses that failed at the transport level this session —
        #: skipped for every later key so one dead peer costs one
        #: timeout, not one per artifact.
        self._dead_peers: set = set()
        #: Cumulative wall-clock seconds spent in sync round trips.
        self.seconds = 0.0
        self.pulled = 0
        self.pushed = 0
        #: Cumulative artifact payload bytes moved in each direction —
        #: raw (decoded) sizes; the quantity affinity scheduling and
        #: the peer fabric exist to shrink on the hub.
        self.pulled_bytes = 0
        self.pushed_bytes = 0
        #: Actual on-the-wire sizes (differ from the raw counts only
        #: when gzip engaged).
        self.pulled_wire_bytes = 0
        self.pushed_wire_bytes = 0
        #: Raw pulled bytes split by who served them.
        self.pulled_bytes_peer = 0
        self.pulled_bytes_hub = 0
        #: Pulls that had peer candidates but were served by the hub.
        self.peer_fallbacks = 0
        #: Hub round trips that needed a retry after a transport error.
        self.retries = 0

    # ------------------------------------------------------------------
    # Routing table.

    def update_sources(self, triples: Iterable[Sequence[Any]]) -> None:
        """Merge ``[[stage, digest, [address, …]], …]`` routing hints."""
        for stage, digest, addresses in triples:
            self.sources[(str(stage), str(digest))] = [str(a) for a in addresses]

    def locate(self, keys: Iterable[Key]) -> int:
        """Ask the coordinator who holds ``keys``; merge into sources.

        Returns how many of the asked keys gained at least one peer
        address.  A no-op (0) with peer sync disabled.
        """
        keys = list(keys)
        if not keys or not self.peer_sync:
            return 0
        started = time.perf_counter()
        try:
            payload: Dict[str, Any] = {
                "op": "locate",
                "keys": [list(key) for key in keys],
            }
            if self.worker is not None:
                payload["worker"] = self.worker
            reply, _ = self._hub_request(payload)
            triples = reply.get("sources", [])
            self.update_sources(triples)
            return len(triples)
        finally:
            self.seconds += time.perf_counter() - started

    # ------------------------------------------------------------------
    # Transport helpers.

    def _accept(self) -> List[str]:
        return ["gzip"] if self.compress else []

    def _hub_request(
        self,
        payload: Dict[str, Any],
        blob: Optional[bytes] = None,
        encoding: Optional[str] = None,
    ) -> Tuple[Dict[str, Any], Optional[bytes]]:
        """One hub round trip, retried on *transport* errors only.

        Error replies and malformed frames (plain
        :class:`ProtocolError`) are deterministic — retrying them just
        repeats the answer — so only :class:`OSError` and
        :class:`ConnectionClosed` trigger the backoff loop.
        """
        for attempt in range(self.max_attempts):
            try:
                return self.client.request(payload, blob=blob, encoding=encoding)
            except (OSError, ConnectionClosed):
                if attempt + 1 >= self.max_attempts:
                    raise
                self.retries += 1
                get_metrics().counter("sync.retries").inc()
                LOG.warning(
                    "hub round trip retrying after transport error",
                    extra={"sync_op": payload.get("op"), "attempt": attempt + 1},
                )
                time.sleep(self.backoff_s * (2.0 ** attempt) * _backoff_jitter())
        raise AssertionError("unreachable")  # pragma: no cover

    def _peer_get(
        self, address: str, stage: str, digest: str
    ) -> Optional[Tuple[Dict[str, Any], bytes]]:
        """Single-shot ``peer_get``; ``None`` means try the next source.

        A transport-level failure marks the address dead for the rest
        of this sync session; a clean refusal (peer evicted the key)
        does not — the peer is healthy, it just can't serve this one.
        """
        if address in self._dead_peers:
            return None
        peer = ClusterClient(address, timeout=self.peer_timeout)
        try:
            reply, blob = peer.request(
                {
                    "op": "peer_get",
                    "stage": stage,
                    "digest": digest,
                    "accept": self._accept(),
                },
                check=False,
            )
        except (OSError, ProtocolError):
            self._dead_peers.add(address)
            return None
        if reply.get("error") or not reply.get("found") or blob is None:
            return None
        return reply, blob

    # ------------------------------------------------------------------
    def pull(
        self,
        stage: str,
        digest: str,
        sources: Optional[Sequence[str]] = None,
    ) -> bool:
        """Fetch one artifact into the local store; False if absent remotely.

        Tries each peer address (``sources`` argument, else the routing
        table) before the hub.  Every failure mode — dead peer, refusal,
        stale hint — falls through; only "nobody has it, hub included"
        returns False.
        """
        started = time.perf_counter()
        try:
            candidates: Sequence[str] = ()
            if self.peer_sync:
                if sources is not None:
                    candidates = list(sources)
                else:
                    candidates = self.sources.get((stage, digest), ())
            for address in candidates:
                served = self._peer_get(address, stage, digest)
                if served is None:
                    continue
                reply, blob = served
                self.store.put(stage, digest, pickle.loads(blob))
                self.pulled += 1
                self.pulled_bytes += len(blob)
                self.pulled_wire_bytes += int(
                    reply.get("blob_wire_bytes", len(blob))
                )
                self.pulled_bytes_peer += len(blob)
                metrics = get_metrics()
                metrics.counter("sync.pulled").inc()
                metrics.counter("sync.pulled_bytes").inc(len(blob))
                metrics.counter("sync.pulled_bytes_peer").inc(len(blob))
                return True
            if candidates:
                self.peer_fallbacks += 1
                get_metrics().counter("sync.peer_fallbacks").inc()
            payload: Dict[str, Any] = {"op": "get", "stage": stage, "digest": digest}
            if self.compress:
                payload["accept"] = self._accept()
            reply, blob = self._hub_request(payload)
            if not reply.get("found") or blob is None:
                return False
            self.store.put(stage, digest, pickle.loads(blob))
            self.pulled += 1
            self.pulled_bytes += len(blob)
            self.pulled_wire_bytes += int(reply.get("blob_wire_bytes", len(blob)))
            self.pulled_bytes_hub += len(blob)
            metrics = get_metrics()
            metrics.counter("sync.pulled").inc()
            metrics.counter("sync.pulled_bytes").inc(len(blob))
            metrics.counter("sync.pulled_bytes_hub").inc(len(blob))
            return True
        finally:
            self.seconds += time.perf_counter() - started

    def push(self, stage: str, digest: str) -> bool:
        """Upload one locally-cached artifact; False if not held locally."""
        started = time.perf_counter()
        try:
            artifact = self.store.get(stage, digest)
            if artifact is MISS:
                return False
            blob = pickle.dumps(artifact, protocol=pickle.HIGHEST_PROTOCOL)
            # Encode only what the hub declared it can decode; a hub
            # that never said "gzip" gets raw bytes (mixed fleets).
            accept = self.hub_caps if self.compress else ()
            wire_blob, encoding = encode_blob(blob, accept)
            self._hub_request(
                {"op": "put", "stage": stage, "digest": digest},
                blob=wire_blob,
                encoding=encoding,
            )
            self.pushed += 1
            self.pushed_bytes += len(blob)
            self.pushed_wire_bytes += len(wire_blob)
            metrics = get_metrics()
            metrics.counter("sync.pushed").inc()
            metrics.counter("sync.pushed_bytes").inc(len(blob))
            return True
        finally:
            self.seconds += time.perf_counter() - started

    def peer_has(self, address: str, keys: Iterable[Key]) -> List[Key]:
        """Which of ``keys`` the peer at ``address`` currently holds.

        A cheap single-round-trip probe (no blobs move) for validating
        routing hints before bulk pulls and for fabric diagnostics;
        transport errors mark the peer dead exactly like a failed
        ``peer_get``.
        """
        keys = list(keys)
        if not keys or address in self._dead_peers:
            return []
        peer = ClusterClient(address, timeout=self.peer_timeout)
        try:
            reply, _ = peer.request(
                {"op": "peer_has", "keys": [list(key) for key in keys]}
            )
        except (OSError, ProtocolError):
            self._dead_peers.add(address)
            return []
        return [(str(s), str(d)) for s, d in reply.get("present", [])]

    # ------------------------------------------------------------------
    def remote_has(self, keys: Iterable[Key]) -> List[Key]:
        """The subset of ``keys`` the coordinator already holds."""
        keys = list(keys)
        if not keys:
            return []
        started = time.perf_counter()
        try:
            reply, _ = self._hub_request(
                {"op": "has", "keys": [list(key) for key in keys]}
            )
            return [(str(s), str(d)) for s, d in reply.get("present", [])]
        finally:
            self.seconds += time.perf_counter() - started

    def pull_missing(self, keys: Iterable[Key]) -> int:
        """Pull every key the local store is missing; returns the count.

        With peer sync on, keys that have no routing hint yet are
        batch-``locate``\\ d first, so even pulls outside a lease grant
        (resumed workers, eager prefetch) go peer-first.
        """
        missing = [key for key in keys if key not in self.store]
        if not missing:
            return 0
        if self.peer_sync:
            unknown = [key for key in missing if key not in self.sources]
            if unknown:
                self.locate(unknown)
        count = 0
        for stage, digest in missing:
            if self.pull(stage, digest):
                count += 1
        return count

    def push_missing(self, keys: Iterable[Key]) -> int:
        """Push every locally-held key the coordinator is missing."""
        keys = [key for key in keys if key in self.store]
        present = set(self.remote_has(keys))
        count = 0
        for stage, digest in keys:
            if (stage, digest) in present:
                continue
            if self.push(stage, digest):
                count += 1
        return count

    # ------------------------------------------------------------------
    def stats_dict(self) -> Dict[str, Any]:
        """Transfer accounting, for job stats and worker aggregation."""
        return {
            "sync_s": self.seconds,
            "pulled": self.pulled,
            "pushed": self.pushed,
            "pulled_bytes": self.pulled_bytes,
            "pushed_bytes": self.pushed_bytes,
            "pulled_wire_bytes": self.pulled_wire_bytes,
            "pushed_wire_bytes": self.pushed_wire_bytes,
            "pulled_bytes_peer": self.pulled_bytes_peer,
            "pulled_bytes_hub": self.pulled_bytes_hub,
            "peer_fallbacks": self.peer_fallbacks,
            "retries": self.retries,
        }

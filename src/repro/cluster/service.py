"""The always-on experiment service: multi-tenant sweeps on one loop.

:class:`ExperimentService` turns the cluster stack from "run a sweep"
into "serve sweep traffic": one asyncio event loop runs two listeners —

- the **worker plane**: the existing JSON line protocol
  (:mod:`repro.cluster.protocol`), served by an asyncio transport that
  feeds the same :class:`~repro.cluster.coordinator.CoordinatorCore`
  dispatch the blocking coordinator uses.  Workers stay generic: one
  ``lease`` call draws from *any* active sweep and the grant carries a
  ``sweep_id`` the worker echoes on heartbeat/complete/fail;
- the **control plane**: the HTTP/JSON API of
  :mod:`repro.cluster.http_api` (`POST /sweeps`, `GET /sweeps/{id}`,
  `POST /sweeps/{id}/cancel`, `GET /sweeps/{id}/results`,
  `GET /fleet`), through which clients submit and harvest sweeps.

Each tenant sweep owns its :class:`~repro.cluster.plan.SweepPlan` and
(optionally) its own :class:`~repro.cluster.journal.SweepJournal` —
journal files are keyed by ``sweep_id`` under ``journal_dir``, so
compaction and replay are strictly per tenant — while every tenant
shares ONE :class:`~repro.pipeline.store.ArtifactStore` (cross-sweep
fingerprint dedupe comes for free: a stage another tenant already
computed needs no job at all) and ONE
:class:`~repro.cluster.plan.WorkerRegistry` (liveness, affinity
holdings and the peer routing table describe the whole fleet).

Sweep identity is deterministic: ``sweep_id`` fingerprints the config ×
grid, so resubmitting after a service crash reattaches to the same
journal and replays it — the restart story is "resubmit everything,
re-execute nothing".  Scheduling state lives in plans (thread-safe,
lock-based), so request handling runs in the loop's default thread pool
and the event loop itself only ever parses frames and shuttles bytes.

``shutdown_when_idle=True`` reproduces the classic single-shot
lifecycle (workers get ``shutdown`` once every submitted sweep
finished); ``repro cluster sweep`` is exactly that: an in-process
serve → submit → wait → assemble composition.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.cluster.coordinator import CoordinatorCore, SweepEndpoint
from repro.cluster.executor import DistributionTimeout, assemble_point
from repro.cluster.http_api import HttpControlPlane
from repro.cluster.journal import SweepJournal
from repro.cluster.plan import PlanFailed, SweepPlan, WorkerRegistry
from repro.cluster.protocol import (
    MAX_HEADER_BYTES,
    ProtocolError,
    build_frame,
    decode_wire_blob,
    parse_header,
)
from repro.core.config import SparkXDConfig
from repro.pipeline.runner import RunRecord
from repro.pipeline.store import ArtifactStore, fingerprint
from repro.telemetry import current_context, get_logger, get_metrics

LOG = get_logger(__name__)


def sweep_identity(
    base_config: SparkXDConfig, grid: Mapping[str, Sequence[Any]]
) -> str:
    """Deterministic sweep id: fingerprint of the config × grid.

    Stable across processes, restarts, and the JSON round trip of the
    control plane (``canonical_form`` normalises tuples vs. lists), so
    a resubmitted sweep lands on the same journal file and an identical
    concurrent submission reattaches instead of duplicating work.
    """
    return fingerprint(
        {"config": base_config.to_wire(), "grid": dict(grid)}
    )[:12]


@dataclass
class ManagedSweep:
    """One tenant: its plan, its journal, its lifecycle state."""

    sweep_id: str
    plan: SweepPlan
    journal: Optional[SweepJournal] = None
    name: Optional[str] = None
    #: Trace context adopted by lease grants of THIS sweep (the
    #: submitter's active span), so worker job spans join the
    #: submitting client's trace, tenant by tenant.
    trace_context: Optional[Dict[str, str]] = None
    created_at: float = field(default_factory=time.time)
    #: Assembled records, cached after the first ``results`` call —
    #: assembly is deterministic, so one pass serves every poller.
    records: Optional[List[RunRecord]] = None

    @property
    def state(self) -> str:
        return self.endpoint().state

    def endpoint(self) -> SweepEndpoint:
        return SweepEndpoint(
            sweep_id=self.sweep_id,
            plan=self.plan,
            trace_context=self.trace_context,
            name=self.name,
        )


class ExperimentService:
    """Persistent multi-sweep coordinator with an HTTP control plane.

    Parameters
    ----------
    store:
        The one shared artifact store (in-memory by default; pass a
        disk-backed store for real deployments).
    host / port:
        Bind address of the worker line-protocol listener (port 0 =
        ephemeral; read :attr:`worker_address` after :meth:`start`).
    http_host / http_port:
        Bind address of the HTTP control plane (defaults: same host,
        ephemeral port; read :attr:`http_address`).
    token:
        Shared secret enforced on BOTH planes (line ops and HTTP
        bearer); ``None`` disables auth.
    lease_timeout / max_attempts / affinity / peer_sync / poll_s:
        Scheduling semantics, applied to every tenant plan (see
        :class:`~repro.cluster.plan.SweepPlan`).
    journal_dir:
        Directory for per-tenant journals (``sweep-<sweep_id>.jsonl``).
        ``None`` disables journaling unless a submit passes an explicit
        path.
    compact_every:
        Per-tenant auto-compaction threshold (journal events).
    shutdown_when_idle:
        ``True`` restores the classic lifecycle: once every submitted
        sweep is finished, workers are told to shut down.  The default
        ``False`` keeps the fleet polling for future submissions.
    """

    def __init__(
        self,
        store: Optional[ArtifactStore] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        http_host: Optional[str] = None,
        http_port: int = 0,
        *,
        token: Optional[str] = None,
        lease_timeout: float = 30.0,
        max_attempts: int = 3,
        poll_s: Optional[float] = None,
        affinity: bool = True,
        peer_sync: bool = True,
        journal_dir: Optional[Union[str, Path]] = None,
        compact_every: Optional[int] = None,
        shutdown_when_idle: bool = False,
        wire_cache_bytes: int = 64 * 1024 * 1024,
    ):
        self.store = store if store is not None else ArtifactStore()
        self.bind_host = str(host)
        self.bind_port = int(port)
        self.http_host = str(http_host) if http_host is not None else self.bind_host
        self.http_port = int(http_port)
        self.token = token
        self.lease_timeout = float(lease_timeout)
        self.max_attempts = int(max_attempts)
        self.poll_s = (
            float(poll_s)
            if poll_s is not None
            else min(1.0, self.lease_timeout / 4.0)
        )
        self.affinity = bool(affinity)
        self.peer_sync = bool(peer_sync)
        self.journal_dir = Path(journal_dir) if journal_dir is not None else None
        self.compact_every = None if compact_every is None else int(compact_every)
        self.registry = WorkerRegistry(
            liveness_window_s=3.0 * self.lease_timeout
        )
        self._lock = threading.Lock()
        self._sweeps: Dict[str, ManagedSweep] = {}
        self._order: List[str] = []  # submission order = lease priority
        self.core = CoordinatorCore(
            self.store,
            self._endpoints,
            self.registry,
            token=token,
            poll_s=self.poll_s,
            wire_cache_bytes=wire_cache_bytes,
            peer_sync=self.peer_sync,
            persistent=not shutdown_when_idle,
        )
        self.http = HttpControlPlane(self, token=token)
        #: Bound addresses, set by :meth:`start`.
        self.worker_address: Optional[Tuple[str, int]] = None
        self.http_address: Optional[Tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._line_server: Optional[asyncio.AbstractServer] = None
        self._http_server: Optional[asyncio.AbstractServer] = None
        self._expiry_task: Optional["asyncio.Task[None]"] = None

    # ------------------------------------------------------------------
    # Tenant registry.

    def _endpoints(self) -> Tuple[SweepEndpoint, ...]:
        with self._lock:
            return tuple(
                self._sweeps[sweep_id].endpoint() for sweep_id in self._order
            )

    def submit(
        self,
        base_config: SparkXDConfig,
        grid: Mapping[str, Sequence[Any]],
        *,
        name: Optional[str] = None,
        journal_path: Optional[Union[str, Path]] = None,
        resume: Any = "auto",
        compact_every: Optional[int] = None,
        trace_context: Optional[Dict[str, str]] = None,
    ) -> ManagedSweep:
        """Register a sweep; idempotent on the deterministic sweep id.

        ``resume`` — ``"auto"`` (default) replays an existing journal
        file and starts fresh otherwise; ``True``/``False`` force the
        :class:`~repro.cluster.journal.SweepJournal` behaviour.
        ``trace_context`` defaults to the caller's current span, so
        in-process submitters (``cluster sweep``) parent worker job
        spans under their own trace; HTTP submits pass ``None``.
        """
        sweep_id = sweep_identity(base_config, grid)
        with self._lock:
            existing = self._sweeps.get(sweep_id)
            if existing is not None:
                # Reattach: same config × grid is the same sweep.  The
                # done work is shared; the caller polls the same id.
                return existing
            path = Path(journal_path) if journal_path is not None else None
            if path is None and self.journal_dir is not None:
                path = self.journal_dir / f"sweep-{sweep_id}.jsonl"
            journal: Optional[SweepJournal] = None
            if path is not None:
                do_resume = (
                    path.exists() and path.stat().st_size > 0
                    if resume == "auto"
                    else bool(resume)
                )
                journal = SweepJournal(
                    path,
                    resume=do_resume,
                    compact_every=(
                        self.compact_every
                        if compact_every is None
                        else int(compact_every)
                    ),
                )
            try:
                plan = SweepPlan(
                    base_config,
                    grid,
                    self.store,
                    lease_timeout=self.lease_timeout,
                    max_attempts=self.max_attempts,
                    journal=journal,
                    affinity=self.affinity,
                    peer_sync=self.peer_sync,
                    registry=self.registry,
                )
            except Exception:
                if journal is not None:
                    journal.close()
                raise
            managed = ManagedSweep(
                sweep_id=sweep_id,
                plan=plan,
                journal=journal,
                name=name,
                trace_context=(
                    trace_context
                    if trace_context is not None
                    else current_context()
                ),
            )
            self._sweeps[sweep_id] = managed
            self._order.append(sweep_id)
        get_metrics().counter("service.sweeps_submitted").inc()
        LOG.info(
            "sweep submitted",
            extra={
                "sweep_id": sweep_id,
                "name": name,
                "jobs": len(plan.jobs),
                "replayed_done": plan.replayed_done,
                "journal": str(path) if path is not None else None,
            },
        )
        return managed

    def _get(self, sweep_id: str) -> ManagedSweep:
        with self._lock:
            managed = self._sweeps.get(str(sweep_id))
        if managed is None:
            raise KeyError(f"unknown sweep {sweep_id!r}")
        return managed

    def describe(self, sweep_id: str) -> Dict[str, Any]:
        """One tenant's status: state, counts, failure, journal lag."""
        managed = self._get(sweep_id)
        payload: Dict[str, Any] = {
            "sweep_id": managed.sweep_id,
            "name": managed.name,
            "state": managed.state,
            "plan_id": managed.plan.plan_id,
            "grid_points": len(managed.plan.configs),
            "replayed_done": managed.plan.replayed_done,
            "failure": managed.plan.failure,
        }
        payload.update(managed.plan.counts())
        journal = managed.plan.journal_status()
        if journal is not None:
            payload["journal"] = journal
        return payload

    def cancel(self, sweep_id: str) -> Dict[str, Any]:
        """Withdraw a tenant: frees its live leases, grants nothing new."""
        managed = self._get(sweep_id)
        freed = managed.plan.cancel()
        get_metrics().counter("service.sweeps_cancelled").inc()
        LOG.info(
            "sweep cancelled",
            extra={"sweep_id": managed.sweep_id, "leases_freed": freed},
        )
        return {
            "sweep_id": managed.sweep_id,
            "state": managed.state,
            "leases_freed": freed,
        }

    def results(self, sweep_id: str) -> List[RunRecord]:
        """Assemble (once) and return a finished sweep's records.

        Raises :class:`KeyError` for unknown ids,
        :class:`~repro.cluster.plan.PlanFailed` for failed sweeps, and
        :class:`RuntimeError` while the sweep is still running or was
        cancelled — the HTTP layer maps those to 404/409.
        """
        managed = self._get(sweep_id)
        if managed.records is not None:
            return list(managed.records)
        plan = managed.plan
        plan.raise_on_failure()
        if plan.cancelled:
            raise RuntimeError(f"sweep {sweep_id} was cancelled")
        if not plan.done:
            counts = plan.counts()
            raise RuntimeError(
                f"sweep {sweep_id} is not complete (job states: {counts})"
            )
        records = [
            assemble_point(plan, self.store, params, config, keys)
            for params, config, keys in zip(
                plan.param_sets, plan.configs, plan.chain_keys
            )
        ]
        managed.records = records
        return list(records)

    def fleet(self) -> Dict[str, Any]:
        """The whole-service view (same shape as the ``status`` op)."""
        return self.core.status_view()

    def wait(
        self,
        sweep_id: str,
        timeout: Optional[float] = None,
        poll_s: float = 0.05,
    ) -> str:
        """Block until a sweep leaves ``running``; returns final state.

        In-process convenience for the thin ``cluster sweep``
        composition and tests; remote clients poll
        :meth:`~repro.cluster.http_api.ServiceClient.wait` instead.
        Raises :class:`~repro.cluster.plan.PlanFailed` on failure and
        :class:`~repro.cluster.executor.DistributionTimeout` on
        ``timeout``.
        """
        managed = self._get(sweep_id)
        plan = managed.plan
        deadline = (
            None if timeout is None else time.monotonic() + float(timeout)
        )
        while True:
            plan.expire_leases()
            plan.raise_on_failure()
            state = managed.state
            if state in ("done", "cancelled"):
                return state
            if deadline is not None and time.monotonic() > deadline:
                raise DistributionTimeout(
                    f"sweep {sweep_id} incomplete after {timeout}s — are "
                    f"workers connected to {self.worker_address}?",
                    counts=plan.counts(),
                    worker_ages=plan.worker_ages(),
                )
            time.sleep(max(0.01, float(poll_s)))

    # ------------------------------------------------------------------
    # Lifecycle.

    def start(self) -> "ExperimentService":
        """Bind both listeners on a fresh background event loop."""
        if self._loop is not None:
            raise RuntimeError("service already started")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="repro-experiment-service",
            daemon=True,
        )
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(self._start_async(), self._loop)
        future.result(timeout=30.0)
        LOG.info(
            "experiment service listening",
            extra={
                "workers": self.worker_address,
                "control": self.http_address,
                "auth": self.token is not None,
            },
        )
        return self

    async def _start_async(self) -> None:
        self._line_server = await asyncio.start_server(
            self._handle_line,
            host=self.bind_host,
            port=self.bind_port,
            limit=MAX_HEADER_BYTES + 1024,
        )
        self.worker_address = self._line_server.sockets[0].getsockname()[:2]
        self._http_server = await asyncio.start_server(
            self.http.handle,
            host=self.http_host,
            port=self.http_port,
            limit=MAX_HEADER_BYTES + 1024,
        )
        self.http_address = self._http_server.sockets[0].getsockname()[:2]
        self._expiry_task = asyncio.get_running_loop().create_task(
            self._expiry_loop()
        )

    async def _expiry_loop(self) -> None:
        """Detect worker death even when nobody polls: expire leases.

        The blocking executor gets this for free from its assembly
        loop; a persistent service needs its own tick, or a dead
        worker's lease would only requeue when some other worker's
        lease call happens to run expiry.
        """
        tick = max(0.05, min(1.0, self.lease_timeout / 4.0))
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(tick)
            await loop.run_in_executor(None, self._expire_all)

    def _expire_all(self) -> None:
        for endpoint in self._endpoints():
            try:
                endpoint.plan.expire_leases()
            except Exception:  # journaling I/O error must not kill the tick
                LOG.exception(
                    "lease expiry failed", extra={"sweep_id": endpoint.sweep_id}
                )

    async def _handle_line(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Asyncio transport for the worker line protocol.

        Frame parsing happens on the loop; dispatch (plan locks, store
        I/O, pickling) runs in the default thread pool — the same
        thread-safe :class:`CoordinatorCore` the blocking server uses.
        """
        peer = writer.get_extra_info("peername")
        client_host = str(peer[0]) if peer else "127.0.0.1"
        try:
            try:
                line = await reader.readline()
                if not line:
                    return
                payload = parse_header(line)
                blob: Optional[bytes] = None
                size = payload.pop("blob_bytes", None)
                if size is not None:
                    size = int(size)
                    if size < 0:
                        raise ProtocolError(f"negative blob size {size}")
                    blob = decode_wire_blob(
                        payload, await reader.readexactly(size)
                    )
            except (
                ProtocolError,
                ValueError,
                asyncio.IncompleteReadError,
                ConnectionError,
            ):
                return  # half-open or malformed; nothing to answer
            loop = asyncio.get_running_loop()
            try:
                reply, reply_blob, reply_encoding = await loop.run_in_executor(
                    None, self.core.dispatch, payload, blob, client_host
                )
            except Exception as error:  # surface, don't kill the listener
                reply, reply_blob, reply_encoding = (
                    {"error": f"{type(error).__name__}: {error}"},
                    None,
                    None,
                )
            try:
                header, wire_blob = build_frame(reply, reply_blob, reply_encoding)
                writer.write(header)
                if wire_blob is not None:
                    writer.write(wire_blob)
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # requester vanished; the protocol is stateless
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    def stop(self) -> None:
        """Close both listeners, stop the loop, close tenant journals."""
        loop = self._loop
        if loop is not None:
            future = asyncio.run_coroutine_threadsafe(self._stop_async(), loop)
            with contextlib.suppress(Exception):
                future.result(timeout=10.0)
            loop.call_soon_threadsafe(loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=10.0)
                self._thread = None
            loop.close()
            self._loop = None
        with self._lock:
            managed_sweeps = list(self._sweeps.values())
        for managed in managed_sweeps:
            if managed.journal is not None:
                managed.journal.close()

    async def _stop_async(self) -> None:
        if self._expiry_task is not None:
            self._expiry_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._expiry_task
            self._expiry_task = None
        for server in (self._line_server, self._http_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        self._line_server = None
        self._http_server = None

    def __enter__(self) -> "ExperimentService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


__all__ = [
    "ExperimentService",
    "ManagedSweep",
    "PlanFailed",
    "sweep_identity",
]

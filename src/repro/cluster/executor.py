"""Distributed sweep execution: coordinator-side driver + local fleets.

:class:`ClusterExecutor` is the cluster twin of
:class:`repro.pipeline.runner.Runner`: it expands the same grids,
reuses the same content-addressed store, and returns the same
:class:`~repro.pipeline.runner.RunRecord` list in the same grid order —
but the unique missing stage fingerprints are computed by networked
:class:`~repro.cluster.worker.WorkerAgent` processes instead of a local
process pool.  Result values are identical to serial execution on
every grid; only the execution-dependent record fields differ, and each
record additionally carries per-job placement/transfer stats under
``cluster/…`` keys in ``stage_timings``.

``Runner(coordinator=...)`` delegates here, so existing sweep call
sites scale out by adding one argument.
"""

from __future__ import annotations

import contextlib
import os
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.cluster.coordinator import CoordinatorServer
from repro.cluster.plan import PlanFailed, SweepPlan
from repro.cluster.protocol import format_address, parse_address
from repro.cluster.worker import WorkerAgent
from repro.core.config import SparkXDConfig
from repro.pipeline.runner import RunRecord
from repro.pipeline.stages import ExperimentPipeline
from repro.pipeline.store import ArtifactStore


class ClusterExecutor:
    """Run sweeps by fanning jobs out to workers over the line protocol.

    Parameters
    ----------
    base_config / store:
        As in :class:`~repro.pipeline.runner.Runner`.
    address:
        ``(host, port)`` or ``"host:port"`` the embedded coordinator
        binds — this is the address workers connect to.  Port ``0``
        picks an ephemeral port; read :attr:`address` once running.
    lease_timeout / max_attempts:
        Lease semantics (see :mod:`repro.cluster.plan`).
    wait_timeout:
        Optional ceiling in seconds on one sweep's distribution phase;
        ``None`` waits for workers indefinitely.
    """

    def __init__(
        self,
        base_config: Optional[SparkXDConfig] = None,
        store: Optional[ArtifactStore] = None,
        address: Any = ("127.0.0.1", 0),
        *,
        lease_timeout: float = 30.0,
        max_attempts: int = 3,
        poll_s: Optional[float] = None,
        wait_timeout: Optional[float] = None,
    ):
        self.base_config = base_config or SparkXDConfig()
        self.store = store if store is not None else ArtifactStore()
        self.bind_address: Tuple[str, int] = parse_address(address)
        self.lease_timeout = float(lease_timeout)
        self.max_attempts = int(max_attempts)
        self.poll_s = poll_s
        self.wait_timeout = wait_timeout
        #: Actual bound address of the most recent (or current) run.
        self.address: Optional[Tuple[str, int]] = None
        #: The plan of the most recent run (inspection/tests).
        self.last_plan: Optional[SweepPlan] = None

    # ------------------------------------------------------------------
    def run(
        self,
        grid: Mapping[str, Sequence[Any]],
        on_ready=None,
    ) -> List[RunRecord]:
        """Distribute ``grid`` and assemble records deterministically.

        ``on_ready(address)`` — if given — is called once the
        coordinator is listening, with the bound ``(host, port)``;
        convenient for launching a worker fleet against an ephemeral
        port (see :func:`local_worker_processes`).
        """
        plan = SweepPlan(
            self.base_config,
            grid,
            self.store,
            lease_timeout=self.lease_timeout,
            max_attempts=self.max_attempts,
        )
        self.last_plan = plan
        host, port = self.bind_address
        with CoordinatorServer(
            plan, self.store, host=host, port=port, poll_s=self.poll_s
        ) as server:
            self.address = server.address
            if on_ready is not None:
                on_ready(server.address)
            self._wait_for_distribution(plan)
            # Assemble while the server still answers: late pollers get
            # their shutdown reply instead of a connection error.
            records = self._assemble(plan)
        return records

    def _wait_for_distribution(self, plan: SweepPlan) -> None:
        deadline = (
            None if self.wait_timeout is None else time.monotonic() + self.wait_timeout
        )
        while not plan.done:
            # The tick below is what detects worker death even when no
            # other worker ever polls again.
            plan.expire_leases()
            plan.raise_on_failure()
            if deadline is not None and time.monotonic() > deadline:
                counts = plan.counts()
                raise TimeoutError(
                    f"distributed sweep incomplete after {self.wait_timeout}s "
                    f"(job states: {counts}) — are workers connected to "
                    f"{format_address(self.address)}?"
                )
            time.sleep(0.05)

    # ------------------------------------------------------------------
    def _assemble(self, plan: SweepPlan) -> List[RunRecord]:
        """Serial, deterministic record assembly from the warmed store.

        Identical to :meth:`Runner.run`'s assembly loop: every stage now
        hits the cache, so values are exactly the serial runner's; the
        volatile fields additionally record where each job ran and how
        long transfers took.
        """
        records: List[RunRecord] = []
        for params, config in zip(plan.param_sets, plan.configs):
            started = time.perf_counter()
            before = self.store.stats.snapshot()
            pipeline = ExperimentPipeline(config, store=self.store)
            result = pipeline.run()
            after = self.store.stats
            record = RunRecord.from_result(
                result,
                params=params,
                wall_time_s=time.perf_counter() - started,
                cache_hits=after.hits - before.hits,
                cache_misses=after.misses - before.misses,
                stage_timings=pipeline.stage_timings,
            )
            for stage in plan.chain:
                job = plan.job_for(stage.name, stage.cache_key(config))
                if job is None or not job.stats:
                    continue
                prefix = f"cluster/{stage.name}"
                exec_s = (job.stats.get("exec_s") or {}).get(stage.name)
                if exec_s is not None:
                    record.stage_timings[prefix] = float(exec_s)
                record.stage_timings[f"{prefix}:sync_s"] = float(
                    job.stats.get("sync_s", 0.0)
                )
                record.stage_timings[f"{prefix}:worker"] = float(
                    job.stats.get("slot", -1)
                )
            records.append(record)
        return records


# ----------------------------------------------------------------------
# Localhost worker fleets.


@contextlib.contextmanager
def local_worker_threads(
    address: Any, n_workers: int, **agent_kwargs
) -> Iterator[List[WorkerAgent]]:
    """``n_workers`` in-process agents against ``address`` (tests, demos).

    Threads share the GIL and BLAS, so this is about protocol-level
    concurrency, not compute throughput — use
    :func:`local_worker_processes` for real parallelism.
    """
    agents = [
        WorkerAgent(address, name=f"thread-worker-{i}", **agent_kwargs)
        for i in range(n_workers)
    ]
    threads = [
        threading.Thread(target=agent.run_forever, daemon=True) for agent in agents
    ]
    for thread in threads:
        thread.start()
    try:
        yield agents
    finally:
        for agent in agents:
            agent.stop()
        for thread in threads:
            thread.join(timeout=10.0)


def _worker_env(threads_per_worker: Optional[int]) -> dict:
    """Child env whose ``PYTHONPATH`` can import this very ``repro``.

    With a thread cap, the ``OMP_NUM_THREADS``-family variables are
    pinned exactly like the process-pool Runner's workers — the cap
    must be in the environment before the child first loads numpy/BLAS,
    which is why it is set here and not inside the worker CLI.
    """
    from repro.pipeline.runner import THREAD_ENV_VARS

    env = dict(os.environ)
    package_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )
    if threads_per_worker is not None:
        for var in THREAD_ENV_VARS:
            env[var] = str(int(threads_per_worker))
    return env


@contextlib.contextmanager
def local_worker_processes(
    address: Any,
    n_workers: int,
    cache_dir: Optional[str] = None,
    max_idle_s: float = 30.0,
    threads_per_worker: Optional[int] = 1,
) -> Iterator[List[subprocess.Popen]]:
    """``n_workers`` subprocess agents (``python -m repro cluster worker``).

    Each worker is a fresh interpreter, so BLAS parallelism and memory
    are genuinely per-worker — the localhost stand-in for real hosts.
    ``threads_per_worker`` caps each agent's BLAS/OpenMP threads like
    :class:`repro.pipeline.runner.Runner` does for its process pool
    (``None`` leaves the runtimes at their defaults).
    """
    target = format_address(parse_address(address))
    command = [
        sys.executable,
        "-m",
        "repro",
        "cluster",
        "worker",
        "--coordinator",
        target,
        "--max-idle-s",
        str(max_idle_s),
    ]
    if cache_dir:
        command += ["--cache-dir", str(cache_dir)]
    env = _worker_env(threads_per_worker)
    # stdout is silenced (the agent prints a summary line that would
    # corrupt --json output); stderr is inherited so a worker that dies
    # on startup — import error, bad PYTHONPATH — shows its traceback
    # immediately instead of leaving the coordinator waiting blind.
    workers = [
        subprocess.Popen(command, env=env, stdout=subprocess.DEVNULL)
        for _ in range(n_workers)
    ]
    try:
        yield workers
    finally:
        crashed = [
            proc for proc in workers if proc.poll() not in (None, 0)
        ]
        for proc in workers:
            if proc.poll() is None:
                proc.terminate()
        for proc in workers:
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5.0)
        if crashed:
            print(
                f"warning: {len(crashed)}/{len(workers)} cluster worker "
                f"subprocess(es) exited abnormally (codes "
                f"{[p.returncode for p in crashed]}) before teardown — "
                "see their stderr above",
                file=sys.stderr,
            )


__all__ = [
    "ClusterExecutor",
    "PlanFailed",
    "local_worker_processes",
    "local_worker_threads",
]

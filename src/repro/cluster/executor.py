"""Distributed sweep execution: coordinator-side driver + local fleets.

:class:`ClusterExecutor` is the cluster twin of
:class:`repro.pipeline.runner.Runner`: it expands the same grids,
reuses the same content-addressed store, and returns the same
:class:`~repro.pipeline.runner.RunRecord` list in the same grid order —
but the unique missing stage fingerprints are computed by networked
:class:`~repro.cluster.worker.WorkerAgent` processes instead of a local
process pool.  Result values are identical to serial execution on
every grid; only the execution-dependent record fields differ, and each
record additionally carries per-job placement/transfer stats under
``cluster/…`` keys in ``stage_timings``.

Record assembly **overlaps the tail of distribution**: grid points are
assembled in order as soon as their own chain is fully cached, while
stragglers for later points are still computing on the workers — the
coordinator never sits idle waiting for the last lease to finish
before it starts pulling finished results together.

With ``journal=...`` the executor keeps a disk journal of every job
transition next to the store; ``resume=True`` replays it so a
coordinator killed mid-sweep restarts without re-leasing a single
journaled-done fingerprint (see docs/cluster.md, "Journal and
resume").

``Runner(coordinator=...)`` delegates here, so existing sweep call
sites scale out by adding one argument.
"""

from __future__ import annotations

import contextlib
import os
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.cluster.coordinator import CoordinatorServer
from repro.cluster.journal import SweepJournal
from repro.cluster.plan import PlanFailed, SweepPlan
from repro.cluster.protocol import format_address, parse_address
from repro.cluster.worker import WorkerAgent
from repro.core.config import SparkXDConfig
from repro.pipeline.runner import RunRecord
from repro.pipeline.stages import ExperimentPipeline
from repro.pipeline.store import ArtifactStore
from repro.telemetry import current_context, get_logger, span

LOG = get_logger(__name__)


class DistributionTimeout(TimeoutError):
    """``wait_timeout`` elapsed with the sweep still incomplete.

    Carries the scheduling diagnostics an operator needs to tell "no
    workers ever connected" apart from "a worker went quiet mid-sweep":
    ``counts`` is the job-state histogram at expiry and ``worker_ages``
    maps each known worker to seconds since its last contact.
    """

    def __init__(
        self,
        message: str,
        counts: Dict[str, int],
        worker_ages: Dict[str, float],
    ):
        super().__init__(message)
        self.counts = dict(counts)
        self.worker_ages = dict(worker_ages)


def assemble_point(
    plan: SweepPlan,
    store: ArtifactStore,
    params: Mapping[str, Any],
    config: SparkXDConfig,
    keys: Sequence[Tuple[str, str]],
) -> RunRecord:
    """Assemble one grid point's :class:`RunRecord` from a warmed store.

    Identical in values to one iteration of :meth:`Runner.run`'s
    assembly loop; the volatile fields additionally record where each
    job ran and what its transfers cost (``cluster/…`` keys in
    ``stage_timings``).  Every key in ``keys`` must already be
    satisfied — callers wait (executor) or require a done plan
    (service results) before assembling.
    """
    started = time.perf_counter()
    # A per-record stats view keeps the hit/miss deltas attributable to
    # THIS record's assembly: the shared store's counters may be
    # concurrently bumped by server threads serving other tenants or
    # straggler uploads.
    view = store.stats_view()
    pipeline = ExperimentPipeline(config, store=view)
    result = pipeline.run()
    record = RunRecord.from_result(
        result,
        params=params,
        wall_time_s=time.perf_counter() - started,
        cache_hits=view.stats.hits,
        cache_misses=view.stats.misses,
        stage_timings=pipeline.stage_timings,
    )
    for (stage_name, digest) in keys:
        job = plan.job_for(stage_name, digest)
        if job is None or not job.stats:
            continue
        prefix = f"cluster/{stage_name}"
        exec_s = (job.stats.get("exec_s") or {}).get(stage_name)
        if exec_s is not None:
            record.stage_timings[prefix] = float(exec_s)
        record.stage_timings[f"{prefix}:sync_s"] = float(
            job.stats.get("sync_s", 0.0)
        )
        record.stage_timings[f"{prefix}:sync_bytes"] = float(
            job.stats.get("pulled_bytes", 0)
        ) + float(job.stats.get("pushed_bytes", 0))
        record.stage_timings[f"{prefix}:worker"] = float(
            job.stats.get("slot", -1)
        )
    return record


class ClusterExecutor:
    """Run sweeps by fanning jobs out to workers over the line protocol.

    Parameters
    ----------
    base_config / store:
        As in :class:`~repro.pipeline.runner.Runner`.
    address:
        ``(host, port)`` or ``"host:port"`` the embedded coordinator
        binds — this is the address workers connect to.  Port ``0``
        picks an ephemeral port; read :attr:`address` once running.
    lease_timeout / max_attempts:
        Lease semantics (see :mod:`repro.cluster.plan`).
    wait_timeout:
        Optional ceiling in seconds on one sweep's distribution phase;
        ``None`` waits for workers indefinitely.  On expiry a
        :class:`DistributionTimeout` is raised carrying the job-state
        counts and each worker's last-contact age.
    journal:
        Optional path to the coordinator journal (JSONL of job
        transitions, conventionally next to the store).  An existing
        journal is refused unless ``resume=True``.
    resume:
        Replay an existing journal before distributing: jobs whose
        ``done`` events are journaled and whose artifacts are still in
        the store are never re-leased.
    affinity:
        Enable worker-affinity scheduling (default).  ``False``
        restores plain creation-order grants — kept for comparison
        benchmarks (see benchmarks/perf_cluster.py).
    peer_sync:
        Enable the peer-to-peer artifact fabric (default): the
        coordinator answers ``locate`` with live peer addresses and
        workers pull artifacts from each other.  ``False`` turns the
        routing table off — every byte routes through the hub, exactly
        the pre-fabric topology.
    compact_every:
        Auto-compact the journal after this many appended events (see
        :class:`~repro.cluster.journal.SweepJournal`); ``None`` never
        compacts automatically.
    service:
        Optional control-plane address (``host:port`` or
        ``http://host:port``) of a running
        :class:`~repro.cluster.service.ExperimentService`.  When set,
        :meth:`run` does not bind an embedded coordinator at all — it
        *submits* the sweep over HTTP, polls until completion, and
        rebuilds the records the service assembled, so many executors
        (and many tenants) share one fleet and one store.  The
        journal/resume/affinity/peer_sync knobs are the service's to
        decide in this mode.
    token:
        Shared cluster secret: stamped onto control-plane requests
        (service mode) or required of workers by the embedded
        coordinator.
    """

    def __init__(
        self,
        base_config: Optional[SparkXDConfig] = None,
        store: Optional[ArtifactStore] = None,
        address: Any = ("127.0.0.1", 0),
        *,
        lease_timeout: float = 30.0,
        max_attempts: int = 3,
        poll_s: Optional[float] = None,
        wait_timeout: Optional[float] = None,
        journal: Optional[Union[str, Path]] = None,
        resume: bool = False,
        affinity: bool = True,
        peer_sync: bool = True,
        compact_every: Optional[int] = None,
        service: Optional[Any] = None,
        token: Optional[str] = None,
    ):
        self.base_config = base_config or SparkXDConfig()
        self.store = store if store is not None else ArtifactStore()
        self.service = service
        self.token = token
        self.bind_address: Tuple[str, int] = parse_address(address)
        self.lease_timeout = float(lease_timeout)
        self.max_attempts = int(max_attempts)
        self.poll_s = poll_s
        self.wait_timeout = wait_timeout
        self.journal_path = Path(journal) if journal is not None else None
        self.resume = bool(resume)
        self.affinity = bool(affinity)
        self.peer_sync = bool(peer_sync)
        self.compact_every = None if compact_every is None else int(compact_every)
        #: Actual bound address of the most recent (or current) run.
        self.address: Optional[Tuple[str, int]] = None
        #: The plan of the most recent run (inspection/tests).
        self.last_plan: Optional[SweepPlan] = None
        #: Hub transfer counters of the most recent run (get/put
        #: counts and bytes) — what the peer fabric exists to shrink.
        self.last_transfer_stats: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------
    def run(
        self,
        grid: Mapping[str, Sequence[Any]],
        on_ready=None,
    ) -> List[RunRecord]:
        """Distribute ``grid`` and assemble records deterministically.

        ``on_ready(address)`` — if given — is called once the
        coordinator is listening, with the bound ``(host, port)``;
        convenient for launching a worker fleet against an ephemeral
        port (see :func:`local_worker_processes`).

        In service mode (``service=...``) there is no embedded
        coordinator: the grid is submitted to the running service and
        ``on_ready`` is not called (the fleet already exists).
        """
        if self.service is not None:
            return self._run_via_service(grid)
        journal = (
            SweepJournal(
                self.journal_path,
                resume=self.resume,
                compact_every=self.compact_every,
            )
            if self.journal_path is not None
            else None
        )
        try:
            plan = SweepPlan(
                self.base_config,
                grid,
                self.store,
                lease_timeout=self.lease_timeout,
                max_attempts=self.max_attempts,
                journal=journal,
                affinity=self.affinity,
                peer_sync=self.peer_sync,
            )
            self.last_plan = plan
            host, port = self.bind_address
            with span(
                "cluster.sweep",
                plan_id=plan.plan_id[:16],
                jobs=len(plan.jobs),
                grid_points=len(plan.configs),
            ), CoordinatorServer(
                plan,
                self.store,
                host=host,
                port=port,
                poll_s=self.poll_s,
                token=self.token,
            ) as server:
                # Lease grants carry the sweep span as remote parent, so
                # worker job spans land in this trace (no-op when
                # tracing is off: current_context() is None).
                server.trace_context = current_context()
                self.address = server.address
                if on_ready is not None:
                    on_ready(server.address)
                # Assembly overlaps the distribution tail: each grid
                # point is assembled the moment its own chain is fully
                # cached, while later points' jobs are still running —
                # and the server keeps answering throughout, so late
                # pollers get their shutdown reply instead of a
                # connection error.
                records = self._assemble(plan)
                self.last_transfer_stats = server.transfer_stats()
            return records
        finally:
            if journal is not None:
                journal.close()

    def _run_via_service(
        self, grid: Mapping[str, Sequence[Any]]
    ) -> List[RunRecord]:
        """Submit to a running service, poll, and rebuild its records.

        The records come back through ``RunRecord.to_dict`` /
        ``from_dict`` — value-identical to local assembly by
        construction (``records_equivalent`` compares exactly these
        dicts), minus only the in-memory ``result`` object.
        """
        from repro.cluster.http_api import ServiceClient

        client = ServiceClient(self.service, token=self.token)
        submitted = client.submit(self.base_config, grid)
        sweep_id = str(submitted["sweep_id"])
        LOG.info(
            "sweep submitted to service",
            extra={"sweep_id": sweep_id, "state": submitted.get("state")},
        )
        final = client.wait(sweep_id, timeout=self.wait_timeout)
        if final.get("state") == "cancelled":
            raise PlanFailed(f"sweep {sweep_id} was cancelled on the service")
        payload = client.results(sweep_id)
        return [
            RunRecord.from_dict(entry) for entry in payload.get("records", [])
        ]

    def _wait_for_keys(
        self,
        plan: SweepPlan,
        keys: Sequence[Tuple[str, str]],
        deadline: Optional[float],
    ) -> None:
        """Block until every ``(stage, digest)`` in ``keys`` is satisfied.

        A key is satisfied when it has no job (cached before the sweep
        started) or its job is done (which implies the artifact reached
        the store).  Raises :class:`PlanFailed` on plan failure and a
        diagnostic :class:`DistributionTimeout` once ``deadline``
        passes — never returns with the keys incomplete.
        """
        while True:
            # The expiry tick below is what detects worker death even
            # when no other worker ever polls again.
            plan.expire_leases()
            plan.raise_on_failure()
            if all(
                (job := plan.job_for(stage, digest)) is None or job.state == "done"
                for stage, digest in keys
            ):
                return
            if deadline is not None and time.monotonic() > deadline:
                counts = plan.counts()
                ages = plan.worker_ages()
                contacts = (
                    ", ".join(
                        f"{name} seen {age:.1f}s ago"
                        for name, age in sorted(ages.items(), key=lambda kv: kv[1])
                    )
                    or "none ever connected"
                )
                raise DistributionTimeout(
                    f"distributed sweep incomplete after {self.wait_timeout}s "
                    f"(job states: {counts}; workers: {contacts}) — are "
                    f"workers connected to {format_address(self.address)}?",
                    counts=counts,
                    worker_ages=ages,
                )
            time.sleep(0.05)

    # ------------------------------------------------------------------
    def _assemble(self, plan: SweepPlan) -> List[RunRecord]:
        """Deterministic record assembly, overlapped with distribution.

        Identical in values to :meth:`Runner.run`'s assembly loop —
        grid order, warmed cache — but each record is built as soon as
        *its* chain is fully cached instead of after the whole plan
        drains, so assembly of finished grid points proceeds while
        stragglers run.  The volatile fields additionally record where
        each job ran, how long transfers took and how many bytes moved.
        """
        deadline = (
            None if self.wait_timeout is None else time.monotonic() + self.wait_timeout
        )
        records: List[RunRecord] = []
        for params, config, keys in zip(plan.param_sets, plan.configs, plan.chain_keys):
            self._wait_for_keys(plan, keys, deadline)
            records.append(
                assemble_point(plan, self.store, params, config, keys)
            )
        # Belt and braces: every job must be done once all records are
        # assembled (chain keys cover every job by construction).
        plan.raise_on_failure()
        return records


# ----------------------------------------------------------------------
# Localhost worker fleets.


@contextlib.contextmanager
def local_worker_threads(
    address: Any, n_workers: int, **agent_kwargs
) -> Iterator[List[WorkerAgent]]:
    """``n_workers`` in-process agents against ``address`` (tests, demos).

    Threads share the GIL and BLAS, so this is about protocol-level
    concurrency, not compute throughput — use
    :func:`local_worker_processes` for real parallelism.
    """
    agents = [
        WorkerAgent(address, name=f"thread-worker-{i}", **agent_kwargs)
        for i in range(n_workers)
    ]
    threads = [
        threading.Thread(target=agent.run_forever, daemon=True) for agent in agents
    ]
    for thread in threads:
        thread.start()
    try:
        yield agents
    finally:
        for agent in agents:
            agent.stop()
        for thread in threads:
            thread.join(timeout=10.0)


def _worker_env(threads_per_worker: Optional[int]) -> dict:
    """Child env whose ``PYTHONPATH`` can import this very ``repro``.

    With a thread cap, the ``OMP_NUM_THREADS``-family variables are
    pinned exactly like the process-pool Runner's workers — the cap
    must be in the environment before the child first loads numpy/BLAS,
    which is why it is set here and not inside the worker CLI.
    """
    from repro.pipeline.runner import THREAD_ENV_VARS

    env = dict(os.environ)
    package_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )
    if threads_per_worker is not None:
        for var in THREAD_ENV_VARS:
            env[var] = str(int(threads_per_worker))
    return env


@contextlib.contextmanager
def local_worker_processes(
    address: Any,
    n_workers: int,
    cache_dir: Optional[str] = None,
    max_idle_s: float = 30.0,
    threads_per_worker: Optional[int] = 1,
    peer: bool = True,
    trace: Optional[str] = None,
    log_level: Optional[str] = None,
    token: Optional[str] = None,
) -> Iterator[List[subprocess.Popen]]:
    """``n_workers`` subprocess agents (``python -m repro cluster worker``).

    Each worker is a fresh interpreter, so BLAS parallelism and memory
    are genuinely per-worker — the localhost stand-in for real hosts.
    ``threads_per_worker`` caps each agent's BLAS/OpenMP threads like
    :class:`repro.pipeline.runner.Runner` does for its process pool
    (``None`` leaves the runtimes at their defaults).  ``peer=False``
    starts the agents with ``--no-peer-sync`` (pure hub topology).
    ``trace`` forwards ``--trace PATH`` so every agent appends spans to
    the same JSONL file as the coordinator (line-atomic appends; the
    exporter separates processes by pid) — this is how a single
    ``repro cluster sweep --trace`` yields one merged fleet trace.
    """
    target = format_address(parse_address(address))
    command = [
        sys.executable,
        "-m",
        "repro",
        "cluster",
        "worker",
        "--coordinator",
        target,
        "--max-idle-s",
        str(max_idle_s),
    ]
    if cache_dir:
        command += ["--cache-dir", str(cache_dir)]
    if not peer:
        command.append("--no-peer-sync")
    if trace:
        command += ["--trace", str(trace)]
    if log_level:
        command += ["--log-level", str(log_level)]
    env = _worker_env(threads_per_worker)
    if token:
        # The secret travels by environment, not argv: process listings
        # are world-readable on shared hosts.
        env["REPRO_CLUSTER_TOKEN"] = str(token)
    # stdout is silenced (the agent prints a summary line that would
    # corrupt --json output); stderr is inherited so a worker that dies
    # on startup — import error, bad PYTHONPATH — shows its traceback
    # immediately instead of leaving the coordinator waiting blind.
    workers = [
        subprocess.Popen(command, env=env, stdout=subprocess.DEVNULL)
        for _ in range(n_workers)
    ]
    try:
        yield workers
    finally:
        crashed = [
            proc for proc in workers if proc.poll() not in (None, 0)
        ]
        for proc in workers:
            if proc.poll() is None:
                proc.terminate()
        for proc in workers:
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5.0)
        if crashed:
            # WARNING-level records reach stderr even unconfigured
            # (logging's last-resort handler), so this diagnostic stays
            # visible without a print() that --json callers would see.
            LOG.warning(
                "%d/%d cluster worker subprocess(es) exited abnormally "
                "(codes %s) before teardown — see their stderr above",
                len(crashed),
                len(workers),
                [p.returncode for p in crashed],
            )


__all__ = [
    "ClusterExecutor",
    "DistributionTimeout",
    "PlanFailed",
    "assemble_point",
    "local_worker_processes",
    "local_worker_threads",
]

"""HTTP/JSON control plane for the experiment service.

The second listener of :class:`~repro.cluster.service.ExperimentService`
— a deliberately minimal, stdlib-only HTTP/1.1 endpoint (one request
per connection, ``Connection: close``) that exposes sweep lifecycle
management to *clients*, while workers keep speaking the line protocol:

=========  =========================  =================================
``POST``   ``/sweeps``                submit a sweep (config + grid in
                                      wire form); idempotent — an
                                      already-registered sweep_id
                                      reattaches instead of duplicating
``GET``    ``/sweeps/{sweep_id}``     state, job counts, journal lag
``POST``   ``/sweeps/{sweep_id}/cancel``  withdraw: frees live leases
``GET``    ``/sweeps/{sweep_id}/results`` assembled RunRecords (409
                                      until the sweep is done)
``GET``    ``/fleet``                 whole-service view: totals,
                                      per-sweep breakdown, worker ages,
                                      transfers, merged telemetry
=========  =========================  =================================

The route table is the module-level :data:`ROUTES` constant — the
``protocol-consistency`` lint rule cross-checks it against the paths
:class:`ServiceClient` emits (both directions), exactly as it does for
the line-protocol op table.

Authentication mirrors the line plane: a service started with a shared
token requires ``Authorization: Bearer <token>`` on every request and
answers 401 with ``{"code": "auth"}`` otherwise;
:class:`ServiceClient` raises :class:`ServiceAuthError` on it.  Like
the artifact planes, run this only on networks you trust — the token
is a shared secret over plain TCP, not TLS.
"""

from __future__ import annotations

import asyncio
import hmac
import json
import http.client
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cluster.protocol import parse_address
from repro.core.config import SparkXDConfig
from repro.telemetry import get_logger, get_metrics

LOG = get_logger(__name__)

#: Default control-plane TCP port (line protocol default + 1).
DEFAULT_HTTP_PORT = 8753

#: The registered control-plane surface: ``(method, path template,
#: handler name)``.  Handler names bind to ``_route_<name>`` methods on
#: :class:`HttpControlPlane`; path placeholders use ``{param}`` syntax.
#: Lint (`protocol-consistency`) verifies every client-emitted path has
#: a route here, every route has a handler method, and every route is
#: actually exercised by a client emitter.
ROUTES: Tuple[Tuple[str, str, str], ...] = (
    ("POST", "/sweeps", "submit"),
    ("GET", "/sweeps/{sweep_id}", "status"),
    ("POST", "/sweeps/{sweep_id}/cancel", "cancel"),
    ("GET", "/sweeps/{sweep_id}/results", "results"),
    ("GET", "/fleet", "fleet"),
)

#: Response bodies above this size are not worth logging at debug.
MAX_REQUEST_BODY_BYTES = 16 * 1024 * 1024


class ServiceError(RuntimeError):
    """An HTTP error reply from the experiment service."""

    def __init__(self, status: int, message: str, payload: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.status = int(status)
        self.payload = dict(payload or {})


class ServiceAuthError(ServiceError):
    """The service rejected our bearer token (or the lack of one)."""


# ----------------------------------------------------------------------
# Grid wire form (axis values may be tuples; JSON only has lists).


def grid_to_wire(grid: Mapping[str, Sequence[Any]]) -> Dict[str, List[Any]]:
    """JSON-safe grid: tuple axis values become lists."""
    return {
        str(key): [list(value) if isinstance(value, tuple) else value for value in values]
        for key, values in grid.items()
    }


def grid_from_wire(wire: Mapping[str, Sequence[Any]]) -> Dict[str, List[Any]]:
    """Inverse of :func:`grid_to_wire`: list axis values become tuples.

    Config sequence fields are tuples (``voltages``, ``ber_rates``), so
    axis values that arrive as JSON arrays are re-tupled — fingerprints
    are tuple/list agnostic (``canonical_form``), but the configs a
    service builds should be *exactly* what an in-process caller would
    have built.
    """
    return {
        str(key): [tuple(value) if isinstance(value, list) else value for value in values]
        for key, values in wire.items()
    }


# ----------------------------------------------------------------------
# Server side.


class HttpControlPlane:
    """Asyncio HTTP/1.1 handler bound to one experiment service.

    One request per connection keeps this as stateless as the line
    protocol: no keep-alive bookkeeping, no pipelining, trivially
    restartable clients.  Handlers run in the event loop's default
    thread pool because they take plan/service locks and may assemble
    records.
    """

    def __init__(self, service: Any, token: Optional[str] = None):
        self.service = service
        self.token = token

    # -- request plumbing ----------------------------------------------
    async def handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            status, payload = await self._respond(reader)
        except Exception as error:  # surface, never kill the listener
            status, payload = 500, {"error": f"{type(error).__name__}: {error}"}
        body = json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
        reason = {
            200: "OK",
            400: "Bad Request",
            401: "Unauthorized",
            404: "Not Found",
            405: "Method Not Allowed",
            409: "Conflict",
            500: "Internal Server Error",
        }.get(status, "Error")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("ascii")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # client vanished; the protocol is stateless
        finally:
            writer.close()

    async def _respond(self, reader: asyncio.StreamReader) -> Tuple[int, Dict[str, Any]]:
        try:
            request_line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError):
            return 400, {"error": "request line too long"}
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return 400, {"error": "malformed request line"}
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        if not self._authorized(headers):
            get_metrics().counter("service.http_auth_rejects").inc()
            return 401, {
                "error": "authentication required: bad or missing bearer token",
                "code": "auth",
            }
        body: Optional[Dict[str, Any]] = None
        length = int(headers.get("content-length", 0) or 0)
        if length:
            if length > MAX_REQUEST_BODY_BYTES:
                return 400, {"error": f"request body of {length} bytes too large"}
            raw = await reader.readexactly(length)
            try:
                body = json.loads(raw)
            except json.JSONDecodeError as error:
                return 400, {"error": f"invalid JSON body: {error}"}
            if not isinstance(body, dict):
                return 400, {"error": "JSON body must be an object"}
        path = target.split("?", 1)[0]
        handler, params = self._match(method, path)
        if handler is None:
            return 404, {"error": f"no route for {method} {path}"}
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, handler, params, body or {})

    def _authorized(self, headers: Mapping[str, str]) -> bool:
        if self.token is None:
            return True
        supplied = headers.get("authorization", "")
        scheme, _, credential = supplied.partition(" ")
        return scheme.lower() == "bearer" and hmac.compare_digest(
            credential.strip(), self.token
        )

    def _match(
        self, method: str, path: str
    ) -> Tuple[Optional[Callable[[Dict[str, str], Dict[str, Any]], Tuple[int, Dict[str, Any]]]], Dict[str, str]]:
        segments = [s for s in path.split("/") if s]
        for route_method, template, name in ROUTES:
            if route_method != method:
                continue
            template_segments = [s for s in template.split("/") if s]
            if len(template_segments) != len(segments):
                continue
            params: Dict[str, str] = {}
            for expected, actual in zip(template_segments, segments):
                if expected.startswith("{") and expected.endswith("}"):
                    params[expected[1:-1]] = actual
                elif expected != actual:
                    break
            else:
                return getattr(self, f"_route_{name}"), params
        return None, {}

    # -- route handlers (run in the default executor) -------------------
    def _route_submit(
        self, params: Dict[str, str], body: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        wire_config = body.get("base_config")
        wire_grid = body.get("grid")
        if not isinstance(wire_config, dict) or not isinstance(wire_grid, dict):
            return 400, {
                "error": "submit body requires 'base_config' and 'grid' objects"
            }
        try:
            config = SparkXDConfig.from_wire(wire_config)
            grid = grid_from_wire(wire_grid)
        except (TypeError, ValueError, KeyError) as error:
            return 400, {"error": f"bad sweep description: {error}"}
        resume = body.get("resume", "auto")
        name = body.get("name")
        try:
            managed = self.service.submit(
                config,
                grid,
                name=None if name is None else str(name),
                resume=resume,
            )
        except ValueError as error:
            return 400, {"error": str(error)}
        return 200, self.service.describe(managed.sweep_id)

    def _route_status(
        self, params: Dict[str, str], body: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        try:
            return 200, self.service.describe(params["sweep_id"])
        except KeyError:
            return 404, {"error": f"unknown sweep {params['sweep_id']!r}"}

    def _route_cancel(
        self, params: Dict[str, str], body: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        try:
            return 200, self.service.cancel(params["sweep_id"])
        except KeyError:
            return 404, {"error": f"unknown sweep {params['sweep_id']!r}"}

    def _route_results(
        self, params: Dict[str, str], body: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        sweep_id = params["sweep_id"]
        try:
            records = self.service.results(sweep_id)
        except KeyError:
            return 404, {"error": f"unknown sweep {sweep_id!r}"}
        except Exception as error:
            # Not done / failed / cancelled: a state conflict, not a
            # protocol error — the client may poll status and retry.
            return 409, {
                "error": str(error),
                "state": self.service.describe(sweep_id).get("state"),
            }
        return 200, {
            "sweep_id": sweep_id,
            "records": [record.to_dict() for record in records],
        }

    def _route_fleet(
        self, params: Dict[str, str], body: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        return 200, self.service.fleet()


# ----------------------------------------------------------------------
# Client side.


class ServiceClient:
    """Synchronous control-plane client (stdlib ``http.client``).

    ``address`` accepts ``host:port`` strings, ``(host, port)`` tuples
    or full ``http://host:port`` URLs.  Every helper funnels through
    :meth:`http_request`, whose literal paths are what the
    ``protocol-consistency`` lint rule checks against :data:`ROUTES`.
    """

    def __init__(
        self,
        address: Any,
        token: Optional[str] = None,
        timeout: float = 30.0,
    ):
        if isinstance(address, str) and address.startswith("http://"):
            address = address[len("http://"):].rstrip("/")
        self.address = parse_address(address, default_port=DEFAULT_HTTP_PORT)
        self.token = token
        self.timeout = float(timeout)

    def http_request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """One request/response exchange; raises :class:`ServiceError`.

        Auth rejections (``"code": "auth"``) raise the sharper
        :class:`ServiceAuthError` so callers can fail loud instead of
        retrying through a deployment error.
        """
        host, port = self.address
        headers = {"Content-Type": "application/json", "Connection": "close"}
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        body = (
            None
            if payload is None
            else json.dumps(payload, sort_keys=True, default=str)
        )
        connection = http.client.HTTPConnection(host, port, timeout=self.timeout)
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        finally:
            connection.close()
        try:
            reply = json.loads(raw) if raw else {}
        except json.JSONDecodeError as error:
            raise ServiceError(
                response.status, f"non-JSON reply from service: {error}"
            ) from error
        if not isinstance(reply, dict):
            raise ServiceError(response.status, "service reply must be an object")
        if response.status >= 400:
            message = str(reply.get("error") or f"HTTP {response.status}")
            if reply.get("code") == "auth":
                raise ServiceAuthError(response.status, message, reply)
            raise ServiceError(response.status, message, reply)
        return reply

    # -- lifecycle helpers ---------------------------------------------
    def submit(
        self,
        base_config: SparkXDConfig,
        grid: Mapping[str, Sequence[Any]],
        name: Optional[str] = None,
        resume: Any = "auto",
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "base_config": base_config.to_wire(),
            "grid": grid_to_wire(grid),
            "resume": resume,
        }
        if name is not None:
            payload["name"] = str(name)
        return self.http_request("POST", "/sweeps", payload)

    def status(self, sweep_id: str) -> Dict[str, Any]:
        return self.http_request("GET", f"/sweeps/{sweep_id}")

    def cancel(self, sweep_id: str) -> Dict[str, Any]:
        return self.http_request("POST", f"/sweeps/{sweep_id}/cancel")

    def results(self, sweep_id: str) -> Dict[str, Any]:
        return self.http_request("GET", f"/sweeps/{sweep_id}/results")

    def fleet(self) -> Dict[str, Any]:
        return self.http_request("GET", "/fleet")

    def wait(
        self,
        sweep_id: str,
        timeout: Optional[float] = None,
        poll_s: float = 0.25,
    ) -> Dict[str, Any]:
        """Poll until the sweep leaves ``running``; returns final status.

        Raises :class:`~repro.cluster.plan.PlanFailed` on a failed
        sweep and the executor's ``DistributionTimeout`` (same type the
        embedded coordinator raises) when ``timeout`` elapses first.
        """
        import time as _time

        from repro.cluster.executor import DistributionTimeout
        from repro.cluster.plan import PlanFailed

        deadline = None if timeout is None else _time.monotonic() + float(timeout)
        while True:
            status = self.status(sweep_id)
            state = status.get("state")
            if state == "failed":
                raise PlanFailed(str(status.get("failure") or "sweep failed"))
            if state in ("done", "cancelled"):
                return status
            if deadline is not None and _time.monotonic() > deadline:
                counts = {
                    key: int(status.get(key, 0))
                    for key in ("pending", "leased", "done", "failed")
                }
                raise DistributionTimeout(
                    f"sweep {sweep_id} incomplete after {timeout}s "
                    f"(job states: {counts})",
                    counts=counts,
                    worker_ages={},
                )
            _time.sleep(max(0.05, float(poll_s)))


__all__ = [
    "DEFAULT_HTTP_PORT",
    "HttpControlPlane",
    "ROUTES",
    "ServiceAuthError",
    "ServiceClient",
    "ServiceError",
    "grid_from_wire",
    "grid_to_wire",
]

"""Coordinator request handling: lease jobs and sync artifacts.

The handler logic lives in :class:`CoordinatorCore`, a transport-free
dispatcher shared by every server front end: the classic blocking
:class:`CoordinatorServer` below (one ``ThreadingTCPServer`` per sweep,
born and dying with it) and the persistent asyncio
:class:`~repro.cluster.service.ExperimentService`, which serves *many*
tenant sweeps — each its own :class:`~repro.cluster.plan.SweepPlan` —
through one core over one shared
:class:`~repro.pipeline.store.ArtifactStore` and one
:class:`~repro.cluster.plan.WorkerRegistry`.

Operations (one JSON request line → one JSON reply line, blobs framed
by ``blob_bytes``):

===========  ==========================================================
``hello``    register a worker; replies with its stable slot index and
             the coordinator's wire capabilities; a ``peer_port``
             registers the worker's artifact server in the routing
             table (its host is taken from the TCP source address)
``lease``    request a job from *any* active sweep; replies ``{"job":
             …}`` (plus ``sources``: peer addresses for the job's
             upstream keys, and ``sweep_id`` when serving a named
             tenant), ``{"wait": s}`` or ``{"shutdown": true}`` once a
             non-persistent plan finishes
``heartbeat``  renew a lease; ``{"ok": false}`` means the lease is lost
``complete``   report a finished job (idempotent); the reply's
             ``holding`` count lets the worker skip redundant holdings
             re-reports
``fail``     report a job exception (requeues with exclusion)
``has``      filter a list of ``[stage, digest]`` keys to those present
``locate``   answer "who holds these keys" with live peer addresses
``get``      download one artifact blob by fingerprint
``put``      upload one artifact blob by fingerprint (idempotent: an
             already-present fingerprint is acknowledged, not rewritten)
``status``   job-state counts + transfer counters + aggregated worker
             telemetry + per-plan journal lag, for monitoring
             (``repro cluster top``); service cores add a per-sweep
             breakdown under ``sweeps``
===========  ==========================================================

Multi-tenant routing: a ``heartbeat``/``complete``/``fail`` may carry
the ``sweep_id`` its lease grant named; requests without one (older
workers) are routed by looking the ``job_id`` up across active plans —
job ids embed the full stage fingerprint, so a cross-sweep collision
means the *same* artifact and either owner may take the completion.

Authentication: a core constructed with a shared ``token`` requires it
on **every** request (workers send it from ``hello`` onward).  A
mismatch is answered with ``{"error": …, "code": "auth"}``, which
:class:`~repro.cluster.protocol.ClusterClient` raises as
:class:`~repro.cluster.protocol.AuthError` even on ``check=False``
paths — mixed fleets fail loud, not silent, the same degradation
contract as the gzip capability handshake.

Telemetry rides the existing ops instead of adding new ones:
``hello``/``lease``/``heartbeat``/``complete`` requests may carry an
optional ``telemetry`` field (the worker's cumulative metrics snapshot
plus its slowest open spans, :func:`repro.telemetry.telemetry_snapshot`).
The coordinator keeps the *latest* snapshot per worker — snapshots are
cumulative, so the fleet view is simply the merge of latest-per-worker
plus the coordinator's own registry.  Workers that never send the field
(older builds) just don't appear, and coordinators that ignore it
(older builds) drop an unknown key: both directions interoperate (see
docs/telemetry.md).

The artifact sync layer is content-addressed and therefore *resumable
by retry*: an interrupted upload leaves no partial state server-side,
and a reconnecting worker first asks ``has`` so already-synced
fingerprints are never re-sent.  With peer sync enabled the
coordinator degrades to a *metadata service*: artifact bytes flow
worker-to-worker (``peer_get`` against :class:`~repro.cluster.worker`
serving sockets) and only the final push of each newly computed
artifact still lands here.
"""

from __future__ import annotations

import hmac
import pickle
import socketserver
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.plan import SweepPlan, WorkerRegistry
from repro.cluster.protocol import (
    PROTOCOL_CAPS,
    encode_blob,
    recv_message,
    send_message,
)
from repro.pipeline.store import MISS, ArtifactStore
from repro.telemetry import get_metrics, merge_snapshots


class _WireCache:
    """Byte-bounded LRU of raw artifact pickles, keyed like the store.

    Serving downloads from the exact uploaded bytes keeps round trips
    byte-identical and avoids re-pickling per pull, while the byte
    budget keeps coordinator memory from doubling on large sweeps of
    heavyweight artifacts (an evicted entry is simply re-pickled from
    the store on demand; a blob bigger than the whole budget is served
    but never cached).  The internal lock covers only dict bookkeeping
    — never pickling or store I/O — so artifact traffic from many
    workers stays concurrent.
    """

    def __init__(self, max_bytes: int = 64 * 1024 * 1024):
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[str, str], bytes]" = OrderedDict()
        self.max_bytes = int(max_bytes)
        self.total_bytes = 0

    def get(self, key: Tuple[str, str]) -> Optional[bytes]:
        with self._lock:
            blob = self._entries.get(key)
            if blob is not None:
                self._entries.move_to_end(key)
            return blob

    def put(self, key: Tuple[str, str], blob: bytes) -> None:
        if len(blob) > self.max_bytes:
            return
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self.total_bytes -= len(old)
            self._entries[key] = blob
            self.total_bytes += len(blob)
            while self.total_bytes > self.max_bytes and len(self._entries) > 1:
                _, evicted = self._entries.popitem(last=False)
                self.total_bytes -= len(evicted)


@dataclass(frozen=True)
class SweepEndpoint:
    """One schedulable tenant as the core sees it.

    ``sweep_id`` is ``None`` exactly in single-sweep mode
    (:class:`CoordinatorServer`), where grants are not stamped and the
    wire format stays byte-compatible with pre-service workers.
    """

    sweep_id: Optional[str]
    plan: SweepPlan
    trace_context: Optional[Dict[str, str]] = None
    name: Optional[str] = None

    @property
    def state(self) -> str:
        plan = self.plan
        if plan.failed:
            return "failed"
        if plan.cancelled:
            return "cancelled"
        if plan.done:
            return "done"
        return "running"


class CoordinatorCore:
    """Transport-agnostic coordinator dispatch, shared by both planes.

    Parameters
    ----------
    store:
        The shared artifact store all tenants publish into.
    sweeps:
        A callable returning the current endpoints in submission order.
        Single-sweep servers pass a constant one-tuple; the experiment
        service passes a live view of its tenant registry, so newly
        submitted sweeps become leasable without any rebind.
    registry:
        The :class:`~repro.cluster.plan.WorkerRegistry` every tenant
        plan shares (single-sweep mode: the plan's own).
    token:
        Optional shared secret; when set, every request must carry it.
    persistent:
        ``True`` (service mode) never answers ``shutdown`` — idle
        workers poll forever, ready for the next submitted sweep.
        ``False`` reproduces the classic lifecycle: once every known
        sweep is finished (done, failed, or cancelled) workers are told
        to shut down.
    """

    def __init__(
        self,
        store: ArtifactStore,
        sweeps: Callable[[], Sequence[SweepEndpoint]],
        registry: WorkerRegistry,
        *,
        token: Optional[str] = None,
        poll_s: float = 1.0,
        wire_cache_bytes: int = 64 * 1024 * 1024,
        peer_sync: bool = True,
        persistent: bool = False,
    ):
        self.store = store
        self.sweeps = sweeps
        self.registry = registry
        self.token = token
        self.poll_s = float(poll_s)
        self.peer_sync = bool(peer_sync)
        self.persistent = bool(persistent)
        self._wire_cache = _WireCache(wire_cache_bytes)
        #: Transfer accounting (guarded by _stats_lock): how many
        #: artifact bytes this hub actually served/received.  The
        #: peer-fabric benchmark asserts served get bytes ≈ 0 when
        #: workers pull from each other instead.
        self._stats_lock = threading.Lock()
        self._get_count = 0
        self._get_bytes = 0
        self._get_wire_bytes = 0
        self._put_count = 0
        self._put_bytes = 0
        #: Latest telemetry snapshot per worker (guarded by its own
        #: lock: snapshot ingest must not contend with blob traffic).
        self._telemetry_lock = threading.Lock()
        self._telemetry: Dict[str, Dict[str, Any]] = {}
        #: Trace context (``{"trace_id", "span_id"}``) stamped onto
        #: lease grants so worker job spans join the sweep's trace.
        #: Per-endpoint contexts (service tenants) take precedence.
        self.trace_context: Optional[Dict[str, str]] = None

    # ------------------------------------------------------------------
    # Request dispatch.

    def dispatch(
        self,
        payload: Dict[str, Any],
        blob: Optional[bytes],
        client_host: str = "127.0.0.1",
    ) -> Tuple[Dict[str, Any], Optional[bytes], Optional[str]]:
        op = payload.get("op")
        worker = str(payload.get("worker", "anonymous"))
        if not self._authorized(payload):
            get_metrics().counter("cluster.auth_rejects").inc()
            return {
                "error": "authentication required: bad or missing token",
                "code": "auth",
            }, None, None
        if op in ("hello", "lease", "heartbeat", "complete"):
            snapshot = payload.get("telemetry")
            if snapshot:
                self._ingest_telemetry(worker, snapshot)
        if op == "hello":
            peer_port = payload.get("peer_port")
            if peer_port is not None and self.peer_sync:
                # The worker advertises only its serving *port*; its
                # reachable host is whatever address this very request
                # arrived from, which works across NAT-free clusters
                # without the worker guessing its own interface.
                self.registry.register_peer(worker, client_host, int(peer_port))
            else:
                self.registry.touch(worker)
            return {
                "ok": True,
                "slot": self.registry.slot(worker),
                "caps": list(PROTOCOL_CAPS),
            }, None, None
        if op == "lease":
            return self._op_lease(worker, payload.get("holding")), None, None
        if op == "heartbeat":
            plan = self._resolve_plan(payload)
            ok = plan is not None and plan.heartbeat(
                worker, str(payload.get("job_id"))
            )
            return {"ok": ok}, None, None
        if op == "complete":
            plan = self._resolve_plan(payload)
            ok = plan is not None and plan.complete(
                worker, str(payload.get("job_id")), payload.get("stats") or {}
            )
            # ``holding``: how many keys the routing table now credits
            # to this worker.  A worker whose local count matches can
            # skip re-reporting holdings on its next lease; a mismatch
            # (coordinator restart) triggers a full re-report.
            return {
                "ok": ok,
                "holding": self.registry.holding_count(worker),
            }, None, None
        if op == "fail":
            plan = self._resolve_plan(payload)
            if plan is not None:
                plan.fail(
                    worker, str(payload.get("job_id")), str(payload.get("error", ""))
                )
            return {"ok": True}, None, None
        if op == "has":
            keys = [(str(s), str(d)) for s, d in payload.get("keys", [])]
            present = [list(key) for key in keys if key in self.store]
            return {"present": present}, None, None
        if op == "locate":
            keys = [(str(s), str(d)) for s, d in payload.get("keys", [])]
            sources = (
                self.registry.locate(keys, exclude=worker) if self.peer_sync else []
            )
            return {"sources": sources}, None, None
        if op == "get":
            return self._op_get(
                str(payload.get("stage")),
                str(payload.get("digest")),
                payload.get("accept") or (),
            )
        if op == "put":
            if blob is None:
                return {"error": "put requires a blob"}, None, None
            return (
                self._op_put(
                    str(payload.get("stage")), str(payload.get("digest")), blob
                ),
                None,
                None,
            )
        if op == "status":
            return self._op_status(), None, None
        return {"error": f"unknown op {op!r}"}, None, None

    def _authorized(self, payload: Dict[str, Any]) -> bool:
        if self.token is None:
            return True
        supplied = payload.get("token")
        return isinstance(supplied, str) and hmac.compare_digest(
            supplied, self.token
        )

    def _resolve_plan(self, payload: Dict[str, Any]) -> Optional[SweepPlan]:
        """Route a job report to its tenant plan.

        Grants from a service core carry ``sweep_id`` and workers echo
        it back; reports without one (single-sweep mode, or an older
        worker against a service) fall back to the sole endpoint or to
        a ``job_id`` lookup — job ids embed the full stage fingerprint,
        so whichever plan knows the id owns (an identical copy of) the
        artifact.
        """
        endpoints = self.sweeps()
        sweep_id = payload.get("sweep_id")
        if sweep_id is not None:
            for endpoint in endpoints:
                if endpoint.sweep_id == sweep_id:
                    return endpoint.plan
            return None
        if len(endpoints) == 1:
            return endpoints[0].plan
        job_id = payload.get("job_id")
        if job_id is not None:
            for endpoint in endpoints:
                if str(job_id) in endpoint.plan.jobs:
                    return endpoint.plan
        return None

    # ------------------------------------------------------------------
    # Worker telemetry aggregation.

    def _ingest_telemetry(self, worker: str, snapshot: Any) -> None:
        if not isinstance(snapshot, dict):
            return  # malformed field from a foreign client; ignore
        with self._telemetry_lock:
            self._telemetry[worker] = snapshot

    def telemetry_view(self) -> Dict[str, Any]:
        """Per-worker snapshots plus the merged fleet-wide metrics.

        Each worker's snapshot is cumulative for its process, so the
        fleet view merges the latest one per worker with the
        coordinator's own registry (store/plan counters live here).
        """
        with self._telemetry_lock:
            workers = {name: dict(snap) for name, snap in self._telemetry.items()}
        fleet = merge_snapshots(
            [snap.get("metrics") or {} for snap in workers.values()]
            + [get_metrics().to_dict()]
        )
        return {"workers": workers, "fleet": fleet}

    # ------------------------------------------------------------------
    def _op_lease(self, worker: str, holding: Optional[Any] = None) -> Dict[str, Any]:
        if holding is not None:
            self.registry.set_holdings(worker, holding)
        endpoints = self.sweeps()
        for endpoint in endpoints:
            plan = endpoint.plan
            if plan.failed or plan.cancelled:
                continue
            job = plan.lease(worker)
            if job is None:
                continue
            reply: Dict[str, Any] = {"job": job.to_wire(plan.lease_timeout)}
            if endpoint.sweep_id is not None:
                # Workers echo this back on heartbeat/complete/fail so
                # reports route straight to the owning tenant; old
                # workers ignore it and fall back to job-id routing.
                reply["sweep_id"] = endpoint.sweep_id
            # Routing hints ride along with the grant: peer addresses
            # for every upstream key some live peer holds, so the
            # worker can pull missing inputs without a separate
            # ``locate`` round trip.
            sources = plan.locate(job.upstream, exclude=worker)
            if sources:
                reply["sources"] = sources
            trace = endpoint.trace_context or self.trace_context
            if trace:
                # Workers adopt this as the remote parent of their job
                # spans; old workers simply ignore the unknown key.
                reply["trace"] = dict(trace)
            return reply
        # Nothing grantable right now.  A persistent core waits for the
        # next submission; the classic lifecycle shuts workers down once
        # every sweep it ever knew is finished.  Note "reason", not
        # "error": the client treats an "error" key as a protocol
        # failure and raises, which would turn the graceful plan-failed
        # shutdown into apparent unreachability.
        if not self.persistent and endpoints and all(
            e.plan.done or e.plan.failed or e.plan.cancelled for e in endpoints
        ):
            reason = next(
                (e.plan.failure for e in endpoints if e.plan.failure is not None),
                None,
            )
            reply = {"shutdown": True}
            if reason is not None:
                reply["reason"] = reason
            return reply
        return {"wait": self.poll_s}

    def status_view(self) -> Dict[str, Any]:
        """The ``status`` op's payload, for in-process callers (HTTP
        ``/fleet``, the service's own monitoring) — no socket, no auth."""
        return self._op_status()

    def _op_status(self) -> Dict[str, Any]:
        endpoints = self.sweeps()
        totals = {"pending": 0, "leased": 0, "done": 0, "failed": 0}
        failure: Optional[str] = None
        sweeps: Dict[str, Any] = {}
        for endpoint in endpoints:
            counts = endpoint.plan.counts()
            for state in totals:
                totals[state] += counts.get(state, 0)
            if failure is None:
                failure = endpoint.plan.failure
            if endpoint.sweep_id is not None:
                entry: Dict[str, Any] = dict(counts)
                entry["state"] = endpoint.state
                entry["failure"] = endpoint.plan.failure
                if endpoint.name:
                    entry["name"] = endpoint.name
                journal = endpoint.plan.journal_status()
                if journal is not None:
                    entry["journal"] = journal
                sweeps[endpoint.sweep_id] = entry
        payload: Dict[str, Any] = dict(totals)
        payload["failure"] = failure
        payload["workers"] = {
            name: round(age, 3) for name, age in self.registry.ages().items()
        }
        payload["transfers"] = self.transfer_stats()
        payload["telemetry"] = self.telemetry_view()
        if len(endpoints) == 1 and endpoints[0].sweep_id is None:
            journal = endpoints[0].plan.journal_status()
            if journal is not None:
                payload["journal"] = journal
        else:
            # Multi-tenant (or empty persistent) coordinator: always
            # present the tenant map, even when it has no rows yet.
            payload["sweeps"] = sweeps
        return payload

    def _op_get(
        self, stage: str, digest: str, accept: Any = ()
    ) -> Tuple[Dict[str, Any], Optional[bytes], Optional[str]]:
        key = (stage, digest)
        blob = self._wire_cache.get(key)
        if blob is None:
            artifact = self.store.get(stage, digest)
            if artifact is MISS:
                return {"found": False}, None, None
            blob = pickle.dumps(artifact, protocol=pickle.HIGHEST_PROTOCOL)
            self._wire_cache.put(key, blob)
        wire_blob, encoding = encode_blob(blob, [str(c) for c in accept])
        with self._stats_lock:
            self._get_count += 1
            self._get_bytes += len(blob)
            self._get_wire_bytes += len(wire_blob)
        return {"found": True}, wire_blob, encoding

    def _op_put(self, stage: str, digest: str, blob: bytes) -> Dict[str, Any]:
        key = (stage, digest)
        with self._stats_lock:
            self._put_count += 1
            self._put_bytes += len(blob)
        if key in self.store:
            # Idempotent upload: the fingerprint already resolves, a
            # duplicate (double completion, resumed worker) is a hit.
            return {"ok": True, "stored": False}
        # No server-wide lock here: the store publish is atomic and
        # treats a lost race as a hit, so concurrent uploads (even of
        # the same key) are safe and stay parallel.  put_bytes never
        # unpickles on disk-backed stores — uploads stream to disk and
        # load lazily if the assembly actually reads them, keeping a
        # long-running coordinator's memory bounded.
        self.store.put_bytes(stage, digest, blob)
        self._wire_cache.put(key, blob)
        return {"ok": True, "stored": True}

    def transfer_stats(self) -> Dict[str, int]:
        """Artifact bytes this hub served (get) and received (put)."""
        with self._stats_lock:
            return {
                "get_count": self._get_count,
                "get_bytes": self._get_bytes,
                "get_wire_bytes": self._get_wire_bytes,
                "put_count": self._put_count,
                "put_bytes": self._put_bytes,
            }


class CoordinatorServer:
    """Serve one :class:`SweepPlan` + :class:`ArtifactStore` over TCP.

    The classic single-sweep front end: a ``ThreadingTCPServer`` whose
    handler threads feed one :class:`CoordinatorCore` wrapping exactly
    one plan.  Wire behaviour (including shutdown-when-finished) is
    identical to the pre-service coordinator; ``token`` adds the shared
    secret check on every op.
    """

    def __init__(
        self,
        plan: SweepPlan,
        store: ArtifactStore,
        host: str = "127.0.0.1",
        port: int = 0,
        poll_s: Optional[float] = None,
        wire_cache_bytes: int = 64 * 1024 * 1024,
        token: Optional[str] = None,
    ):
        self.plan = plan
        self.store = store
        #: Seconds an idle worker should wait before polling again.
        self.poll_s = (
            float(poll_s) if poll_s is not None else min(1.0, plan.lease_timeout / 4.0)
        )
        endpoint = SweepEndpoint(sweep_id=None, plan=plan)
        self.core = CoordinatorCore(
            store,
            lambda: (endpoint,),
            plan.registry,
            token=token,
            poll_s=self.poll_s,
            wire_cache_bytes=wire_cache_bytes,
            peer_sync=plan.peer_sync,
            persistent=False,
        )

        coordinator = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:  # pragma: no cover - thin shim
                coordinator._handle(self)

        class Server(socketserver.ThreadingTCPServer):
            daemon_threads = True
            allow_reuse_address = True

        self._server = Server((host, port), Handler)
        self.address: Tuple[str, int] = self._server.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def trace_context(self) -> Optional[Dict[str, str]]:
        return self.core.trace_context

    @trace_context.setter
    def trace_context(self, context: Optional[Dict[str, str]]) -> None:
        self.core.trace_context = context

    # ------------------------------------------------------------------
    def start(self) -> "CoordinatorServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-cluster-coordinator",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "CoordinatorServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _handle(self, request: socketserver.StreamRequestHandler) -> None:
        try:
            payload, blob = recv_message(request.rfile)
        except Exception:
            return  # half-open connection; nothing to answer
        try:
            reply, reply_blob, reply_encoding = self._dispatch(
                payload, blob, client_host=str(request.client_address[0])
            )
        except Exception as error:  # surface, don't kill the thread
            reply, reply_blob, reply_encoding = (
                {"error": f"{type(error).__name__}: {error}"},
                None,
                None,
            )
        try:
            send_message(request.wfile, reply, reply_blob, encoding=reply_encoding)
        except Exception:
            pass  # requester vanished; the protocol is stateless

    def _dispatch(
        self,
        payload: Dict[str, Any],
        blob: Optional[bytes],
        client_host: str = "127.0.0.1",
    ) -> Tuple[Dict[str, Any], Optional[bytes], Optional[str]]:
        return self.core.dispatch(payload, blob, client_host=client_host)

    def telemetry_view(self) -> Dict[str, Any]:
        return self.core.telemetry_view()

    def transfer_stats(self) -> Dict[str, int]:
        return self.core.transfer_stats()


__all__ = [
    "CoordinatorCore",
    "CoordinatorServer",
    "SweepEndpoint",
]

"""The coordinator service: leases jobs and syncs artifacts over TCP.

A :class:`CoordinatorServer` binds one listening socket and serves the
cluster line protocol (:mod:`repro.cluster.protocol`) from daemon
threads — scheduling decisions live in the wrapped
:class:`~repro.cluster.plan.SweepPlan`, artifacts in the wrapped
:class:`~repro.pipeline.store.ArtifactStore`.

Operations (one JSON request line → one JSON reply line, blobs framed
by ``blob_bytes``):

===========  ==========================================================
``hello``    register a worker; replies with its stable slot index and
             the coordinator's wire capabilities; a ``peer_port``
             registers the worker's artifact server in the routing
             table (its host is taken from the TCP source address)
``lease``    request a job; replies ``{"job": …}`` (plus ``sources``:
             peer addresses for the job's upstream keys), ``{"wait":
             s}`` or ``{"shutdown": true}`` once the plan finishes
``heartbeat``  renew a lease; ``{"ok": false}`` means the lease is lost
``complete``   report a finished job (idempotent); the reply's
             ``holding`` count lets the worker skip redundant holdings
             re-reports
``fail``     report a job exception (requeues with exclusion)
``has``      filter a list of ``[stage, digest]`` keys to those present
``locate``   answer "who holds these keys" with live peer addresses
``get``      download one artifact blob by fingerprint
``put``      upload one artifact blob by fingerprint (idempotent: an
             already-present fingerprint is acknowledged, not rewritten)
``status``   job-state counts + transfer counters + aggregated worker
             telemetry, for monitoring (``repro cluster top``)
===========  ==========================================================

Telemetry rides the existing ops instead of adding new ones:
``hello``/``lease``/``heartbeat``/``complete`` requests may carry an
optional ``telemetry`` field (the worker's cumulative metrics snapshot
plus its slowest open spans, :func:`repro.telemetry.telemetry_snapshot`).
The coordinator keeps the *latest* snapshot per worker — snapshots are
cumulative, so the fleet view is simply the merge of latest-per-worker
plus the coordinator's own registry.  Workers that never send the field
(older builds) just don't appear, and coordinators that ignore it
(older builds) drop an unknown key: both directions interoperate, the
same degradation contract as the gzip capability handshake (see
docs/telemetry.md).

The artifact sync layer is content-addressed and therefore *resumable
by retry*: an interrupted upload leaves no partial state server-side,
and a reconnecting worker first asks ``has`` so already-synced
fingerprints are never re-sent.  With peer sync enabled the
coordinator degrades to a *metadata service*: artifact bytes flow
worker-to-worker (``peer_get`` against :class:`~repro.cluster.worker`
serving sockets) and only the final push of each newly computed
artifact still lands here.
"""

from __future__ import annotations

import pickle
import socketserver
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from repro.cluster.plan import SweepPlan
from repro.cluster.protocol import (
    PROTOCOL_CAPS,
    encode_blob,
    recv_message,
    send_message,
)
from repro.pipeline.store import MISS, ArtifactStore
from repro.telemetry import get_metrics, merge_snapshots


class _WireCache:
    """Byte-bounded LRU of raw artifact pickles, keyed like the store.

    Serving downloads from the exact uploaded bytes keeps round trips
    byte-identical and avoids re-pickling per pull, while the byte
    budget keeps coordinator memory from doubling on large sweeps of
    heavyweight artifacts (an evicted entry is simply re-pickled from
    the store on demand; a blob bigger than the whole budget is served
    but never cached).  The internal lock covers only dict bookkeeping
    — never pickling or store I/O — so artifact traffic from many
    workers stays concurrent.
    """

    def __init__(self, max_bytes: int = 64 * 1024 * 1024):
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[str, str], bytes]" = OrderedDict()
        self.max_bytes = int(max_bytes)
        self.total_bytes = 0

    def get(self, key: Tuple[str, str]) -> Optional[bytes]:
        with self._lock:
            blob = self._entries.get(key)
            if blob is not None:
                self._entries.move_to_end(key)
            return blob

    def put(self, key: Tuple[str, str], blob: bytes) -> None:
        if len(blob) > self.max_bytes:
            return
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self.total_bytes -= len(old)
            self._entries[key] = blob
            self.total_bytes += len(blob)
            while self.total_bytes > self.max_bytes and len(self._entries) > 1:
                _, evicted = self._entries.popitem(last=False)
                self.total_bytes -= len(evicted)


class CoordinatorServer:
    """Serve one :class:`SweepPlan` + :class:`ArtifactStore` over TCP."""

    def __init__(
        self,
        plan: SweepPlan,
        store: ArtifactStore,
        host: str = "127.0.0.1",
        port: int = 0,
        poll_s: Optional[float] = None,
        wire_cache_bytes: int = 64 * 1024 * 1024,
    ):
        self.plan = plan
        self.store = store
        #: Seconds an idle worker should wait before polling again.
        self.poll_s = (
            float(poll_s) if poll_s is not None else min(1.0, plan.lease_timeout / 4.0)
        )
        self._wire_cache = _WireCache(wire_cache_bytes)
        #: Transfer accounting (guarded by _stats_lock): how many
        #: artifact bytes this hub actually served/received.  The
        #: peer-fabric benchmark asserts served get bytes ≈ 0 when
        #: workers pull from each other instead.
        self._stats_lock = threading.Lock()
        self._get_count = 0
        self._get_bytes = 0
        self._get_wire_bytes = 0
        self._put_count = 0
        self._put_bytes = 0
        #: Latest telemetry snapshot per worker (guarded by its own
        #: lock: snapshot ingest must not contend with blob traffic).
        self._telemetry_lock = threading.Lock()
        self._telemetry: Dict[str, Dict[str, Any]] = {}
        #: Trace context (``{"trace_id", "span_id"}``) stamped onto
        #: lease grants so worker job spans join the sweep's trace; the
        #: executor sets it from its root span before workers connect,
        #: and it stays fixed for the server's lifetime.
        self.trace_context: Optional[Dict[str, str]] = None

        coordinator = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:  # pragma: no cover - thin shim
                coordinator._handle(self)

        class Server(socketserver.ThreadingTCPServer):
            daemon_threads = True
            allow_reuse_address = True

        self._server = Server((host, port), Handler)
        self.address: Tuple[str, int] = self._server.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def start(self) -> "CoordinatorServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-cluster-coordinator",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "CoordinatorServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Request dispatch.

    def _handle(self, request: socketserver.StreamRequestHandler) -> None:
        try:
            payload, blob = recv_message(request.rfile)
        except Exception:
            return  # half-open connection; nothing to answer
        try:
            reply, reply_blob, reply_encoding = self._dispatch(
                payload, blob, client_host=str(request.client_address[0])
            )
        except Exception as error:  # surface, don't kill the thread
            reply, reply_blob, reply_encoding = (
                {"error": f"{type(error).__name__}: {error}"},
                None,
                None,
            )
        try:
            send_message(request.wfile, reply, reply_blob, encoding=reply_encoding)
        except Exception:
            pass  # requester vanished; the protocol is stateless

    def _dispatch(
        self,
        payload: Dict[str, Any],
        blob: Optional[bytes],
        client_host: str = "127.0.0.1",
    ) -> Tuple[Dict[str, Any], Optional[bytes], Optional[str]]:
        op = payload.get("op")
        worker = str(payload.get("worker", "anonymous"))
        if op in ("hello", "lease", "heartbeat", "complete"):
            snapshot = payload.get("telemetry")
            if snapshot:
                self._ingest_telemetry(worker, snapshot)
        if op == "hello":
            peer_port = payload.get("peer_port")
            if peer_port is not None:
                # The worker advertises only its serving *port*; its
                # reachable host is whatever address this very request
                # arrived from, which works across NAT-free clusters
                # without the worker guessing its own interface.
                self.plan.register_peer(worker, client_host, int(peer_port))
            return {
                "ok": True,
                "slot": self.plan.worker_slot(worker),
                "caps": list(PROTOCOL_CAPS),
            }, None, None
        if op == "lease":
            return self._op_lease(worker, payload.get("holding")), None, None
        if op == "heartbeat":
            ok = self.plan.heartbeat(worker, str(payload.get("job_id")))
            return {"ok": ok}, None, None
        if op == "complete":
            ok = self.plan.complete(
                worker, str(payload.get("job_id")), payload.get("stats") or {}
            )
            # ``holding``: how many keys the routing table now credits
            # to this worker.  A worker whose local count matches can
            # skip re-reporting holdings on its next lease; a mismatch
            # (coordinator restart) triggers a full re-report.
            return {
                "ok": ok,
                "holding": self.plan.worker_holding_count(worker),
            }, None, None
        if op == "fail":
            self.plan.fail(
                worker, str(payload.get("job_id")), str(payload.get("error", ""))
            )
            return {"ok": True}, None, None
        if op == "has":
            keys = [(str(s), str(d)) for s, d in payload.get("keys", [])]
            present = [list(key) for key in keys if key in self.store]
            return {"present": present}, None, None
        if op == "locate":
            keys = [(str(s), str(d)) for s, d in payload.get("keys", [])]
            sources = self.plan.locate(keys, exclude=worker)
            return {"sources": sources}, None, None
        if op == "get":
            return self._op_get(
                str(payload.get("stage")),
                str(payload.get("digest")),
                payload.get("accept") or (),
            )
        if op == "put":
            if blob is None:
                return {"error": "put requires a blob"}, None, None
            return (
                self._op_put(
                    str(payload.get("stage")), str(payload.get("digest")), blob
                ),
                None,
                None,
            )
        if op == "status":
            counts = self.plan.counts()
            counts["failure"] = self.plan.failure
            counts["workers"] = {
                name: round(age, 3)
                for name, age in self.plan.worker_ages().items()
            }
            counts["transfers"] = self.transfer_stats()
            counts["telemetry"] = self.telemetry_view()
            return counts, None, None
        return {"error": f"unknown op {op!r}"}, None, None

    # ------------------------------------------------------------------
    # Worker telemetry aggregation.

    def _ingest_telemetry(self, worker: str, snapshot: Any) -> None:
        if not isinstance(snapshot, dict):
            return  # malformed field from a foreign client; ignore
        with self._telemetry_lock:
            self._telemetry[worker] = snapshot

    def telemetry_view(self) -> Dict[str, Any]:
        """Per-worker snapshots plus the merged fleet-wide metrics.

        Each worker's snapshot is cumulative for its process, so the
        fleet view merges the latest one per worker with the
        coordinator's own registry (store/plan counters live here).
        """
        with self._telemetry_lock:
            workers = {name: dict(snap) for name, snap in self._telemetry.items()}
        fleet = merge_snapshots(
            [snap.get("metrics") or {} for snap in workers.values()]
            + [get_metrics().to_dict()]
        )
        return {"workers": workers, "fleet": fleet}

    # ------------------------------------------------------------------
    def _op_lease(self, worker: str, holding: Optional[Any] = None) -> Dict[str, Any]:
        # Note "reason", not "error": the client treats an "error" key
        # as a protocol failure and raises, which would turn the
        # graceful plan-failed shutdown into apparent unreachability.
        if self.plan.failed:
            return {"shutdown": True, "reason": self.plan.failure}
        if self.plan.done:
            return {"shutdown": True}
        job = self.plan.lease(worker, holding=holding)
        if job is None:
            if self.plan.failed:
                return {"shutdown": True, "reason": self.plan.failure}
            if self.plan.done:
                return {"shutdown": True}
            return {"wait": self.poll_s}
        reply = {"job": job.to_wire(self.plan.lease_timeout)}
        # Routing hints ride along with the grant: peer addresses for
        # every upstream key some live peer holds, so the worker can
        # pull missing inputs without a separate ``locate`` round trip.
        sources = self.plan.locate(job.upstream, exclude=worker)
        if sources:
            reply["sources"] = sources
        if self.trace_context:
            # Workers adopt this as the remote parent of their job
            # spans; old workers simply ignore the unknown key.
            reply["trace"] = dict(self.trace_context)
        return reply

    def _op_get(
        self, stage: str, digest: str, accept: Any = ()
    ) -> Tuple[Dict[str, Any], Optional[bytes], Optional[str]]:
        key = (stage, digest)
        blob = self._wire_cache.get(key)
        if blob is None:
            artifact = self.store.get(stage, digest)
            if artifact is MISS:
                return {"found": False}, None, None
            blob = pickle.dumps(artifact, protocol=pickle.HIGHEST_PROTOCOL)
            self._wire_cache.put(key, blob)
        wire_blob, encoding = encode_blob(blob, [str(c) for c in accept])
        with self._stats_lock:
            self._get_count += 1
            self._get_bytes += len(blob)
            self._get_wire_bytes += len(wire_blob)
        return {"found": True}, wire_blob, encoding

    def _op_put(self, stage: str, digest: str, blob: bytes) -> Dict[str, Any]:
        key = (stage, digest)
        with self._stats_lock:
            self._put_count += 1
            self._put_bytes += len(blob)
        if key in self.store:
            # Idempotent upload: the fingerprint already resolves, a
            # duplicate (double completion, resumed worker) is a hit.
            return {"ok": True, "stored": False}
        # No server-wide lock here: the store publish is atomic and
        # treats a lost race as a hit, so concurrent uploads (even of
        # the same key) are safe and stay parallel.  put_bytes never
        # unpickles on disk-backed stores — uploads stream to disk and
        # load lazily if the assembly actually reads them, keeping a
        # long-running coordinator's memory bounded.
        self.store.put_bytes(stage, digest, blob)
        self._wire_cache.put(key, blob)
        return {"ok": True, "stored": True}

    def transfer_stats(self) -> Dict[str, int]:
        """Artifact bytes this hub served (get) and received (put)."""
        with self._stats_lock:
            return {
                "get_count": self._get_count,
                "get_bytes": self._get_bytes,
                "get_wire_bytes": self._get_wire_bytes,
                "put_count": self._put_count,
                "put_bytes": self._put_bytes,
            }

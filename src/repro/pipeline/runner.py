"""Grid sweeps over configs with artifact reuse and process parallelism.

A sweep is a cartesian grid of :class:`~repro.core.config.SparkXDConfig`
field overrides::

    runner = Runner(SparkXDConfig.small())
    records = runner.run({
        "voltages": [(1.325,), (1.175,), (1.025,)],
        "mapping_policy": ["sparkxd", "baseline"],
    })

Every grid point runs through the staged pipeline against one shared
:class:`~repro.pipeline.store.ArtifactStore`, so points that agree on
the training-side fields share the trained model: the voltage × BER ×
mapping-policy sweep above trains the SNN exactly once and only re-runs
the cheap DRAM evaluation per point.

With ``max_workers > 1`` the expensive work is fanned out over a
:class:`concurrent.futures.ProcessPoolExecutor` in stage-aligned waves
— one job per *unique missing* fingerprint at each training depth
(upstream artifacts shipped into the workers), then one DRAM evaluation
per unique DRAM fingerprint — before the records are assembled
(deterministically, in grid order) from the warmed cache.  All result
values are identical to serial execution; only the execution-dependent
``wall_time_s`` / ``cache_hits`` / ``cache_misses`` / ``stage_timings``
record fields vary with worker count.

Each grid point yields a structured :class:`RunRecord` that serialises
to JSON/CSV via :mod:`repro.analysis.export`.
"""

from __future__ import annotations

import contextlib
import itertools
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.config import SparkXDConfig
from repro.core.results import SparkXDResult
from repro.pipeline.artifacts import DramArtifact
from repro.pipeline.stages import (
    DRAM_FIELDS,
    DramEvalStage,
    ExperimentPipeline,
    StageContext,
    default_stage_classes,
)
from repro.pipeline.store import MISS, ArtifactStore, canonical_form, config_fingerprint
from repro.telemetry import get_logger, span

LOG = get_logger(__name__)


def sweep_grid(axes: Mapping[str, Sequence[Any]]) -> List[Dict[str, Any]]:
    """Expand ``{field: values}`` axes into the cartesian list of points.

    Axis order follows the mapping's insertion order; the last axis
    varies fastest (like nested for-loops).
    """
    if not axes:
        return [{}]
    names = list(axes)
    for name in names:
        if not axes[name]:
            raise ValueError(f"sweep axis {name!r} has no values")
    return [
        dict(zip(names, combo))
        for combo in itertools.product(*(axes[name] for name in names))
    ]


@dataclass(frozen=True)
class VoltagePoint:
    """One per-voltage outcome of a run, in plain-scalar form."""

    v_supply: float
    device_ber: float
    feasible: bool
    mapping_policy: str
    energy_saving: float
    speedup: float
    energy_mj: Optional[float]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "v_supply": self.v_supply,
            "device_ber": self.device_ber,
            "feasible": self.feasible,
            "mapping_policy": self.mapping_policy,
            "energy_saving": self.energy_saving,
            "speedup": self.speedup,
            "energy_mj": self.energy_mj,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "VoltagePoint":
        return cls(
            v_supply=float(data["v_supply"]),
            device_ber=float(data["device_ber"]),
            feasible=bool(data["feasible"]),
            mapping_policy=str(data["mapping_policy"]),
            energy_saving=float(data["energy_saving"]),
            speedup=float(data["speedup"]),
            energy_mj=None if data["energy_mj"] is None else float(data["energy_mj"]),
        )


@dataclass
class RunRecord:
    """Structured summary of one grid point's full pipeline run."""

    run_id: str
    params: Dict[str, Any]
    dataset: str
    n_neurons: int
    seed: int
    representation: str
    mapping_policy: str
    baseline_accuracy: float
    improved_accuracy: float
    ber_threshold: Optional[float]
    mean_energy_saving: float
    voltages: Tuple[VoltagePoint, ...]
    wall_time_s: float
    cache_hits: int
    cache_misses: int
    #: Training engine knobs of the run (fingerprint-relevant — see
    #: docs/training.md); defaulted for pre-PR-3 payloads.
    train_batch_size: int = 1
    compute_dtype: str = "float64"
    #: Wall-clock seconds per pipeline stage *executed* for this record
    #: (stages restored from cache are absent).
    stage_timings: Dict[str, float] = field(default_factory=dict)
    #: The full result object; present on freshly-computed records, not
    #: restored by deserialisation (it is not part of the record schema).
    result: Optional[SparkXDResult] = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    @classmethod
    def from_result(
        cls,
        result: SparkXDResult,
        params: Optional[Mapping[str, Any]] = None,
        wall_time_s: float = 0.0,
        cache_hits: int = 0,
        cache_misses: int = 0,
        stage_timings: Optional[Mapping[str, float]] = None,
    ) -> "RunRecord":
        """Summarise a :class:`SparkXDResult` into a record."""
        cfg = result.config
        points = tuple(
            VoltagePoint(
                v_supply=o.v_supply,
                device_ber=o.device_ber,
                feasible=o.feasible,
                mapping_policy=o.mapping_policy,
                energy_saving=o.energy_saving,
                speedup=o.speedup,
                energy_mj=o.result.energy.total_mj if o.result else None,
            )
            for _, o in sorted(result.outcomes.items(), reverse=True)
        )
        return cls(
            run_id=config_fingerprint(cfg, DRAM_FIELDS)[:12],
            params=dict(params or {}),
            dataset=cfg.dataset,
            n_neurons=cfg.n_neurons,
            seed=cfg.seed,
            representation=cfg.representation,
            mapping_policy=cfg.mapping_policy,
            baseline_accuracy=result.baseline_model.accuracy,
            improved_accuracy=result.improved_model.accuracy,
            ber_threshold=result.ber_threshold,
            mean_energy_saving=result.mean_energy_saving(),
            voltages=points,
            wall_time_s=wall_time_s,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            train_batch_size=cfg.train_batch_size,
            compute_dtype=cfg.compute_dtype,
            stage_timings=dict(stage_timings or {}),
            result=result,
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict form (drops the heavyweight ``result``)."""
        return {
            "run_id": self.run_id,
            "params": canonical_form(self.params),
            "dataset": self.dataset,
            "n_neurons": self.n_neurons,
            "seed": self.seed,
            "representation": self.representation,
            "mapping_policy": self.mapping_policy,
            "train_batch_size": self.train_batch_size,
            "compute_dtype": self.compute_dtype,
            "baseline_accuracy": self.baseline_accuracy,
            "improved_accuracy": self.improved_accuracy,
            "ber_threshold": self.ber_threshold,
            "mean_energy_saving": self.mean_energy_saving,
            "voltages": [p.to_dict() for p in self.voltages],
            "wall_time_s": self.wall_time_s,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "stage_timings": {
                name: float(seconds)
                for name, seconds in sorted(self.stage_timings.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRecord":
        return cls(
            run_id=str(data["run_id"]),
            params=dict(data["params"]),
            dataset=str(data["dataset"]),
            n_neurons=int(data["n_neurons"]),
            seed=int(data["seed"]),
            representation=str(data["representation"]),
            mapping_policy=str(data["mapping_policy"]),
            baseline_accuracy=float(data["baseline_accuracy"]),
            improved_accuracy=float(data["improved_accuracy"]),
            ber_threshold=(
                None if data["ber_threshold"] is None else float(data["ber_threshold"])
            ),
            mean_energy_saving=float(data["mean_energy_saving"]),
            voltages=tuple(VoltagePoint.from_dict(p) for p in data["voltages"]),
            wall_time_s=float(data["wall_time_s"]),
            cache_hits=int(data["cache_hits"]),
            cache_misses=int(data["cache_misses"]),
            train_batch_size=int(data.get("train_batch_size", 1)),
            compute_dtype=str(data.get("compute_dtype", "float64")),
            stage_timings={
                str(name): float(seconds)
                for name, seconds in dict(data.get("stage_timings", {})).items()
            },
        )


# ----------------------------------------------------------------------
# Worker-process thread capping.
#
# Workers now spend most of their time in large `spikes @ weights`
# matmuls (the batched engine + minibatch trainer), and BLAS/OpenMP
# runtimes default to one thread *per core* — N workers x C BLAS
# threads oversubscribes the machine C-fold.  These variables cap every
# common runtime; they must be in the environment *before* the worker
# process first loads numpy/BLAS, which is why the pool uses the
# "spawn" start context (a forked child would inherit the parent's
# already-initialised thread pools and ignore the variables).

THREAD_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
    "BLIS_NUM_THREADS",
)


@contextlib.contextmanager
def _thread_cap_env(n_threads: int) -> Iterator[None]:
    """Temporarily pin the BLAS/OpenMP thread env vars in this process.

    Spawned worker processes inherit the environment at creation time,
    so holding the cap for the lifetime of the pool is what actually
    limits them; the parent's own (already-initialised) BLAS is
    unaffected, and the previous values are restored on exit.
    """
    saved = {var: os.environ.get(var) for var in THREAD_ENV_VARS}
    for var in THREAD_ENV_VARS:
        os.environ[var] = str(int(n_threads))
    try:
        yield
    finally:
        for var, value in saved.items():
            if value is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = value


# ----------------------------------------------------------------------
# Worker-process entry points (module-level so they pickle).
_TRAINING_STAGES = default_stage_classes()[:-1]


def _compute_stage_chain(config: SparkXDConfig, depth: int, preload=()):
    """Run the training chain up to ``depth`` (inclusive) in a worker.

    ``preload`` entries (``(stage, digest, artifact)``) seed the worker's
    local store so already-computed upstream artifacts are not redone.
    Returns every ``(stage, digest, artifact)`` the worker now holds, so
    the parent can cache prerequisites the worker had to recompute (e.g.
    after partial disk-cache eviction) along with the target artifact.
    """
    chain = tuple(cls() for cls in _TRAINING_STAGES[: depth + 1])
    local = ArtifactStore()
    for stage_name, digest, artifact in preload:
        local.put(stage_name, digest, artifact)
    ExperimentPipeline(config, stages=chain, store=local).run_stages()
    entries = []
    for stage in chain:
        digest = stage.cache_key(config)
        artifact = local.get(stage.name, digest)
        if artifact is not MISS:
            entries.append((stage.name, digest, artifact))
    return entries


def _compute_dram_artifact(
    config: SparkXDConfig,
    n_weights: int,
    bits_per_weight: int,
    ber_threshold: Optional[float],
) -> DramArtifact:
    from repro.core.dram_eval import evaluate_dram

    baseline_dram, outcomes = evaluate_dram(
        config, n_weights, bits_per_weight, ber_threshold
    )
    return DramArtifact(baseline_dram=baseline_dram, outcomes=outcomes)


class Runner:
    """Execute a grid of experiments with shared caching.

    Parameters
    ----------
    base_config:
        The config every grid point starts from (overridden per point).
    store:
        Shared artifact store; defaults to a fresh in-memory store.
        Pass a disk-backed store to reuse artifacts across sweeps.
    max_workers:
        ``1`` (default) runs serially in-process; larger values fan the
        unique training jobs and DRAM evaluations out over a process
        pool.  Result values are bit-identical either way (the timing
        and cache-statistics record fields are execution-dependent).
    threads_per_worker:
        BLAS/OpenMP threads each worker process may use (default 1 —
        one core per worker, no oversubscription from the workers'
        large matmuls).  Pass ``None`` to leave the runtimes at their
        own defaults (and keep the platform-default process start
        method); any integer cap spawns workers with the
        ``OMP_NUM_THREADS``-family variables pinned.  Note the spawn
        start method means scripts using ``max_workers > 1`` need the
        standard ``if __name__ == "__main__":`` guard on every
        platform (previously only non-Linux), exactly as the
        :mod:`multiprocessing` docs require.
    coordinator:
        A ``"host:port"`` (or ``(host, port)``) to *bind a cluster
        coordinator on* instead of computing locally: :meth:`run`
        delegates to :class:`repro.cluster.ClusterExecutor`, serving the
        grid's unique missing fingerprints to networked
        ``repro cluster worker`` agents and assembling identical records
        from the synced artifacts (see docs/cluster.md).
        ``max_workers``/``threads_per_worker`` are ignored in this mode
        — parallelism belongs to the connected workers.
    cluster_options:
        Extra keyword arguments forwarded to
        :class:`~repro.cluster.ClusterExecutor` (``lease_timeout``,
        ``max_attempts``, ``wait_timeout``, …).
    """

    def __init__(
        self,
        base_config: SparkXDConfig | None = None,
        store: Optional[ArtifactStore] = None,
        max_workers: int = 1,
        threads_per_worker: Optional[int] = 1,
        coordinator: Optional[Any] = None,
        cluster_options: Optional[Mapping[str, Any]] = None,
    ):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if threads_per_worker is not None and threads_per_worker < 1:
            raise ValueError(
                f"threads_per_worker must be >= 1 or None, got {threads_per_worker}"
            )
        if cluster_options and coordinator is None:
            raise ValueError("cluster_options requires a coordinator address")
        self.base_config = base_config or SparkXDConfig()
        self.store = store if store is not None else ArtifactStore()
        self.max_workers = max_workers
        self.threads_per_worker = threads_per_worker
        self.coordinator = coordinator
        self.cluster_options = dict(cluster_options or {})

    def _make_pool(self) -> ProcessPoolExecutor:
        """A worker pool honouring the per-worker thread cap.

        With a cap set, workers are *spawned* (fresh interpreters) so
        the pinned thread env vars are seen before numpy/BLAS loads;
        with ``threads_per_worker=None`` the platform default start
        method is kept.
        """
        if self.threads_per_worker is None:
            return ProcessPoolExecutor(max_workers=self.max_workers)
        return ProcessPoolExecutor(
            max_workers=self.max_workers,
            mp_context=multiprocessing.get_context("spawn"),
        )

    # ------------------------------------------------------------------
    def configs_for(self, grid: Mapping[str, Sequence[Any]]) -> List[SparkXDConfig]:
        return [
            self.base_config.with_overrides(**params) for params in sweep_grid(grid)
        ]

    def run(self, grid: Mapping[str, Sequence[Any]]) -> List[RunRecord]:
        """Run every grid point; return records in grid order."""
        if self.coordinator is not None:
            # Cluster mode: bind a coordinator at the given address and
            # let networked workers compute the unique fingerprints.
            # Imported here so the pipeline layer has no hard dependency
            # on the cluster subsystem.
            from repro.cluster import ClusterExecutor

            executor = ClusterExecutor(
                self.base_config,
                store=self.store,
                address=self.coordinator,
                **self.cluster_options,
            )
            return executor.run(grid)
        param_sets = sweep_grid(grid)
        configs = [self.base_config.with_overrides(**p) for p in param_sets]
        if self.max_workers > 1 and len(configs) > 1:
            self._prefill_parallel(configs)
        records: List[RunRecord] = []
        for params, config in zip(param_sets, configs):
            started = time.perf_counter()
            before = self.store.stats.snapshot()
            pipeline = ExperimentPipeline(config, store=self.store)
            with span("sweep.point", params=dict(params)):
                result = pipeline.run()
            after = self.store.stats
            records.append(
                RunRecord.from_result(
                    result,
                    params=params,
                    wall_time_s=time.perf_counter() - started,
                    cache_hits=after.hits - before.hits,
                    cache_misses=after.misses - before.misses,
                    stage_timings=pipeline.stage_timings,
                )
            )
        return records

    # ------------------------------------------------------------------
    def _prefill_parallel(self, configs: Sequence[SparkXDConfig]) -> None:
        """Warm the store: one wave per training stage, then a DRAM wave.

        Each wave computes only the *unique missing* fingerprints at
        that depth, with every cached upstream artifact shipped into the
        worker — so e.g. a ``ber_rates`` sweep trains the shared
        baseline once, and a ``tolerance_trials`` sweep re-runs only the
        tolerance analysis.  A config whose prerequisites cannot be
        assembled (partially evicted disk cache) is simply left for the
        assembly loop, which recomputes missing stages in-process.
        """
        training_chain = tuple(cls() for cls in _TRAINING_STAGES)
        baseline, _, tolerance = training_chain
        dram = DramEvalStage()

        cap = (
            _thread_cap_env(self.threads_per_worker)
            if self.threads_per_worker is not None
            else contextlib.nullcontext()
        )
        with cap, self._make_pool() as pool:
            for depth, stage in enumerate(training_chain):
                jobs: Dict[str, SparkXDConfig] = {}
                for config in configs:
                    digest = stage.cache_key(config)
                    if digest not in jobs and ((stage.name, digest) not in self.store):
                        jobs[digest] = config
                if not jobs:
                    continue
                LOG.info(
                    "prefill wave",
                    extra={"stage": stage.name, "unique_jobs": len(jobs)},
                )
                preloads = []
                for config in jobs.values():
                    entries = []
                    for prior in training_chain[:depth]:
                        prior_digest = prior.cache_key(config)
                        artifact = self.store.get(prior.name, prior_digest)
                        if artifact is not MISS:
                            entries.append((prior.name, prior_digest, artifact))
                    preloads.append(entries)
                for entries in pool.map(
                    _compute_stage_chain,
                    jobs.values(),
                    [depth] * len(jobs),
                    preloads,
                ):
                    for stage_name, digest, artifact in entries:
                        # Preloaded upstream artifacts come back with each
                        # job; only store what is actually new (a target or
                        # a recomputed-after-eviction prerequisite).
                        if (stage_name, digest) not in self.store:
                            self.store.put(stage_name, digest, artifact)

            dram_inputs = []
            dram_digests = []
            seen: set = set()
            for config in configs:
                digest = dram.cache_key(config)
                if digest in seen or ((dram.name, digest) in self.store):
                    continue
                seen.add(digest)
                baseline_artifact = self.store.get(
                    baseline.name, baseline.cache_key(config)
                )
                tolerance_artifact = self.store.get(
                    tolerance.name, tolerance.cache_key(config)
                )
                if baseline_artifact is MISS or tolerance_artifact is MISS:
                    continue  # assembly loop recomputes this point serially
                dram_inputs.append(
                    (
                        config,
                        baseline_artifact.model.weights.size,
                        StageContext(config).representation.bits_per_weight,
                        tolerance_artifact.ber_threshold,
                    )
                )
                dram_digests.append(digest)
            if dram_inputs:
                for digest, artifact in zip(
                    dram_digests,
                    pool.map(_compute_dram_artifact, *zip(*dram_inputs)),
                ):
                    self.store.put(dram.name, digest, artifact)

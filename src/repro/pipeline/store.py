"""Content-addressed artifact caching.

An :class:`ArtifactStore` maps ``(stage name, config fingerprint)`` keys
to stage artifacts.  The fingerprint hashes exactly the configuration
fields the stage's computation depends on (each stage declares them),
so:

- a sweep over DRAM-side knobs (voltages, weak-cell sigma, mapping
  policy, device spec) hits the cached training artifacts and only the
  cheap ``dram-eval`` stage re-runs;
- changing any training-side field (dataset, seed, BER schedule, …)
  changes the fingerprint and transparently invalidates everything
  downstream.

The store is in-memory by default; give it a ``root`` directory to
persist artifacts across processes and sessions.  Disk persistence uses
``pickle`` — only point ``root`` at a directory you trust, exactly like
any other local build cache.
"""

from __future__ import annotations

import contextlib
import copy
import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Set, Tuple, Union

from repro.telemetry import get_logger, get_metrics

LOG = get_logger(__name__)

#: Sentinel distinguishing "no cached artifact" from a cached ``None``.
MISS = object()


def canonical_form(value: Any) -> Any:
    """Reduce a config value to JSON-serialisable canonical form."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: canonical_form(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, (tuple, list)):
        return [canonical_form(v) for v in value]
    if isinstance(value, dict):
        return {str(k): canonical_form(v) for k, v in sorted(value.items())}
    return value


def fingerprint(payload: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``payload``."""
    text = json.dumps(canonical_form(payload), sort_keys=True, default=str)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def config_fingerprint(config: Any, fields: Sequence[str]) -> str:
    """Fingerprint of the named ``config`` attributes only."""
    return fingerprint({name: getattr(config, name) for name in sorted(fields)})


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`ArtifactStore`."""

    hits: int = 0
    misses: int = 0
    puts: int = 0

    def snapshot(self) -> "CacheStats":
        return CacheStats(hits=self.hits, misses=self.misses, puts=self.puts)


@dataclass(frozen=True)
class PruneReport:
    """What one :meth:`ArtifactStore.prune` pass evicted and kept.

    With ``dry_run`` set the pass deleted nothing: the removed/freed
    numbers describe what a real pass with the same budget *would*
    evict.
    """

    removed_files: int
    freed_bytes: int
    kept_files: int
    kept_bytes: int
    dry_run: bool = False

    def to_dict(self) -> dict:
        return {
            "removed_files": self.removed_files,
            "freed_bytes": self.freed_bytes,
            "kept_files": self.kept_files,
            "kept_bytes": self.kept_bytes,
            "dry_run": self.dry_run,
        }


class ArtifactStore:
    """In-memory (optionally disk-backed) artifact cache.

    Keys are ``(stage_name, fingerprint)`` pairs.  All artifacts must be
    picklable when ``root`` is set.
    """

    def __init__(self, root: Optional[Union[str, Path]] = None):
        self.root = Path(root) if root is not None else None
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
        self._memory: Dict[Tuple[str, str], Any] = {}
        self.stats = CacheStats()
        # The memory map and the CacheStats counters are read-modify-
        # written from every thread of a ThreadingTCPServer coordinator
        # (has/get/put handlers), so all their mutations go through this
        # lock.  File I/O deliberately stays outside it: disk publishes
        # are atomic (and treat a lost race as a hit), so artifact
        # traffic from many workers stays concurrent.
        self._lock = threading.RLock()

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]  # locks don't pickle; each process gets its own
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.RLock()

    def stats_view(self) -> "ArtifactStore":
        """A view sharing this store's memory, disk and lock — but with
        its own fresh :class:`CacheStats`.

        Lets one reader attribute hits/misses to *its* traffic while
        other threads hammer the same store through the original handle
        (the cluster executor's overlapped assembly runs while worker
        uploads are still being served).
        """
        view = copy.copy(self)
        view._lock = self._lock  # one lock per underlying store
        view.stats = CacheStats()
        return view

    # ------------------------------------------------------------------
    def _path(self, key: Tuple[str, str]) -> Path:
        stage, digest = key
        return self.root / stage / f"{digest}.pkl"

    def get(self, stage: str, digest: str) -> Any:
        """Return the cached artifact or the :data:`MISS` sentinel."""
        key = (stage, digest)
        with self._lock:
            if key in self._memory:
                self.stats.hits += 1
                artifact = self._memory[key]
                served_from_memory = True
            else:
                served_from_memory = False
        if served_from_memory:
            get_metrics().counter("store.hits").inc()
            if self.root is not None:
                # Keep prune()'s LRU ranking honest for artifacts served
                # from memory: their disk twin is still "in use".
                with contextlib.suppress(OSError):
                    os.utime(self._path(key), None)
            return artifact
        if self.root is not None:
            path = self._path(key)
            if path.exists():
                # Load outside the lock: two threads racing on one key
                # both unpickle the same published bytes and the loser
                # merely overwrites an identical object.
                with open(path, "rb") as handle:
                    artifact = pickle.load(handle)
                # Refresh the mtime so prune()'s LRU ordering reflects
                # use, not just creation.
                with contextlib.suppress(OSError):
                    os.utime(path, None)
                with self._lock:
                    self._memory[key] = artifact
                    self.stats.hits += 1
                get_metrics().counter("store.hits").inc()
                return artifact
        with self._lock:
            self.stats.misses += 1
        get_metrics().counter("store.misses").inc()
        return MISS

    def put(self, stage: str, digest: str, artifact: Any) -> None:
        key = (stage, digest)
        with self._lock:
            self._memory[key] = artifact
            self.stats.puts += 1
        get_metrics().counter("store.puts").inc()
        if self.root is not None:
            self._publish(
                key, lambda: pickle.dumps(artifact, protocol=pickle.HIGHEST_PROTOCOL)
            )

    def put_bytes(self, stage: str, digest: str, blob: bytes) -> None:
        """Store an already-pickled artifact without unpickling it.

        The fast path of the cluster coordinator's artifact uploads: a
        disk-backed store writes ``blob`` straight to the artifact file
        and does *not* retain the object in memory — the artifact loads
        lazily on first :meth:`get`, so a long-running coordinator's
        memory is bounded by what it actually reads, not by everything
        workers ever pushed.  A memory-only store has nowhere else to
        keep it and falls back to unpickling.
        """
        if self.root is None:
            self.put(stage, digest, pickle.loads(blob))
            return
        with self._lock:
            self.stats.puts += 1
        get_metrics().counter("store.puts").inc()
        self._publish((stage, digest), lambda: blob)

    def _publish(self, key: Tuple[str, str], make_blob) -> None:
        """Atomically write ``make_blob()`` to the key's artifact file.

        Content-addressed keys make losing a write race a *hit*: a
        concurrent writer (another sweep worker, a cluster artifact
        upload) already published an equivalent artifact under this
        fingerprint, so skip the redundant write and just refresh the
        LRU rank.
        """
        path = self._path(key)
        if path.exists():
            with contextlib.suppress(OSError):
                os.utime(path, None)
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        # Write to a per-writer temp file, then atomically publish:
        # concurrent processes sharing the cache dir never observe a
        # partial pickle, even when racing on the same key.
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[1][:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(make_blob())
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise

    def prune(self, max_bytes: int, dry_run: bool = False) -> PruneReport:
        """Evict least-recently-used disk artifacts down to a byte budget.

        Artifact files are ranked by mtime (refreshed on every disk
        read, so ranking is least-recently-*used*) and deleted oldest
        first until the total size is at most ``max_bytes``.  Evicted
        artifacts are also dropped from the in-memory map, so the store
        behaves as if they were never cached.  Requires a disk-backed
        store (``root`` set).

        With ``dry_run=True`` nothing is deleted (disk and memory are
        untouched); the returned report describes what the same budget
        would evict.
        """
        if self.root is None:
            raise ValueError("prune() requires a disk-backed store (root=...)")
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        entries = []
        for path in self.root.glob("*/*.pkl"):
            with contextlib.suppress(OSError):
                stat = path.stat()
                entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort(key=lambda item: item[0])
        total = sum(size for _, size, _ in entries)
        removed = freed = 0
        for _, size, path in entries:
            if total <= max_bytes:
                break
            if not dry_run:
                try:
                    path.unlink()
                except OSError:
                    continue
                with self._lock:
                    self._memory.pop((path.parent.name, path.stem), None)
            removed += 1
            freed += size
            total -= size
        LOG.info(
            "store prune",
            extra={
                "removed_files": removed,
                "freed_bytes": freed,
                "kept_bytes": total,
                "dry_run": dry_run,
            },
        )
        return PruneReport(
            removed_files=removed,
            freed_bytes=freed,
            kept_files=len(entries) - removed,
            kept_bytes=total,
            dry_run=dry_run,
        )

    def __contains__(self, key: Tuple[str, str]) -> bool:
        with self._lock:
            if key in self._memory:
                return True
        return self.root is not None and self._path(key).exists()

    def __len__(self) -> int:
        """Distinct cached artifacts — disk entries included.

        A disk-backed store counts what is actually cached, not just
        what has been faulted into memory (an uploaded-but-never-read
        artifact is cached all the same).  Memory-only keys whose disk
        twin vanished are still counted once.
        """
        with self._lock:
            keys: Set[Tuple[str, str]] = set(self._memory)
        if self.root is not None:
            for path in self.root.glob("*/*.pkl"):
                keys.add((path.parent.name, path.stem))
        return len(keys)

    def clear(self) -> None:
        """Drop every in-memory entry (disk entries are left alone)."""
        with self._lock:
            self._memory.clear()

"""Typed artifacts exchanged between pipeline stages.

Each stage consumes the artifacts of its prerequisites and produces one
artifact of its own.  Artifacts are plain picklable dataclasses so the
:class:`~repro.pipeline.store.ArtifactStore` can cache them (in memory
or on disk) and the :class:`~repro.pipeline.runner.Runner` can ship
them across worker processes.

Reproducibility note: the classic monolithic run threads one
``numpy.random.Generator`` through training, fault-aware fine-tuning
and tolerance analysis in sequence.  To keep staged execution
*byte-identical* with that flow — including when a stage is restored
from cache and only its successors re-run — every training-side
artifact records the generator state (``rng_state``) at the moment the
stage finished, and the next stage resumes from exactly that state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.fault_aware_training import FaultAwareTrainingResult
from repro.core.results import VoltageOutcome
from repro.core.tolerance_analysis import ToleranceReport
from repro.dram.controller import TraceExecutionResult
from repro.snn.training import TrainedModel


@dataclass
class BaselineArtifact:
    """Output of ``train-baseline``: the error-free model (``model0``)."""

    model: TrainedModel
    rng_state: dict


@dataclass
class TrainingArtifact:
    """Output of ``fault-aware-train``: Algorithm 1's improved model."""

    training: FaultAwareTrainingResult
    rng_state: dict

    @property
    def model(self) -> TrainedModel:
        return self.training.model


@dataclass
class ToleranceArtifact:
    """Output of ``tolerance-analysis``: the Section IV-C report."""

    report: ToleranceReport
    rng_state: dict

    @property
    def ber_threshold(self):
        return self.report.ber_threshold


@dataclass
class DramArtifact:
    """Output of ``dram-eval``: trace executions at every voltage."""

    baseline_dram: TraceExecutionResult
    outcomes: Dict[float, VoltageOutcome] = field(default_factory=dict)

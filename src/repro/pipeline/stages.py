"""Composable pipeline stages and their executor.

The Fig. 7 flow decomposes into four stages, each a small object with

- ``name`` — its identity in the artifact cache and progress output;
- ``requires`` / ``provides`` — the artifact keys it consumes/produces;
- ``fields`` — the :class:`~repro.core.config.SparkXDConfig` attributes
  its computation depends on (the basis of its cache fingerprint);
- ``run(context, artifacts)`` — the computation itself.

``fields`` grow monotonically along the chain (each stage's set is a
superset of its predecessor's), which makes caching sound: two configs
that agree on a stage's fields agree on everything that influenced the
cached artifact, including its recorded RNG state.

:class:`ExperimentPipeline` executes the stages in order against an
:class:`~repro.pipeline.store.ArtifactStore`, skipping any stage whose
artifact is already cached, and assembles the classic
:class:`~repro.core.results.SparkXDResult`.  Running the staged
pipeline with a fixed seed is byte-identical to the pre-redesign
monolithic ``SparkXD.run()``.
"""

from __future__ import annotations

import abc
from functools import cached_property
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import SparkXDConfig
from repro.core.dram_eval import evaluate_dram
from repro.core.fault_aware_training import improve_error_tolerance, train_baseline
from repro.core.results import SparkXDResult
from repro.core.tolerance_analysis import analyze_error_tolerance
from repro.datasets import load_dataset
from repro.errors.injection import ErrorInjector
from repro.errors.models import make_error_model
from repro.pipeline.artifacts import (
    BaselineArtifact,
    DramArtifact,
    ToleranceArtifact,
    TrainingArtifact,
)
from repro.pipeline.store import MISS, ArtifactStore, config_fingerprint
from repro.registry import Registry
from repro.rng import restored_rng
from repro.snn.quantization import make_representation
from repro.telemetry import timed_span

# ----------------------------------------------------------------------
# Config-field groups, cumulative along the stage chain.
WORKLOAD_FIELDS: Tuple[str, ...] = ("dataset", "n_train", "n_test", "dataset_seed")
BASELINE_FIELDS: Tuple[str, ...] = WORKLOAD_FIELDS + (
    "n_neurons",
    "n_steps",
    "baseline_epochs",
    "representation",
    "seed",
    # Unlike `engine` (result-identical, fingerprint-neutral), these two
    # change the trained weights and so invalidate the training chain.
    "train_batch_size",
    "compute_dtype",
)
TRAINING_FIELDS: Tuple[str, ...] = BASELINE_FIELDS + (
    "ber_rates",
    "epochs_per_rate",
    "accuracy_bound",
    "error_model",
    # "shared" replays the first stage's encoded stream at every later
    # BER stage — result-changing, so it invalidates the training chain.
    "stage_encoding",
)
TOLERANCE_FIELDS: Tuple[str, ...] = TRAINING_FIELDS + ("tolerance_trials",)
DRAM_FIELDS: Tuple[str, ...] = TOLERANCE_FIELDS + (
    "dram_spec",
    "voltages",
    "mapping_policy",
    "weak_cell_sigma",
    "weak_cell_seed",
    "refetch_passes",
)


class StageContext:
    """Lazily-built shared inputs of one pipeline execution.

    Everything here is a pure function of the config (dataset
    generation, storage representation, error injector), so a run whose
    stages all hit the cache never pays for building any of it.
    """

    def __init__(self, config: SparkXDConfig):
        self.config = config

    @cached_property
    def dataset(self):
        cfg = self.config
        return load_dataset(cfg.dataset, cfg.n_train, cfg.n_test, cfg.dataset_seed)

    @cached_property
    def representation(self):
        cfg = self.config
        if cfg.representation in ("float32", "fp32"):
            # Decoded weights saturate into the synapse's physical range.
            return make_representation(cfg.representation, clip_range=(0.0, 1.0))
        return make_representation(cfg.representation)

    @cached_property
    def injector(self) -> ErrorInjector:
        return ErrorInjector(
            self.representation,
            model=make_error_model(self.config.error_model),
            seed=self.config.seed + 1,
        )


class Stage(abc.ABC):
    """One step of the experiment pipeline."""

    name: str
    requires: Tuple[str, ...] = ()
    provides: str
    #: Config attributes the stage output depends on (cache fingerprint).
    fields: Tuple[str, ...] = ()

    def cache_key(self, config: SparkXDConfig) -> str:
        return config_fingerprint(config, self.fields)

    @abc.abstractmethod
    def run(self, context: StageContext, artifacts: Dict[str, object]):
        """Compute this stage's artifact from ``context`` + prerequisites."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


#: Registry of stages; external scenarios may register replacements or
#: additional stages and pass a custom chain to ExperimentPipeline.
PIPELINE_STAGES = Registry("pipeline stage")


@PIPELINE_STAGES.register("train-baseline")
class TrainBaselineStage(Stage):
    """Step 1: train the error-free baseline SNN (``model0``)."""

    name = "train-baseline"
    requires = ()
    provides = "baseline"
    # ``representation`` is fingerprinted one stage early (the injector
    # consumes it from fault-aware training onwards); keeping the field
    # groups strictly cumulative beats saving one spurious cache split.
    fields = BASELINE_FIELDS  # lint: disable=fingerprint-completeness

    def run(self, context, artifacts) -> BaselineArtifact:
        cfg = context.config
        rng = np.random.default_rng(cfg.seed)
        model = train_baseline(
            context.dataset,
            cfg.n_neurons,
            epochs=cfg.baseline_epochs,
            n_steps=cfg.n_steps,
            rng=rng,
            # ``engine`` is result-identical by the repro.engine
            # equivalence guarantee (enforced in CI), so it is
            # deliberately fingerprint-neutral here and below.
            engine=cfg.engine,  # lint: disable=fingerprint-completeness
            batch_size=cfg.train_batch_size,
            dtype=np.dtype(cfg.compute_dtype),
        )
        return BaselineArtifact(model=model, rng_state=rng.bit_generator.state)


@PIPELINE_STAGES.register("fault-aware-train")
class FaultAwareTrainStage(Stage):
    """Step 2: Algorithm 1 — progressive fault-aware fine-tuning."""

    name = "fault-aware-train"
    requires = ("baseline",)
    provides = "training"
    fields = TRAINING_FIELDS

    def run(self, context, artifacts) -> TrainingArtifact:
        cfg = context.config
        baseline: BaselineArtifact = artifacts["baseline"]
        rng = restored_rng(baseline.rng_state)
        training = improve_error_tolerance(
            baseline.model,
            context.dataset,
            context.injector,
            rates=cfg.ber_rates,
            epochs_per_rate=cfg.epochs_per_rate,
            n_steps=cfg.n_steps,
            accuracy_bound=cfg.accuracy_bound,
            rng=rng,
            engine=cfg.engine,  # lint: disable=fingerprint-completeness
            batch_size=cfg.train_batch_size,
            dtype=np.dtype(cfg.compute_dtype),
            stage_encoding=cfg.stage_encoding,
        )
        return TrainingArtifact(training=training, rng_state=rng.bit_generator.state)


@PIPELINE_STAGES.register("tolerance-analysis")
class ToleranceStage(Stage):
    """Step 3: find the maximum tolerable BER (Section IV-C)."""

    name = "tolerance-analysis"
    requires = ("baseline", "training")
    provides = "tolerance"
    fields = TOLERANCE_FIELDS

    def run(self, context, artifacts) -> ToleranceArtifact:
        cfg = context.config
        baseline: BaselineArtifact = artifacts["baseline"]
        training: TrainingArtifact = artifacts["training"]
        rng = restored_rng(training.rng_state)
        report = analyze_error_tolerance(
            training.model,
            context.dataset,
            context.injector,
            rates=cfg.ber_rates,
            baseline_accuracy=baseline.model.accuracy,
            accuracy_bound=cfg.accuracy_bound,
            n_steps=cfg.n_steps,
            trials=cfg.tolerance_trials,
            rng=rng,
            engine=cfg.engine,  # lint: disable=fingerprint-completeness
            dtype=np.dtype(cfg.compute_dtype),
        )
        return ToleranceArtifact(report=report, rng_state=rng.bit_generator.state)


@PIPELINE_STAGES.register("dram-eval")
class DramEvalStage(Stage):
    """Step 4: DRAM mapping + trace execution at every voltage."""

    name = "dram-eval"
    requires = ("baseline", "tolerance")
    provides = "dram"
    fields = DRAM_FIELDS

    def run(self, context, artifacts) -> DramArtifact:
        baseline: BaselineArtifact = artifacts["baseline"]
        tolerance: ToleranceArtifact = artifacts["tolerance"]
        baseline_dram, outcomes = evaluate_dram(
            context.config,
            n_weights=baseline.model.weights.size,
            bits_per_weight=context.representation.bits_per_weight,
            ber_threshold=tolerance.ber_threshold,
        )
        return DramArtifact(baseline_dram=baseline_dram, outcomes=outcomes)


def default_stage_classes() -> Tuple[type, ...]:
    """The canonical stage classes, in execution order.

    The sweep runner and the cluster coordinator/worker both construct
    per-depth chain prefixes from this tuple, so a "run the chain up to
    depth *d*" job means the same thing on every host.
    """
    return (
        TrainBaselineStage,
        FaultAwareTrainStage,
        ToleranceStage,
        DramEvalStage,
    )


def default_stages() -> Tuple[Stage, ...]:
    """The canonical four-stage SparkXD chain, in execution order."""
    return tuple(cls() for cls in default_stage_classes())


class ExperimentPipeline:
    """Execute a stage chain for one config against an artifact store.

    >>> store = ArtifactStore()
    >>> result = ExperimentPipeline(config, store=store).run()
    >>> # same training fields, new voltages: training stages hit cache
    >>> warm = ExperimentPipeline(
    ...     config.with_overrides(voltages=(1.175,)), store=store
    ... ).run()
    """

    def __init__(
        self,
        config: SparkXDConfig | None = None,
        stages: Optional[Sequence[Stage]] = None,
        store: Optional[ArtifactStore] = None,
    ):
        self.config = config or SparkXDConfig()
        self.stages = tuple(stages) if stages is not None else default_stages()
        self.store = store if store is not None else ArtifactStore()
        #: Wall-clock seconds per *executed* stage of the latest
        #: :meth:`run_stages` call (cache hits don't appear: restoring
        #: an artifact costs no stage time worth recording).  Backed by
        #: the telemetry stage spans: each value is the ``duration_s``
        #: of the ``stage.<name>`` span around the same ``run()`` call,
        #: i.e. the same ``perf_counter()`` delta as before telemetry.
        self.stage_timings: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def run_stages(self) -> Dict[str, object]:
        """Run (or restore) every stage; return artifacts by key."""
        artifacts: Dict[str, object] = {}
        context: Optional[StageContext] = None
        self.stage_timings = {}
        for stage in self.stages:
            digest = stage.cache_key(self.config)
            cached = self.store.get(stage.name, digest)
            if cached is not MISS:
                artifacts[stage.provides] = cached
                continue
            missing = [key for key in stage.requires if key not in artifacts]
            if missing:
                raise ValueError(
                    f"stage {stage.name!r} requires artifacts {missing} that no "
                    "earlier stage provides; check the stage chain order"
                )
            if context is None:
                context = StageContext(self.config)
            with timed_span(f"stage.{stage.name}", fingerprint=digest) as stage_span:
                artifact = stage.run(context, artifacts)
            self.stage_timings[stage.name] = stage_span.duration_s
            self.store.put(stage.name, digest, artifact)
            artifacts[stage.provides] = artifact
        return artifacts

    def run(self) -> SparkXDResult:
        """Run the default chain and assemble a :class:`SparkXDResult`."""
        artifacts = self.run_stages()
        for key in ("baseline", "training", "tolerance", "dram"):
            if key not in artifacts:
                raise ValueError(
                    f"stage chain produced no {key!r} artifact; "
                    "use run_stages() for custom chains"
                )
        baseline: BaselineArtifact = artifacts["baseline"]
        training: TrainingArtifact = artifacts["training"]
        tolerance: ToleranceArtifact = artifacts["tolerance"]
        dram: DramArtifact = artifacts["dram"]
        return SparkXDResult(
            config=self.config,
            baseline_model=baseline.model,
            improved_model=training.model,
            training=training.training,
            tolerance=tolerance.report,
            baseline_dram=dram.baseline_dram,
            outcomes=dram.outcomes,
        )

"""The staged experiment pipeline: compose, cache, sweep.

The Fig. 7 flow is exposed as four composable stages —
``train-baseline`` → ``fault-aware-train`` → ``tolerance-analysis`` →
``dram-eval`` — executed by :class:`ExperimentPipeline` against a
content-addressed :class:`ArtifactStore`, and fanned out over parameter
grids by :class:`Runner`.

Staged usage::

    from repro import SparkXDConfig
    from repro.pipeline import ArtifactStore, ExperimentPipeline, Runner

    store = ArtifactStore()                      # or ArtifactStore("cache/")
    result = ExperimentPipeline(SparkXDConfig.small(), store=store).run()

    # Sweep DRAM-side knobs: the SNN above is NOT retrained.
    records = Runner(SparkXDConfig.small(), store=store, max_workers=4).run(
        {"voltages": [(1.325,), (1.175,), (1.025,)],
         "mapping_policy": ["sparkxd", "baseline"]}
    )

The classic ``SparkXD(config).run()`` facade produces byte-identical
results at the same seed and accepts the same ``store``.
"""

from repro.pipeline.artifacts import (
    BaselineArtifact,
    DramArtifact,
    ToleranceArtifact,
    TrainingArtifact,
)
from repro.pipeline.runner import Runner, RunRecord, VoltagePoint, sweep_grid
from repro.pipeline.stages import (
    DramEvalStage,
    ExperimentPipeline,
    FaultAwareTrainStage,
    PIPELINE_STAGES,
    Stage,
    StageContext,
    ToleranceStage,
    TrainBaselineStage,
    default_stage_classes,
    default_stages,
)
from repro.pipeline.store import (
    ArtifactStore,
    CacheStats,
    PruneReport,
    canonical_form,
    config_fingerprint,
    fingerprint,
)

__all__ = [
    "ArtifactStore",
    "BaselineArtifact",
    "CacheStats",
    "canonical_form",
    "DramArtifact",
    "DramEvalStage",
    "ExperimentPipeline",
    "FaultAwareTrainStage",
    "PIPELINE_STAGES",
    "PruneReport",
    "Runner",
    "RunRecord",
    "Stage",
    "StageContext",
    "ToleranceArtifact",
    "ToleranceStage",
    "TrainBaselineStage",
    "TrainingArtifact",
    "VoltagePoint",
    "config_fingerprint",
    "default_stage_classes",
    "default_stages",
    "fingerprint",
    "sweep_grid",
]

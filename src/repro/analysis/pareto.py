"""Accuracy-versus-energy trade-off exploration.

The paper fixes the accuracy bound at 1% and reports the resulting
energy saving.  A system designer usually wants the whole frontier:
*how much more energy could I save if I accepted 2%? 5%?*  This module
sweeps the accuracy bound, re-runs the tolerance decision and the
voltage selection for each, and reports the frontier — an extension
experiment enabled by (not contained in) the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.tolerance_analysis import ToleranceReport
from repro.core.voltage_selection import VoltageDecision, select_operating_voltage
from repro.dram.specs import DramSpec
from repro.errors.ber import BerVoltageCurve, DEFAULT_BER_CURVE
from repro.errors.weak_cells import WeakCellMap


@dataclass(frozen=True)
class ParetoPoint:
    """One accuracy-bound corner of the trade-off frontier."""

    accuracy_bound: float
    ber_threshold: Optional[float]
    decision: VoltageDecision

    @property
    def energy_saving(self) -> float:
        return self.decision.estimated_access_saving

    @property
    def v_selected(self) -> float:
        return self.decision.v_selected


def tolerance_frontier(
    report: ToleranceReport,
    spec: DramSpec,
    n_weights: int,
    bits_per_weight: int,
    accuracy_bounds: Sequence[float] = (0.005, 0.01, 0.02, 0.05, 0.10),
    voltages: Sequence[float] = (1.325, 1.250, 1.175, 1.100, 1.025),
    weak_cells: Optional[WeakCellMap] = None,
    ber_curve: BerVoltageCurve = DEFAULT_BER_CURVE,
) -> Tuple[ParetoPoint, ...]:
    """The energy-saving frontier across accuracy bounds.

    Reuses the measured tolerance *curve* (accuracy at each BER) so no
    retraining or re-evaluation is needed: each bound just moves the
    pass/fail line, reselecting ``BER_th`` and the operating voltage.
    """
    if not report.points:
        raise ValueError("tolerance report has no measured points")
    points = []
    for bound in sorted(accuracy_bounds):
        if bound < 0:
            raise ValueError(f"accuracy bounds must be >= 0, got {bound}")
        target = report.baseline_accuracy - bound
        passing = [p.ber for p in report.points if p.accuracy >= target]
        threshold = max(passing) if passing else None
        decision = select_operating_voltage(
            spec,
            n_weights,
            bits_per_weight,
            threshold,
            voltages=voltages,
            weak_cells=weak_cells,
            ber_curve=ber_curve,
        )
        points.append(
            ParetoPoint(accuracy_bound=bound, ber_threshold=threshold, decision=decision)
        )
    return tuple(points)


def frontier_is_monotone(points: Sequence[ParetoPoint]) -> bool:
    """Looser accuracy bounds can never save less energy."""
    savings = [p.energy_saving for p in points]
    return all(a <= b + 1e-12 for a, b in zip(savings, savings[1:]))

"""Plain-text table formatting for benchmark output.

The benchmark harness prints the same rows/series the paper's tables
and figures report; these helpers keep that output aligned and
readable without any plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table."""
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != 0 and abs(value) < 1e-2:
            return f"{value:.2e}"
        return f"{value:.4g}"
    return str(value)


def format_percent_row(label: str, values: Sequence[float]) -> str:
    """One label plus percentage-formatted values (Table I style)."""
    cells = "  ".join(f"{v:7.2%}" for v in values)
    return f"{label:<28}{cells}"

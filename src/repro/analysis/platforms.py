"""SNN hardware platform energy models (for the paper's Fig. 1b).

Fig. 1(b) shows the energy breakdown of SNN processing on TrueNorth,
PEASE and SNNAP (adapted from Krithivasan et al. [5]): memory accesses
dominate, consuming roughly 50–75% of total energy across platforms.

Each :class:`PlatformModel` carries per-operation energy coefficients
(compute per synaptic operation, communication per spike event, memory
per weight-bit fetched).  Running an SNN workload's operation counts
through a model yields the breakdown; the coefficients are calibrated so
the three platforms land inside the ranges the paper's figure shows —
that relative structure (memory dominates everywhere) is the claim the
figure supports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class SNNWorkload:
    """Operation counts of one SNN inference pass."""

    synaptic_ops: int
    spike_events: int
    weight_bits_fetched: int

    def __post_init__(self):
        for name in ("synaptic_ops", "spike_events", "weight_bits_fetched"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    @classmethod
    def for_network(
        cls,
        n_input: int,
        n_neurons: int,
        n_steps: int,
        input_rate: float = 0.05,
        output_rate: float = 0.02,
        bits_per_weight: int = 32,
    ) -> "SNNWorkload":
        """Estimate counts for the Fig. 4(a) fully-connected network."""
        if not 0 <= input_rate <= 1 or not 0 <= output_rate <= 1:
            raise ValueError("rates must lie in [0, 1]")
        input_spikes = int(n_input * n_steps * input_rate)
        output_spikes = int(n_neurons * n_steps * output_rate)
        return cls(
            synaptic_ops=input_spikes * n_neurons,
            spike_events=input_spikes + output_spikes,
            weight_bits_fetched=n_input * n_neurons * bits_per_weight,
        )


@dataclass(frozen=True)
class PlatformModel:
    """Per-operation energy coefficients of one SNN platform (picojoules)."""

    name: str
    compute_pj_per_op: float
    communication_pj_per_spike: float
    memory_pj_per_bit: float

    def breakdown(self, workload: SNNWorkload) -> Dict[str, float]:
        """Absolute energy per category for one workload (picojoules)."""
        return {
            "computation": self.compute_pj_per_op * workload.synaptic_ops,
            "communication": self.communication_pj_per_spike * workload.spike_events,
            "memory": self.memory_pj_per_bit * workload.weight_bits_fetched,
        }

    def fractions(self, workload: SNNWorkload) -> Dict[str, float]:
        """Energy breakdown normalised to fractions summing to 1."""
        absolute = self.breakdown(workload)
        total = sum(absolute.values())
        if total <= 0:
            raise ValueError("workload produced zero energy")
        return {k: v / total for k, v in absolute.items()}


# Coefficients calibrated against the relative breakdowns of Fig. 1(b):
# memory dominates on all three platforms (~50-75%), TrueNorth spends
# relatively more on communication (its spike-routing mesh), SNNAP on
# compute (its MAC-style approximate datapath).
TRUENORTH = PlatformModel(
    name="TrueNorth",
    compute_pj_per_op=0.30,
    communication_pj_per_spike=260.0,
    memory_pj_per_bit=0.45,
)
PEASE = PlatformModel(
    name="PEASE",
    compute_pj_per_op=0.42,
    communication_pj_per_spike=120.0,
    memory_pj_per_bit=0.35,
)
SNNAP = PlatformModel(
    name="SNNAP",
    compute_pj_per_op=0.80,
    communication_pj_per_spike=80.0,
    memory_pj_per_bit=0.60,
)

PAPER_PLATFORMS: Tuple[PlatformModel, ...] = (TRUENORTH, PEASE, SNNAP)


def energy_breakdown(
    platform: PlatformModel,
    n_input: int = 784,
    n_neurons: int = 400,
    n_steps: int = 100,
) -> Dict[str, float]:
    """Fractional breakdown of one platform on the paper's workload."""
    workload = SNNWorkload.for_network(n_input, n_neurons, n_steps)
    return platform.fractions(workload)

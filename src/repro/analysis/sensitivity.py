"""Bit-position sensitivity of stored weights.

Fig. 11's label-2 observation: "when the bit errors flip the most
significant bits (MSBs) of weights, they change the corresponding
weight values and the accuracy may be decreased significantly", while
flips in less significant bits barely matter.

This module quantifies that claim: flip *only* one bit position across
a sampled fraction of the weights and measure the accuracy (or, more
cheaply, the weight perturbation) per position.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.datasets.base import Dataset
from repro.snn.network import DiehlCookNetwork, NetworkParameters
from repro.snn.training import TrainedModel, evaluate_accuracy


@dataclass(frozen=True)
class BitSensitivityPoint:
    """Impact of flipping one stored bit position."""

    bit_position: int
    flip_fraction: float
    mean_weight_change: float
    accuracy: Optional[float] = None


def flip_single_position(
    weights: np.ndarray,
    representation,
    bit_position: int,
    flip_fraction: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Flip bit ``bit_position`` of a random ``flip_fraction`` of weights."""
    if not 0.0 < flip_fraction <= 1.0:
        raise ValueError(f"flip_fraction must be in (0, 1], got {flip_fraction}")
    bpw = representation.bits_per_weight
    if not 0 <= bit_position < bpw:
        raise IndexError(f"bit_position must be in [0, {bpw})")
    n = int(np.size(weights))
    count = max(1, int(round(flip_fraction * n)))
    victims = rng.choice(n, size=count, replace=False)
    flat_bits = victims.astype(np.int64) * bpw + bit_position
    words = representation.encode(weights)
    corrupted = representation.flip_bits(np.ravel(words), flat_bits)
    return representation.decode(corrupted).reshape(np.shape(weights))


def weight_perturbation_by_bit(
    weights: np.ndarray,
    representation,
    flip_fraction: float = 0.05,
    bit_positions: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> Tuple[BitSensitivityPoint, ...]:
    """Mean |Δweight| caused by flipping each stored bit position."""
    rng = np.random.default_rng(seed)
    bpw = representation.bits_per_weight
    positions = tuple(bit_positions) if bit_positions is not None else tuple(range(bpw))
    clean = representation.decode(np.ravel(representation.encode(weights))).reshape(
        np.shape(weights)
    )
    points = []
    for bit in positions:
        corrupted = flip_single_position(
            weights, representation, bit, flip_fraction, rng
        )
        changed = np.abs(corrupted - clean)
        # mean over the actually flipped weights (others are zero)
        nonzero = changed[changed > 0]
        mean_change = float(nonzero.mean()) if nonzero.size else 0.0
        points.append(
            BitSensitivityPoint(
                bit_position=bit,
                flip_fraction=flip_fraction,
                mean_weight_change=mean_change,
            )
        )
    return tuple(points)


def accuracy_by_bit(
    model: TrainedModel,
    dataset: Dataset,
    representation,
    bit_positions: Sequence[int],
    flip_fraction: float = 0.05,
    n_steps: int = 80,
    seed: int = 0,
    n_classes: int = 10,
) -> Tuple[BitSensitivityPoint, ...]:
    """Classification accuracy with one stored bit position flipped.

    The expensive variant of :func:`weight_perturbation_by_bit`: runs
    the SNN on the test split for every probed position.
    """
    rng = np.random.default_rng(seed)
    network = DiehlCookNetwork(
        NetworkParameters(n_input=model.n_input, n_neurons=model.n_neurons), rng=rng
    )
    model.install_into(network)
    points = []
    for bit in bit_positions:
        corrupted = flip_single_position(
            model.weights, representation, bit, flip_fraction, rng
        )
        network.set_weights(corrupted)
        accuracy = evaluate_accuracy(
            network,
            dataset.test_images,
            dataset.test_labels,
            model.assignments,
            n_steps,
            rng,
            n_classes=n_classes,
        )
        changed = np.abs(corrupted - model.weights)
        nonzero = changed[changed > 0]
        points.append(
            BitSensitivityPoint(
                bit_position=bit,
                flip_fraction=flip_fraction,
                mean_weight_change=float(nonzero.mean()) if nonzero.size else 0.0,
                accuracy=accuracy,
            )
        )
    network.set_weights(model.weights)
    return tuple(points)

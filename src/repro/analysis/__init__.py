"""Experiment sweeps, platform energy models and report formatting."""

from repro.analysis.platforms import (
    PlatformModel,
    TRUENORTH,
    PEASE,
    SNNAP,
    PAPER_PLATFORMS,
    energy_breakdown,
)
from repro.analysis.sweeps import (
    AccuracySweepPoint,
    accuracy_vs_ber_sweep,
    energy_vs_voltage_sweep,
    per_voltage_axis,
    sparkxd_grid_sweep,
)
from repro.analysis.reporting import format_table, format_percent_row
from repro.analysis.pareto import ParetoPoint, tolerance_frontier, frontier_is_monotone
from repro.analysis.sensitivity import (
    BitSensitivityPoint,
    accuracy_by_bit,
    weight_perturbation_by_bit,
)

from repro.analysis.export import (
    export_accuracy_curve,
    export_run_records,
    export_sparkxd_result,
    export_tolerance_report,
    load_run_records,
    run_records_to_json,
    write_rows,
    write_run_records_json,
)

__all__ = [
    "BitSensitivityPoint",
    "accuracy_by_bit",
    "weight_perturbation_by_bit",
    "export_accuracy_curve",
    "export_sparkxd_result",
    "export_tolerance_report",
    "write_rows",
    "ParetoPoint",
    "tolerance_frontier",
    "frontier_is_monotone",
    "PlatformModel",
    "TRUENORTH",
    "PEASE",
    "SNNAP",
    "PAPER_PLATFORMS",
    "energy_breakdown",
    "AccuracySweepPoint",
    "accuracy_vs_ber_sweep",
    "energy_vs_voltage_sweep",
    "per_voltage_axis",
    "sparkxd_grid_sweep",
    "export_run_records",
    "load_run_records",
    "run_records_to_json",
    "write_run_records_json",
    "format_table",
    "format_percent_row",
]
